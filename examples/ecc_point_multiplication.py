#!/usr/bin/env python
"""ECC point multiplication — the paper's Section 5 outlook, realized.

"One direction in which this work should go is to implement also an ECC
basic operation, i.e., point multiplication. ... all required components
are available."  This example runs an ECDH key agreement on NIST P-192
with every GF(p) multiplication routed through the Montgomery multiplier
model, then prices the scalar multiplication in multiplier cycles.

    python examples/ecc_point_multiplication.py
"""

import random

from repro.analysis.tables import render_table
from repro.ecc import (
    NIST_P192,
    AffinePoint,
    montgomery_ladder,
    naf_scalar_multiply,
    scalar_multiply,
)
from repro.fpga.report import implementation_report
from repro.systolic.timing import mmm_cycles


def main() -> None:
    curve = NIST_P192
    rng = random.Random(7)
    g = AffinePoint.generator(curve)

    print(f"ECDH on {curve.name} (p has {curve.bits} bits)")
    a = rng.randrange(1, curve.order)
    b = rng.randrange(1, curve.order)
    pub_a = scalar_multiply(g, a).point
    pub_b = scalar_multiply(g, b).point
    shared_a = scalar_multiply(pub_b, a).point
    shared_b = scalar_multiply(pub_a, b).point
    assert shared_a.x == shared_b.x
    print(f"  shared secret x-coordinate agrees: {hex(shared_a.x)[:20]}...")
    print()

    k = rng.randrange(1, curve.order)
    tp = implementation_report(256).tp_ns  # nearest modeled width
    rows = []
    for name, ladder in (
        ("double-and-add (Alg. 3 analogue)", scalar_multiply),
        ("NAF, window 4", naf_scalar_multiply),
        ("Montgomery ladder (regular)", montgomery_ladder),
    ):
        rep = ladder(g, k)
        cycles = rep.field_multiplications * mmm_cycles(curve.bits)
        rows.append(
            [
                name,
                rep.field_multiplications,
                f"{rep.doubles}D + {rep.adds}A",
                cycles,
                round(cycles * tp / 1e6, 3),
            ]
        )
    print(
        render_table(
            ["ladder", "field mults", "group ops", "multiplier cycles", f"est. ms @ {tp:.2f} ns"],
            rows,
            title=f"[k]G on the systolic multiplier, k random {curve.order.bit_length()}-bit",
        )
    )
    print()
    print("  Every field multiplication is one 3l+4-cycle pass of the array;")
    print("  the Montgomery ladder's regular schedule complements the")
    print("  multiplier's data-independent timing (see bench_sidechannel).")


if __name__ == "__main__":
    main()
