#!/usr/bin/env python
"""Quickstart: one Montgomery multiplication at every fidelity level.

Runs the same multiplication through the four models of the stack —
golden algorithm, cycle-accurate RTL array, behavioral MMMC, full
gate-level MMMC netlist — and shows they agree bit for bit, with the
measured latency next to the paper's 3l+4 formula.

    python examples/quickstart.py [bit_length]
"""

import random
import sys

from repro import MontgomeryContext, montgomery_no_subtraction, MMMC
from repro.systolic.array import SystolicArrayRTL
from repro.systolic.mmmc_netlist import GateLevelMMMC
from repro.utils.rng import random_odd_modulus


def main(l: int = 16) -> None:
    rng = random.Random(2003)  # the paper's year, for luck
    n = random_odd_modulus(l, rng)
    ctx = MontgomeryContext(n)
    x, y = rng.randrange(2 * n), rng.randrange(2 * n)

    print(f"Montgomery multiplication, l = {l}")
    print(f"  N = {n}  (R = 2^{ctx.r_exponent} > 4N: {ctx.satisfies_walter_bound()})")
    print(f"  x = {x}, y = {y}   (operands may exceed N — window is [0, 2N))")
    print()

    golden = montgomery_no_subtraction(ctx, x, y)
    print(f"  golden Algorithm 2        : {golden}")

    rtl = SystolicArrayRTL(l).run_multiplication(x, y, n)
    print(f"  RTL systolic array        : {rtl.value}   ({rtl.total_cycles} cycles)")

    mmmc = MMMC(l).multiply(x, y, n)
    print(f"  behavioral MMMC (Fig. 3)  : {mmmc.result}   ({mmmc.cycles} cycles)")

    gate = GateLevelMMMC(l).multiply(x, y, n)
    print(f"  gate-level MMMC netlist   : {gate.result}   ({gate.cycles} cycles)")

    assert golden == rtl.value == mmmc.result == gate.result
    print()
    print(f"  paper formula T_MMM = 3l+4 = {3 * l + 4} cycles")
    print(f"  measured (corrected array) = {mmmc.cycles} cycles (+1: extra top cell)")
    print()
    print(f"  verification: x·y·R⁻¹ mod N = {(x * y * ctx.r_inverse) % n}"
          f" == result mod N = {golden % n}  ✔")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
