#!/usr/bin/env python
"""Serving engine walkthrough: coalesced batches through the worker pool.

Generates a mixed-modulus modexp workload, serves it through
:class:`repro.serving.ModExpService`, and shows the batch scheduler's
payoff: one Montgomery pre-computation per distinct modulus instead of
one per request, with every result checked against ``pow``.

    python examples/serve_batch.py [requests] [moduli]
"""

import random
import sys

from repro.montgomery.params import montgomery_cache_clear
from repro.observability import MetricsRegistry, observe
from repro.serving import ModExpRequest, ModExpService
from repro.utils.rng import random_odd_modulus


def main(count: int = 60, distinct: int = 4) -> None:
    rng = random.Random(2003)
    moduli = [random_odd_modulus(128, rng) for _ in range(distinct)]
    requests = [
        ModExpRequest(
            rng.randrange(moduli[i % distinct]),
            rng.randrange(1, moduli[i % distinct]),
            moduli[i % distinct],
            request_id=f"r{i}",
        )
        for i in range(count)
    ]

    print(f"workload: {count} requests over {distinct} distinct 128-bit moduli")
    montgomery_cache_clear()
    registry = MetricsRegistry()
    with observe(metrics=registry):
        with ModExpService(backend="integer", workers=2) as service:
            results = service.process(requests)

    for request, result in zip(requests, results):
        assert result.ok and result.value == request.expected()
    print(f"  all {count} results verified against pow(base, exponent, modulus)")
    print()

    precomputes = registry.counter("montgomery.precompute").total()
    batches = registry.counter("serving.batches").total()
    completed = registry.counter("serving.requests").value(
        status="completed", backend="integer"
    )
    cycles = registry.histogram("serving.request_cycles").aggregate(backend="integer")
    print("what the batch scheduler bought:")
    print(f"  Montgomery pre-computations : {precomputes}  (naive: {count})")
    print(f"  batches dispatched          : {batches}")
    print(f"  requests completed          : {completed}")
    print(f"  modelled multiplier cycles  : {cycles.sum:,} total, "
          f"{cycles.sum // cycles.count:,} per request")

    # The same moduli again: the constants cache is already warm.
    with observe(metrics=registry):
        with ModExpService(backend="integer", workers=2) as service:
            service.process(requests)
    print(f"  second round pre-computations: "
          f"{registry.counter('montgomery.precompute').total() - precomputes} "
          f"(cache already warm)")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 60,
        int(sys.argv[2]) if len(sys.argv) > 2 else 4,
    )
