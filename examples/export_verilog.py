#!/usr/bin/env python
"""Export the MMMC as synthesizable Verilog — back to a real FPGA flow.

Elaborates the complete Fig. 3 circuit at a chosen bit length, emits
structural Verilog, re-parses it with the bundled interpreter and
co-simulates against the native netlist simulator to prove the text means
the machine, then writes the .v file.

    python examples/export_verilog.py [l] [out.v]
"""

import sys

from repro.hdl.verilog import export_verilog
from repro.hdl.verilog_sim import cosimulate
from repro.systolic.mmmc_netlist import build_mmmc


def main(l: int = 32, path: str = None) -> None:
    path = path or f"mmmc_l{l}.v"
    print(f"Elaborating the corrected-architecture MMMC at l = {l} ...")
    ports = build_mmmc(l, "corrected")
    stats = ports.circuit.stats()
    print(f"  {stats['gates']} gates, {stats['dffs']} flip-flops")

    vm = export_verilog(ports.circuit, f"mmmc_l{l}")
    print(f"  exported module {vm.name}: {len(vm.text.splitlines())} lines")

    checked = cosimulate(ports.circuit, cycles=40, module=vm)
    print(f"  co-simulated parsed Verilog vs native netlist: "
          f"{checked} output comparisons, all equal")

    with open(path, "w") as fh:
        fh.write(vm.text)
    print(f"  written to {path}")
    print()
    print("Interface: X/Y/N operand buses, START strobe, RESULT bus, DONE.")
    print(f"Expected latency: {3 * l + 5} cycles per multiplication.")


if __name__ == "__main__":
    l = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    out = sys.argv[2] if len(sys.argv) > 2 else None
    main(l, out)
