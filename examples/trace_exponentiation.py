#!/usr/bin/env python
"""Trace one RTL exponentiation into a Perfetto-openable timeline.

Runs a modular exponentiation through the cycle-accurate hardware model
with the observability layer enabled, then:

* writes a Chrome trace-event JSON (open it at https://ui.perfetto.dev or
  in ``chrome://tracing``) showing the nested span tree — exponentiation
  → per-operation Montgomery multiplications → controller-state segments;
* prints the metrics snapshot: where every cycle went, per controller
  state and per operation kind, against the paper's ``3l+4`` formula.

    python examples/trace_exponentiation.py [trace.json] [bit_length]
"""

import random
import sys

from repro import MontgomeryContext
from repro.observability import MetricsRegistry, SpanTracer, observe
from repro.systolic.exponentiator import ModularExponentiator
from repro.utils.rng import random_odd_modulus


def main(out_path: str = "trace.json", l: int = 8) -> None:
    rng = random.Random(2003)
    n = random_odd_modulus(l, rng)
    ctx = MontgomeryContext(n)
    message = rng.randrange(n)
    exponent = rng.randrange(1 << (l - 1), 1 << l)

    registry = MetricsRegistry()
    tracer = SpanTracer(detail="state")
    with observe(metrics=registry, tracer=tracer):
        exp = ModularExponentiator(ctx, engine="rtl")
        run = exp.exponentiate(message, exponent)

    print(f"exponentiation: {message}^{exponent} mod {n} = {run.result}")
    print(f"  l = {l}, corrected array: 3l+5 = {3 * l + 5} cycles/multiplication")
    print(f"  {run.num_multiplications} multiplications, {run.cycles} cycles total")
    print()

    states = registry.counter("controller.state_cycles")
    print("cycles by controller state:")
    for state in ("IDLE", "MUL1", "MUL2", "OUT"):
        print(f"  {state:<5} {states.value(state=state)}")
    ops = registry.counter("exponentiator.operations")
    print("operations by kind (squares vs multiplies follow the exponent bits):")
    for kind in ("pre", "square", "multiply", "post"):
        print(f"  {kind:<9} {ops.value(kind=kind)}")
    print()

    # The tracer agrees with the cycle counters — the acceptance check the
    # test-suite pins down.
    assert tracer.span_cycles("exponentiate") == run.cycles
    assert tracer.span_cycles("mmm") == run.cycles
    print(f"span totals agree with measured cycles: {run.cycles} ✔")

    tracer.write(out_path)
    print(f"trace written to {out_path} ({len(tracer.events)} events)")
    print("open it at https://ui.perfetto.dev (or chrome://tracing)")


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "trace.json",
        int(sys.argv[2]) if len(sys.argv) > 2 else 8,
    )
