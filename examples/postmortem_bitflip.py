#!/usr/bin/env python
"""Post-mortem analysis of an injected bit-flip, end to end.

The flight-recorder loop an on-call engineer would run after a verify
failure, compressed into one script:

1. run a gate-level multiplication with a scheduled single-event upset
   (a DFF bit-flip mid-run) and an armed flight recorder;
2. load the emitted post-mortem bundle and print the trigger context;
3. parse the bundle's VCD back into per-signal histories;
4. differentially re-run the *same operands* on a clean instance and
   report the exact cycle where the struck register forks.

    python examples/postmortem_bitflip.py [dump_dir]
"""

import sys
import tempfile

from repro.analysis.fault import FaultSite
from repro.hdl.waveform import parse_vcd
from repro.observability.flightrec import (
    FlightRecorderHub,
    PostMortemBundle,
    armed,
    find_bundles,
)
from repro.systolic.mmmc_netlist import GateLevelMMMC


def main(dump_dir: str) -> None:
    l, x, y, n = 8, 220, 242, 251
    site = FaultSite(cycle=11, register="t", index=3)

    # -- 1. the faulted run, black box armed --------------------------------
    gate = GateLevelMMMC(l, simulator="compiled")
    hub = FlightRecorderHub(dump_dir=dump_dir, pre=64, post=8)
    hub.set_context(request_id="demo", backend="gate", seed=0)
    gate.schedule_fault(site)
    with armed(hub):
        run = gate.multiply(x, y, n)
    print(f"faulted run: {x}*{y}*2^-{l + 2} mod {n} -> {run.result} "
          f"in {run.cycles} cycles")

    # -- 2. read the bundle back (what `repro postmortem` does) -------------
    path = find_bundles(dump_dir, "demo")[-1]
    bundle = PostMortemBundle.load(path)
    w = bundle.window
    print(f"bundle: {path}")
    print(f"trigger: cycle {w.trigger_cycle}: {bundle.meta['cause']}")

    # -- 3. the VCD carries the same story ----------------------------------
    with open(f"{path}/{PostMortemBundle.VCD_FILE}") as fh:
        parsed = parse_vcd(fh.read())
    assert parsed.history("t") == w.signals["t"]
    print(f"VCD round-trip: {len(parsed.signals)} signals, "
          f"{len(w.cycles)} samples agree with window.json")

    # -- 4. differential re-run: where does the 't' bus fork? ---------------
    clean = GateLevelMMMC(l, simulator="compiled")
    probe = FlightRecorderHub(
        dump_dir=None, pre=w.trigger_cycle + 1, post=8,
        triggers=[f"cycle=={w.trigger_cycle}"], fire_on_fault=False,
    )
    with armed(probe):
        clean_run = clean.multiply(
            int(bundle.meta["x"]), int(bundle.meta["y"]), int(bundle.meta["n"])
        )
    cw = probe.last_bundle.window
    fork = next(
        c for c in w.cycles
        if cw.value_at("t", c) is not None
        and cw.value_at("t", c) != w.value_at("t", c)
    )
    delta = w.value_at("t", fork) ^ cw.value_at("t", fork)
    print(f"clean re-run result: {clean_run.result}")
    print(f"divergence: 't' forks at cycle {fork} "
          f"(faulted {w.value_at('t', fork):#x} vs clean "
          f"{cw.value_at('t', fork):#x}, XOR {delta:#x})")
    assert fork == w.trigger_cycle == site.cycle
    assert delta == 1 << site.index
    print(f"== injected bit {site.index} at cycle {site.cycle} "
          "recovered exactly from the dump ==")
    print()
    print(bundle.render(["ctr", "t", "c0", "c1", "done"]))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="pm-demo-"))
