#!/usr/bin/env python
"""Self-healing serving drill: chaos in, correct answers out.

Two phases against :class:`repro.serving.ModExpService`:

1. **Chaos batch** — 200 requests through a process pool while the
   seeded fault plan kills workers, injects backend exceptions and flips
   result bits (5% each).  Online verification + retries + pool respawn
   must deliver every result equal to ``pow(x, e, N)`` — the run fails
   loudly otherwise, and any silently corrupted value is counted into
   the ``serving.silent_corruptions`` metric (the CI gate asserts it
   stays 0).

2. **Breaker storm** — a burst of deterministic failures
   (``target_prefix``) trips the integer backend's circuit breaker;
   after the cooldown, clean traffic drives it half-open → closed,
   demonstrating shed-and-recover.

3. **Black box** — register-level SEUs through the gate-level backend
   with the flight recorder armed: chaos flips real DFBs mid-
   multiplication, every strike freezes a black-box window, and the
   post-mortem bundles (VCD + JSON context) land in ``argv[2]``
   (default ``chaos_dumps``) for CI to upload as artifacts.

The final metrics snapshot goes to the path given as ``argv[1]``
(default ``chaos_metrics.json``) for ``repro obs diff --require`` gates:

    python examples/chaos_drill.py out.json dumps/
    python -m repro obs diff out.json \
        --require 'serving.faults_detected>0' \
        --require 'serving.silent_corruptions==0' \
        --require 'hdl.flightrec_dumps>0'
"""

import sys
import time

from repro.observability import OBS, MetricsRegistry, observe
from repro.robustness import (
    BreakerConfig,
    ChaosConfig,
    RetryPolicy,
    VerifyPolicy,
)
from repro.serving import ModExpRequest, ModExpService

N = 0xD94A8D1BCF3F6B6E0E2B8C5F1A7D3E9B4C6F8A2D | 1  # 160-bit odd modulus
REQUESTS = 200


def chaos_batch() -> int:
    """Phase 1: the 200-request drill.  Returns the silent-corruption count."""
    requests = [
        ModExpRequest(3 + i, 65537, N, request_id=f"d{i}")
        for i in range(REQUESTS)
    ]
    with ModExpService(
        backend="integer",
        workers=4,
        worker_kind="process",
        chaos=ChaosConfig(
            seed=13,
            worker_kill_rate=0.05,
            exception_rate=0.05,
            bitflip_rate=0.05,
        ),
        verify=VerifyPolicy(mode="full"),
        retry=RetryPolicy(max_attempts=5, backoff_s=0.001),
        breaker=BreakerConfig(failure_threshold=20),
    ) as service:
        t0 = time.perf_counter()
        results = service.process(requests)
        wall = time.perf_counter() - t0
        restarts = service.pool.restarts

    silent = failed = 0
    for i, result in enumerate(results):
        if not result.ok:
            failed += 1
        elif result.value != pow(3 + i, 65537, N):
            silent += 1
    if silent:
        OBS.count("serving.silent_corruptions", silent)

    print(
        f"phase 1 — chaos batch: {REQUESTS} requests in {wall:.2f}s, "
        f"{failed} failed, {silent} silent corruptions, "
        f"{restarts} pool respawn(s)"
    )
    if failed or silent:
        raise SystemExit(
            f"drill FAILED: {failed} failures, {silent} silent corruptions"
        )
    return silent


def breaker_storm() -> None:
    """Phase 2: trip the breaker with a storm, then watch it recover."""
    with ModExpService(
        backend="integer",
        workers=1,
        worker_kind="inline",
        chaos=ChaosConfig(seed=5, target_prefix="storm"),
        retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
        breaker=BreakerConfig(
            failure_threshold=3, cooldown_s=0.2, half_open_probes=1
        ),
    ) as service:
        storm = [
            ModExpRequest(9, 65537, N, request_id=f"storm{i}") for i in range(5)
        ]
        service.retry = None  # storms must fail outright to trip the breaker
        service.process(storm)
        breaker = service.breakers.get("integer")
        opened = breaker.state
        time.sleep(0.25)  # let the cooldown elapse

        service.retry = RetryPolicy(max_attempts=2, backoff_s=0.0)
        clean = [
            ModExpRequest(5, 65537, N, request_id=f"ok{i}") for i in range(3)
        ]
        results = service.process(clean)
        closed = breaker.state

    assert all(r.ok and r.value == pow(5, 65537, N) for r in results)
    print(
        f"phase 2 — breaker storm: tripped to {opened!r}, recovered to "
        f"{closed!r} after cooldown + clean traffic"
    )
    if opened != "open" or closed != "closed":
        raise SystemExit("drill FAILED: breaker did not trip and recover")


def black_box(dump_dir: str) -> None:
    """Phase 3: register SEUs leave replayable post-mortem bundles."""
    from repro.observability.flightrec import PostMortemBundle, find_bundles

    n = 1021  # the gate backend runs real netlists; keep l small
    requests = [
        ModExpRequest(3 + i, 17, n, request_id=f"r{i}") for i in range(50)
    ]
    with ModExpService(
        backend="gate",
        workers=1,
        worker_kind="inline",
        chaos=ChaosConfig(
            seed=0,  # draws bit-flips on r4/r13/r25; retries run clean
            bitflip_rate=0.05,
            register_faults=True,
            flightrec_dir=dump_dir,
        ),
        verify=VerifyPolicy(mode="full"),
        retry=RetryPolicy(max_attempts=5, backoff_s=0.0),
    ) as service:
        results = service.process(requests)

    wrong = [
        (i, r) for i, r in enumerate(results)
        if not r.ok or r.value != pow(3 + i, 17, n)
    ]
    bundles = find_bundles(dump_dir)
    print(
        f"phase 3 — black box: {len(requests)} requests through the "
        f"gate-level netlist, {len(bundles)} post-mortem bundle(s) -> "
        f"{dump_dir}"
    )
    if wrong or not bundles:
        raise SystemExit(
            f"drill FAILED: {len(wrong)} bad results, {len(bundles)} bundles"
        )
    newest = PostMortemBundle.load(bundles[-1])
    print(
        f"  newest: req {newest.meta.get('request_id')} — "
        f"{newest.meta.get('cause')} at cycle {newest.meta.get('trigger_cycle')}"
    )


def main() -> None:
    metrics_out = sys.argv[1] if len(sys.argv) > 1 else "chaos_metrics.json"
    dump_dir = sys.argv[2] if len(sys.argv) > 2 else "chaos_dumps"
    registry = MetricsRegistry()
    with observe(metrics=registry):
        chaos_batch()
        breaker_storm()
        black_box(dump_dir)
    registry.write_json(metrics_out)
    detected = registry.counter("serving.faults_detected").total()
    retries = registry.counter("serving.retries").total()
    restarts = registry.counter("serving.worker_restarts").total()
    dumps = registry.counter("hdl.flightrec_dumps").total()
    print(
        f"drill PASSED: {detected} corruption(s) detected, {retries} "
        f"retries, {restarts} worker restart(s), {dumps} flight-recorder "
        f"dump(s); metrics -> {metrics_out}"
    )


if __name__ == "__main__":
    main()
