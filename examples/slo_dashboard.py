#!/usr/bin/env python
"""Per-backend latency-SLO dashboard over the serving engine.

Drives a seeded mixed workload through :class:`repro.serving.ModExpService`
on several backends and prints the SLO table the telemetry pipeline
fills: request counts, p50/p95/p99 latency in *simulated cycles* (the
machine-independent unit the paper's claims are stated in), and the
cycle-budget checks against the Eq. (10) envelope
``margin x 2*bitlen(e) x (3l+5)``.

Two passes make the policy visible: the analytic budget (``margin=1.0``,
which cycle-accurate backends satisfy by construction) and a deliberately
tight ``margin=0.6`` that shows violations firing.

    python examples/slo_dashboard.py
"""

import random
from typing import Dict, List, Tuple

from repro.analysis.tables import render_table
from repro.montgomery.params import montgomery_cache_clear
from repro.observability import MetricsRegistry, observe
from repro.serving import ModExpRequest, ModExpService, SLOPolicy
from repro.utils.rng import random_odd_modulus

# backend, modulus bits, request count, workers, worker kind
CONFIGS: List[Tuple[str, int, int, int, str]] = [
    ("integer", 64, 40, 2, "process"),
    ("highradix", 64, 40, 1, "inline"),
    ("scalable", 64, 40, 1, "inline"),
    ("rtl", 12, 6, 1, "inline"),
]


def _workload(bits: int, count: int, seed: str) -> List[ModExpRequest]:
    rng = random.Random(seed)
    moduli = [random_odd_modulus(bits, rng) for _ in range(2)]
    return [
        ModExpRequest(
            rng.randrange(moduli[i % 2]),
            rng.randrange(1, moduli[i % 2]),
            moduli[i % 2],
            request_id=f"r{i}",
        )
        for i in range(count)
    ]


def _run_pass(margin: float) -> MetricsRegistry:
    registry = MetricsRegistry()
    for backend, bits, count, workers, kind in CONFIGS:
        requests = _workload(bits, count, seed=f"slo-{backend}")
        with observe(metrics=registry):
            with ModExpService(
                backend=backend,
                workers=workers,
                worker_kind=kind,
                slo=SLOPolicy(margin=margin),
            ) as service:
                results = service.process(requests)
        for request, result in zip(requests, results):
            assert result.ok and result.value == request.expected(), result
    return registry


def main() -> None:
    montgomery_cache_clear()
    analytic = _run_pass(margin=1.0)
    tight = _run_pass(margin=0.6)

    budgets: Dict[str, int] = {}
    policy = SLOPolicy()
    for backend, bits, count, _, _ in CONFIGS:
        requests = _workload(bits, count, seed=f"slo-{backend}")
        budgets[backend] = max(policy.cycle_budget(r) for r in requests)

    rows = []
    for backend, _, _, _, _ in CONFIGS:
        cycles = analytic.histogram("serving.request_cycles")
        rows.append(
            [
                backend,
                int(cycles.aggregate(backend=backend).count),
                round(cycles.percentile(50, backend=backend)),
                round(cycles.percentile(95, backend=backend)),
                round(cycles.percentile(99, backend=backend)),
                budgets[backend],
                analytic.counter("serving.slo_violations").total(backend=backend),
                tight.counter("serving.slo_violations").total(backend=backend),
            ]
        )
    print(
        render_table(
            [
                "backend",
                "requests",
                "p50 cyc",
                "p95 cyc",
                "p99 cyc",
                "max budget",
                "viol @1.0x",
                "viol @0.6x",
            ],
            rows,
            title=(
                "Latency SLOs in simulated cycles "
                "(budget = margin x 2*bitlen(e) x (3l+5), Eq. (10) envelope)"
            ),
        )
    )
    print()
    checks = analytic.counter("serving.slo_checks").total()
    print(
        f"analytic pass: {checks} checks, "
        f"{analytic.counter('serving.slo_violations').total()} violations — "
        f"cycle-accurate backends satisfy margin=1.0 by construction;"
    )
    print(
        f"tight pass (margin=0.6): "
        f"{tight.counter('serving.slo_violations').total()} violations — "
        f"the budget is real, not decorative."
    )


if __name__ == "__main__":
    main()
