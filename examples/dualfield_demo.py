#!/usr/bin/env python
"""Dual-field demo: GF(p) and GF(2^m) on the same Montgomery structure.

The paper cites the Savaş–Tenca–Koç dual-field multiplier [24].  This demo
shows both field types flowing through the same algorithmic skeleton:

1. GF(p): one multiplication on the paper's array (cycle-accurate);
2. GF(2^163): the same bit-serial loop, carry-free, on both dual-field
   datapath organizations (broadcast and systolic);
3. binary-field ECC on NIST K-163, every field op through the GF(2^m)
   Montgomery context.

    python examples/dualfield_demo.py
"""

import random

from repro.analysis.tables import render_table
from repro.ecc.binary import NIST_K163, BinaryPoint, binary_scalar_multiply
from repro.montgomery import MontgomeryContext
from repro.montgomery.gf2 import NIST_B163_POLY, GF2MontgomeryContext
from repro.systolic.gf2_array import Gf2ArrayBroadcast, Gf2ArraySystolic
from repro.systolic.mmmc import MMMC


def main() -> None:
    rng = random.Random(163)

    # --- GF(p) reference point -------------------------------------------
    p = (1 << 162) | rng.getrandbits(161) | 1
    ctx_p = MontgomeryContext(p)
    mmmc = MMMC(ctx_p.l)
    xp, yp = rng.randrange(2 * p), rng.randrange(2 * p)
    run_p = mmmc.multiply(xp, yp, p)

    # --- GF(2^163) through both datapaths --------------------------------
    ctx_2 = GF2MontgomeryContext(NIST_B163_POLY)
    a, b = rng.getrandbits(163), rng.getrandbits(163)
    gold = ctx_2.multiply(a, b)
    r_bc = Gf2ArrayBroadcast(ctx_2).multiply(a, b)
    r_sy = Gf2ArraySystolic(ctx_2).multiply(a, b)
    assert r_bc.value == r_sy.value == gold

    print(
        render_table(
            ["field / datapath", "iterations", "cycles", "cell gates"],
            [
                ["GF(p), l=163 array (paper)", ctx_p.iterations, run_p.cycles, "5 XOR + 7 AND + 2 OR"],
                ["GF(2^163), systolic", ctx_2.m, r_sy.total_cycles, "2 XOR + 2 AND"],
                ["GF(2^163), broadcast", ctx_2.m, r_bc.total_cycles, "2 XOR + 2 AND"],
            ],
            title="One multiplication, both fields, cycle-accurate",
        )
    )
    print()
    print("  The GF(2^m) loop is Algorithm 2 with XOR for +: no carries,")
    print("  so no C0/C1 registers, exactly m iterations (no +2 window")
    print("  margin) and no leftmost-cell overflow to fix.")
    print()

    # --- Binary ECC on K-163 ---------------------------------------------
    field = NIST_K163.field()
    g = BinaryPoint.generator(NIST_K163, field)
    k = rng.getrandbits(162) | 1
    point, mults = binary_scalar_multiply(g, k)
    x163, _ = point.to_affine_ints()
    print(f"K-163 point multiplication: [k]G computed with {mults} field")
    print(f"  multiplications; x = {hex(x163)[:24]}...")
    print(f"  on systolic GF(2^163) datapath: ~{mults * r_sy.total_cycles:,} cycles")
    assert NIST_K163.contains(*point.to_affine_ints())


if __name__ == "__main__":
    main()
