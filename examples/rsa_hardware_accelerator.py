#!/usr/bin/env python
"""RSA on the systolic exponentiator — the paper's Section 4.5 use case.

Generates an RSA key pair, runs encrypt / decrypt / sign / verify through
the Montgomery exponentiator model, and converts the exact cycle counts
into wall-clock time using the Virtex-E clock-period model — i.e., "what
would this RSA operation cost on the paper's FPGA?"

    python examples/rsa_hardware_accelerator.py [modulus_bits]
"""

import random
import sys

from repro.analysis.tables import render_table
from repro.fpga.report import implementation_report
from repro.rsa import RSACipher, generate_keypair


def main(bits: int = 512) -> None:
    rng = random.Random(42)
    print(f"Generating an RSA-{bits} key pair ...")
    key = generate_keypair(bits, rng)
    print(f"  N has {key.bits} bits; E = {key.public_exponent}")
    print(f"  D has {key.private_exponent.bit_length()} bits "
          f"(E·D ≡ 1 mod lcm(p-1, q-1), as in the paper)")
    print()

    cipher = RSACipher(key, engine="golden")
    message = rng.randrange(key.modulus)

    enc = cipher.encrypt(message)
    dec = cipher.decrypt(enc.value)
    crt = cipher.decrypt_crt(enc.value)
    sig = cipher.sign(message)
    ok = cipher.verify(message, sig.value)
    assert dec.value == message and crt.value == message and ok

    # Convert cycles to time with the Virtex-E model for this bit length.
    point = implementation_report(min(bits, 1024))
    tp = point.tp_ns

    def ms(cycles: int) -> float:
        return cycles * tp / 1e6

    print(
        render_table(
            ["operation", "mults", "cycles", f"time @ Tp={tp:.2f} ns (ms)"],
            [
                ["encrypt (E = 65537)", enc.multiplications, enc.cycles, round(ms(enc.cycles), 3)],
                ["decrypt (direct)", dec.multiplications, dec.cycles, round(ms(dec.cycles), 3)],
                ["decrypt (CRT)", crt.multiplications, crt.cycles, round(ms(crt.cycles), 3)],
                ["sign", sig.multiplications, sig.cycles, round(ms(sig.cycles), 3)],
            ],
            title=f"RSA-{bits} on the systolic Montgomery multiplier (model)",
        )
    )
    print()
    print(f"  CRT speedup: {dec.cycles / crt.cycles:.2f}x in cycles "
          "(linear-cost multiplier; see benchmarks/bench_rsa_crt.py)")
    if bits == 1024:
        print(f"  paper Table 1 average for l=1024: 49.508 ms")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 512)
