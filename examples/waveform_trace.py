#!/usr/bin/env python
"""Waveform inspection of the systolic pipeline, like an FPGA engineer would.

Runs one small multiplication on the cycle-accurate array, records the
interesting signals every clock (the generated m digit, the serial X(0)
bit, carries, the T register value, the result register), prints an ASCII
timing diagram, and writes a GTKWave-compatible VCD file.

    python examples/waveform_trace.py [out.vcd]
"""

import sys

from repro.hdl.waveform import WaveformRecorder
from repro.montgomery import MontgomeryContext, montgomery_trace
from repro.systolic.array import SystolicArrayRTL
from repro.utils.bits import bit_array_to_int


def main(vcd_path: str = "systolic_trace.vcd") -> None:
    l, n, x, y = 6, 53, 100, 71
    ctx = MontgomeryContext(n)
    golden, steps = montgomery_trace(ctx, x, y)

    arr = SystolicArrayRTL(l)
    rec = WaveformRecorder(
        probes={
            "phase(MUL2)": lambda: arr.cycle % 2 == 0,  # post-step parity
            "X0": lambda: arr.x_shift & 1,
            "m_pipe0": lambda: int(arr.m_pipe[0]),
            "C0_0": lambda: int(arr.c0_reg[0]),
            "T": lambda: bit_array_to_int(arr.t_reg[1:]),
            "RESULT": lambda: arr.result_value(),
        },
        widths={"T": l + 2, "RESULT": l + 1},
    )
    arr.load(x, y, n)
    rec.sample()
    for _ in range(arr.datapath_cycles):
        arr.step()
        rec.sample()

    print(f"Mont({x}, {y}) mod {n}: golden = {golden}, array = {arr.result_value()}")
    assert arr.result_value() == golden
    print(f"quotient digits m_i : {[s.m_digit for s in steps]}")
    print()
    print(rec.ascii_diagram())
    with open(vcd_path, "w") as fh:
        fh.write(rec.to_vcd())
    print(f"\nVCD written to {vcd_path} (open with GTKWave)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "systolic_trace.vcd")
