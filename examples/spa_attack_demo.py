#!/usr/bin/env python
"""SPA attack demo: reading an RSA exponent off the operation sequence.

The paper removes the data-dependent final subtraction (a timing channel).
This demo shows the *next* channel an implementer must close: with plain
square-and-multiply, an observer who can tell squarings from
multiplications (they drive different operand buses) recovers the private
exponent outright.  The Montgomery powering ladder — two fixed operations
per bit — leaks only the bit length, at ~33% more multiplier passes.

    python examples/spa_attack_demo.py
"""

import random

from repro.analysis.spa import recover_exponent_sqm, spa_resistance_report
from repro.analysis.tables import render_table
from repro.montgomery.exponent import montgomery_modexp
from repro.montgomery.params import MontgomeryContext
from repro.rsa import generate_keypair


def main() -> None:
    rng = random.Random(2003)
    key = generate_keypair(48, rng)
    d = key.private_exponent
    print(f"Victim: RSA-{key.bits}, private exponent d = {hex(d)} "
          f"({d.bit_length()} bits)\n")

    # The attacker observes only the operation kinds of one decryption.
    ctx = MontgomeryContext(key.modulus)
    ct = rng.randrange(key.modulus)
    _, trace = montgomery_modexp(ctx, ct, d)
    kinds = [op.kind for op in trace.operations]
    print(f"Observed trace ({len(kinds)} multiplier passes):")
    compact = "".join("S" if k == "square" else "M" if k == "multiply" else "."
                      for k in kinds)
    print(f"  {compact}\n")

    recovered = recover_exponent_sqm(kinds)
    print(f"SPA recovery from the S/M pattern: {hex(recovered)}")
    print(f"  exact match with d: {recovered == d}\n")

    rep = spa_resistance_report(key.modulus, ct, d)
    print(
        render_table(
            ["exponentiation", "recovered", "value bits leaked", "cost (ops/bit)"],
            [
                ["square-and-multiply", str(rep["square-multiply"].exact),
                 rep["square-multiply"].leaked_bits, "~1.5"],
                ["powering ladder", str(rep["ladder"].exact),
                 rep["ladder"].leaked_bits, "2"],
            ],
            title="Countermeasure comparison",
        )
    )
    print("\nTogether with the subtraction-free multiplier (constant 3l+4")
    print("cycles, bench_sidechannel) the ladder gives a fully regular")
    print("power/timing profile at the exponentiation level too.")


if __name__ == "__main__":
    main()
