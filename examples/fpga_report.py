#!/usr/bin/env python
"""Regenerate the paper's full evaluation: Tables 1 and 2 plus the index.

Prints every experiment in the registry, then the two tables with
paper-vs-model columns — the one-command reproduction of the paper's
evaluation section on the Virtex-E implementation model.

    python examples/fpga_report.py
"""

from repro.analysis.experiments import EXPERIMENTS
from repro.analysis.tables import render_table
from repro.fpga.report import table1_rows, table2_rows


def main() -> None:
    print(
        render_table(
            ["id", "paper artifact", "benchmark"],
            [[e.id, e.paper_artifact, e.benchmark] for e in EXPERIMENTS.values()],
            title="Experiment index (see DESIGN.md / EXPERIMENTS.md)",
        )
    )
    print()

    rows2 = table2_rows()
    print(
        render_table(
            ["l", "S model", "S paper", "Tp model", "Tp paper",
             "TA model", "TA paper", "TMMM model us", "TMMM paper us"],
            [
                [
                    r.l,
                    r.slices,
                    r.paper_slices,
                    round(r.tp_ns, 3),
                    r.paper_tp_ns,
                    round(r.ta_slice_ns, 1),
                    r.paper_ta,
                    round(r.t_mmm_us, 3),
                    r.paper_t_mmm_us,
                ]
                for r in rows2
            ],
            title="Table 2 — MMMC on Xilinx V812E-BG-560-8 (model vs paper)",
        )
    )
    print()

    rows1 = table1_rows()
    print(
        render_table(
            ["l", "Tp model ns", "Tp paper ns", "avg exp model ms", "avg exp paper ms"],
            [
                [
                    r.l,
                    round(r.tp_ns, 3),
                    r.paper_tp_ns,
                    round(r.avg_exp_ms, 3),
                    r.paper_avg_exp_ms,
                ]
                for r in rows1
            ],
            title="Table 1 — average modular exponentiation (model vs paper)",
        )
    )
    print()
    print("Cycle formulas (measured identically by the simulators):")
    print("  one MMM        : 3l + 4     (corrected architecture: 3l + 5)")
    print("  exponentiation : 3l² + 10l + 12  ≤ T ≤  6l² + 14l + 12  (Eq. 10)")


if __name__ == "__main__":
    main()
