"""Fault-recovery latency: what self-healing costs the tail.

A seeded chaos workload (injected exceptions + silent bit flips) runs
through the inline service with full verification and retries.  Each
request is timed individually end to end; the deterministic fault plan
says which requests drew a fault, so the sample splits exactly into
clean requests and recovered ones.  The benchmark reports p50/p95/p99
for both populations and the recovery overhead — the price of turning
a corrupted or failed execution into a correct answer.

Shape assertions: every result is correct (the whole point), recovered
requests exist in the expected proportion, and recovery costs more than
a clean pass (it re-executes the work) but not absurdly more (no
pathological retry spiral) — wall-clock bounds are kept generous for
starved CI boxes.
"""

from __future__ import annotations

import time

from repro.analysis.tables import render_table
from repro.robustness import ChaosConfig, RetryPolicy, VerifyPolicy
from repro.robustness.chaos import FaultPlan
from repro.serving import ModExpRequest, ModExpService

REQUESTS = 300
N = 0xC96F4F3C6D21E1F1A9F5A8B7 | 1  # 96-bit odd modulus
CHAOS = ChaosConfig(seed=21, exception_rate=0.15, bitflip_rate=0.10)


def _percentile(samples: list, q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _row(label: str, samples_us: list) -> list:
    return [
        label,
        len(samples_us),
        round(_percentile(samples_us, 0.50), 1),
        round(_percentile(samples_us, 0.95), 1),
        round(_percentile(samples_us, 0.99), 1),
    ]


def test_recovery_latency_percentiles(save_table, benchmark_metrics):
    requests = [
        ModExpRequest(3 + i, 65537, N, request_id=f"b{i}")
        for i in range(REQUESTS)
    ]
    plan = FaultPlan(CHAOS)
    faulted_ids = {
        r.request_id
        for r in requests
        if plan.decide(r.request_id, 0, allow_kill=False)
    }

    clean_us: list = []
    recovered_us: list = []
    with ModExpService(
        backend="integer",
        workers=1,
        worker_kind="inline",
        chaos=CHAOS,
        verify=VerifyPolicy(mode="full"),
        retry=RetryPolicy(max_attempts=5, backoff_s=0.0),
    ) as service:
        for i, request in enumerate(requests):
            t0 = time.perf_counter()
            (result,) = service.process([request])
            elapsed_us = (time.perf_counter() - t0) * 1e6
            assert result.ok and result.value == pow(3 + i, 65537, N)
            bucket = (
                recovered_us if request.request_id in faulted_ids else clean_us
            )
            bucket.append(elapsed_us)

    # The 25% aggregate fault rate must actually have materialized.
    assert len(recovered_us) >= REQUESTS * 0.15
    assert len(clean_us) >= REQUESTS * 0.6

    overhead = _percentile(recovered_us, 0.5) / _percentile(clean_us, 0.5)
    save_table(
        "fault_recovery",
        render_table(
            ["population", "requests", "p50 us", "p95 us", "p99 us"],
            [
                _row("clean", clean_us),
                _row("recovered (fault injected)", recovered_us),
                ["p50 recovery overhead", "-", f"{overhead:.2f}x", "-", "-"],
            ],
            title=(
                f"Fault-recovery latency: {REQUESTS} requests, "
                f"{CHAOS.exception_rate:.0%} exceptions + "
                f"{CHAOS.bitflip_rate:.0%} bit flips, full verification, "
                "retries with zero backoff"
            ),
        ),
    )

    detected = benchmark_metrics.counter("serving.faults_detected").total()
    retries = benchmark_metrics.counter("serving.retries").total()
    assert detected >= 1  # bit flips were caught, not returned
    assert retries >= len(recovered_us) * 0.9
    # Recovery re-runs the exponentiation at least once, so its median
    # should cost more than a clean pass; a spiral would blow far past
    # the retry cap's worst case.
    assert overhead > 1.0
    assert overhead < 50.0
