"""Section 5 outlook: ECC point multiplication on the paper's multiplier.

"This operation does not require modular exponentiation but modular
multiplication only, so all required components are available."  We run
scalar multiplication over GF(p) with every field multiplication routed
through the Montgomery model, count multiplications exactly, and convert
to hardware latency via (3l+4) cycles x the Virtex-E Tp — the table an
ECC companion implementation would report.
"""

import random

from repro.analysis.tables import render_table
from repro.ecc.curves import NIST_P192, NIST_P256
from repro.ecc.point import AffinePoint
from repro.ecc.scalarmul import (
    montgomery_ladder,
    naf_scalar_multiply,
    scalar_multiply,
)
from repro.fpga.report import implementation_report
from repro.systolic.timing import mmm_cycles


def test_ecc_point_multiplication_latency(benchmark, save_table):
    rng = random.Random(37)
    curve = NIST_P192
    g = AffinePoint.generator(curve)
    k = rng.getrandbits(192) % curve.order

    rep = benchmark(lambda: scalar_multiply(g, k))

    tp_ns = implementation_report(256).tp_ns  # nearest modeled bit length
    rows = []
    for name, ladder in (
        ("double-and-add", scalar_multiply),
        ("NAF w=4", naf_scalar_multiply),
        ("Montgomery ladder", montgomery_ladder),
    ):
        r = ladder(g, k)
        cycles = r.field_multiplications * mmm_cycles(curve.bits)
        rows.append(
            [
                name,
                r.field_multiplications,
                r.doubles,
                r.adds,
                cycles,
                round(cycles * tp_ns / 1e6, 3),
            ]
        )
        assert (r.point.x, r.point.y) == (rep.point.x, rep.point.y)
    save_table(
        "ecc_pointmul",
        render_table(
            ["ladder", "field mults", "doubles", "adds", "multiplier cycles", "est. ms @Tp"],
            rows,
            title=f"ECC point multiplication on the systolic multiplier ({curve.name})",
        ),
    )
    # Shape: NAF does fewer adds than binary; the ladder is the dearest
    # of the three but fully regular.
    by_name = {r[0]: r for r in rows}
    assert by_name["NAF w=4"][3] <= by_name["double-and-add"][3]
    assert by_name["Montgomery ladder"][2] == by_name["Montgomery ladder"][3]


def test_ecc_vs_rsa_workload_comparison(benchmark, save_table):
    """The paper's motivation: ECC reaches RSA-class security with far
    smaller operands.  P-192 was the c.2003 equivalent of RSA-1024
    (~80-bit security); compare multiplier work for one private-key op
    on the same (suitably sized) systolic multiplier."""
    rng = random.Random(41)

    def ecc_cost():
        g = AffinePoint.generator(NIST_P192)
        k = rng.getrandbits(191) | (1 << 190)
        r = montgomery_ladder(g, k)
        return r.field_multiplications * mmm_cycles(NIST_P192.bits)

    ecc_cycles = benchmark(ecc_cost)
    from repro.systolic.timing import average_exponentiation_cycles

    rsa_cycles = average_exponentiation_cycles(1024)
    rows = [
        ["ECC P-192 point mult (ladder)", NIST_P192.bits, ecc_cycles],
        ["RSA-1024 private exponentiation", 1024, round(rsa_cycles)],
        ["ratio RSA/ECC", "-", round(rsa_cycles / ecc_cycles, 2)],
    ]
    save_table(
        "ecc_vs_rsa",
        render_table(
            ["operation", "operand bits", "multiplier cycles"],
            rows,
            title="Comparable-security (c. 2003) workloads on the multiplier",
        ),
    )
    assert rsa_cycles > ecc_cycles
