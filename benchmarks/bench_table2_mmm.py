"""Table 2 regeneration: slices, Tp, time-area product, T_MMM.

Paper rows (l, S, Tp ns, TA S·ns, T_MMM µs) for l = 32..1024.  Ours come
from technology-mapping the fully elaborated MMMC netlist and the
component-delay timing model; the multiplication latency (3l+4 cycles) is
*measured* on the cycle-accurate simulator, not assumed.
"""

import random

import pytest

from repro.analysis.tables import render_table
from repro.fpga.report import table2_rows
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext
from repro.systolic.mmmc import MMMC
from repro.utils.rng import random_odd_modulus

BITS = (32, 64, 128, 256, 512, 1024)


def test_table2_regeneration(benchmark, save_table):
    rows = benchmark(lambda: table2_rows(BITS))
    table = render_table(
        ["l", "S model", "S paper", "S ratio", "Tp model", "Tp paper",
         "TA model", "TA paper", "TMMM model (us)", "TMMM paper (us)"],
        [
            [
                r.l,
                r.slices,
                r.paper_slices,
                round(r.slices / r.paper_slices, 2),
                round(r.tp_ns, 3),
                r.paper_tp_ns,
                round(r.ta_slice_ns, 0),
                r.paper_ta,
                round(r.t_mmm_us, 3),
                r.paper_t_mmm_us,
            ]
            for r in rows
        ],
        title="Table 2 — MMMC implementation (model vs paper)",
    )
    save_table("table2", table)
    for r in rows:
        assert 0.75 <= r.slices / r.paper_slices <= 1.30, "slice shape"
        assert r.tp_ns == pytest.approx(r.paper_tp_ns, rel=0.10), "Tp shape"
        assert r.t_mmm_us == pytest.approx(r.paper_t_mmm_us, rel=0.12)
    # Linearity of area: doubling l roughly doubles slices.
    by_l = {r.l: r.slices for r in rows}
    for l in (32, 64, 128, 256, 512):
        assert 1.7 <= by_l[2 * l] / by_l[l] <= 2.3


def test_mmm_latency_measured_vs_formula(benchmark, save_table):
    """T_MMM cycle counts measured on the cycle-accurate MMMC."""
    rng = random.Random(3)
    rows = []
    # Time the l=64 case as the representative measurement.
    n64 = random_odd_modulus(64, rng)
    m64 = MMMC(64)
    benchmark(lambda: m64.multiply(123456789 % (2 * n64), 987654321 % (2 * n64), n64))
    for l in (8, 16, 32, 64):
        n = random_odd_modulus(l, rng)
        ctx = MontgomeryContext(n)
        x, y = rng.randrange(2 * n), rng.randrange(2 * n)
        paper_mode = MMMC(l, mode="paper") if 3 * n <= 1 << (l + 1) else None
        corrected = MMMC(l, mode="corrected")
        run_c = corrected.multiply(x, y, n)
        assert run_c.result == montgomery_no_subtraction(ctx, x, y)
        row = [l, 3 * l + 4, run_c.cycles]
        if paper_mode is not None:
            run_p = paper_mode.multiply(x, y, n)
            assert run_p.cycles == 3 * l + 4
            row.append(run_p.cycles)
        else:
            row.append(None)
        rows.append(row)
        assert run_c.cycles == 3 * l + 5
    save_table(
        "table2_cycles",
        render_table(
            ["l", "paper formula 3l+4", "measured corrected", "measured paper-mode"],
            rows,
            title="T_MMM cycle counts: formula vs cycle-accurate measurement",
        ),
    )


def test_mmmc_rtl_multiply_l128(benchmark):
    """Wall-clock of one cycle-accurate multiplication at l = 128."""
    rng = random.Random(4)
    n = random_odd_modulus(128, rng)
    mmmc = MMMC(128)
    x, y = rng.randrange(2 * n), rng.randrange(2 * n)
    run = benchmark(lambda: mmmc.multiply(x, y, n))
    assert run.result == montgomery_no_subtraction(MontgomeryContext(n), x, y)


def test_mmmc_rtl_multiply_l1024(benchmark):
    """Wall-clock of one cycle-accurate multiplication at RSA size."""
    rng = random.Random(5)
    n = random_odd_modulus(1024, rng)
    mmmc = MMMC(1024)
    x, y = rng.randrange(2 * n), rng.randrange(2 * n)
    run = benchmark(lambda: mmmc.multiply(x, y, n))
    assert run.result == montgomery_no_subtraction(MontgomeryContext(n), x, y)
