"""Figure 2 / Section 4.3 regeneration: complete-array area and schedule.

The paper states the array totals ``(5l-3) XOR + (7l-7) AND + (4l-5) OR``
gates and ``4l`` flip-flops, with the critical path of one regular cell
(independent of l).  We census the elaborated array netlist at several l
and print formula vs measurement; XOR/AND/FF agree to within a few gates,
the OR column does not (the paper's accounting implies a different
full-adder carry decomposition — documented in EXPERIMENTS.md).  The
wavefront occupancy of the ``2i+j`` schedule is reported alongside.
"""

from repro.analysis.tables import render_table
from repro.hdl.census import census, paper_array_formula
from repro.systolic.array_netlist import build_array
from repro.systolic.schedule import WavefrontSchedule

BITS = (16, 32, 64, 128)


def test_fig2_area_formula(benchmark, save_table):
    results = benchmark(
        lambda: [(l, census(build_array(l, "paper").circuit)) for l in BITS]
    )
    rows = []
    for l, cen in results:
        f = paper_array_formula(l)
        rows.append(
            [
                l,
                f"{f['xor']}/{cen.by_kind.get('xor', 0)}",
                f"{f['and']}/{cen.by_kind.get('and', 0)}",
                f"{f['or']}/{cen.by_kind.get('or', 0)}",
                f"{f['FF']}/{cen.flip_flops}",
            ]
        )
        # XOR, AND and FF columns: within a small constant of the formula.
        assert abs(cen.by_kind.get("xor", 0) - f["xor"]) <= 4
        assert abs(cen.by_kind.get("and", 0) - f["and"]) <= 6
        assert abs(cen.flip_flops - f["FF"]) <= 2
        # OR column: the documented divergence — ours is ~2l, paper says 4l.
        assert cen.by_kind.get("or", 0) < f["or"]
    save_table(
        "fig2_census",
        render_table(
            ["l", "XOR paper/meas", "AND paper/meas", "OR paper/meas", "FF paper/meas"],
            rows,
            title="Figure 2 / Section 4.3 — array census (paper formula vs netlist)",
        ),
    )


def test_fig2_schedule_occupancy(benchmark, save_table):
    """The 2i+j wavefront: cells work every other cycle (peak ~50%)."""
    l = 64
    sched = WavefrontSchedule(l)

    def occupancy_profile():
        return [sched.occupancy(c) for c in range(sched.datapath_cycles)]

    prof = benchmark(occupancy_profile)
    peak = max(prof)
    mean = sum(prof) / len(prof)
    save_table(
        "fig2_schedule",
        render_table(
            ["metric", "value"],
            [
                ["cells", sched.num_cells],
                ["rows", sched.num_rows],
                ["datapath cycles (3l+3)", sched.datapath_cycles],
                ["peak occupancy", round(peak, 3)],
                ["mean occupancy", round(mean, 3)],
            ],
            title="Figure 2 — wavefront schedule occupancy (l=64)",
        ),
    )
    assert 0.45 <= peak <= 0.55
    # Every digit is computed exactly once.
    assert sum(len(sched.active_cells(c)) for c in range(sched.datapath_cycles)) == (
        sched.num_cells * sched.num_rows
    )


def test_fig2_critical_path_independent_of_l(benchmark, save_table):
    """The paper's headline structural claim, on the mapped netlist."""
    from repro.fpga.techmap import technology_map

    def depths():
        return [
            (l, technology_map(build_array(l, "paper").circuit).lut_depth)
            for l in BITS
        ]

    rows = benchmark(depths)
    save_table(
        "fig2_depth",
        render_table(
            ["l", "LUT depth of array critical path"],
            rows,
            title="Figure 2 — critical path (2 T_FA + T_HA) is l-independent",
        ),
    )
    assert len({d for _, d in rows}) == 1
