"""Extension ablation: exponent recoding on the paper's multiplier.

The paper uses plain binary square-and-multiply (~1.5 multiplications per
exponent bit).  Windowed recodings cut the multiply count at the price of
a precomputed table; with a 3l+4-cycle multiplier the saving is directly
wall-clock.  This bench sweeps window widths for RSA-size exponents and
reports total multiplier passes — the design study a user would run
before taping out the exponentiator's controller.
"""

import random

from repro.analysis.tables import render_table
from repro.montgomery.params import MontgomeryContext
from repro.montgomery.windowed import (
    binary_schedule,
    execute_schedule,
    mary_schedule,
    optimal_window,
    sliding_window_schedule,
)
from repro.systolic.timing import mmm_cycles


def test_window_sweep(benchmark, save_table):
    l = 1024
    e = random.Random(47).getrandbits(l) | (1 << (l - 1)) | 1
    per = mmm_cycles(l)

    def sweep():
        rows = []
        base = binary_schedule(e).total_multiplications
        rows.append(["binary", 1, base, base * per, 1.0])
        for w in (2, 3, 4, 5, 6, 7):
            for name, maker in (("m-ary", mary_schedule), ("sliding", sliding_window_schedule)):
                s = maker(e, w)
                t = s.total_multiplications
                rows.append([name, w, t, t * per, round(t / base, 3)])
        return rows

    rows = benchmark(sweep)
    save_table(
        "ablation_window",
        render_table(
            ["method", "w", "multiplier passes", "cycles", "vs binary"],
            rows,
            title=f"Exponent recoding sweep (l={l}, random exponent)",
        ),
    )
    base = rows[0][2]
    best = min(r[2] for r in rows)
    assert best < base * 0.88, "windowing must save >12% of passes"
    # The cost model's predicted optimum is competitive.
    w_star = optimal_window(l)
    starred = [r[2] for r in rows if r[0] == "sliding" and r[1] == w_star]
    assert starred and starred[0] <= best * 1.03


def test_windowed_execution_correct_at_scale(benchmark):
    """Functional: a w=5 sliding-window RSA-size exponentiation."""
    rng = random.Random(53)
    n = rng.getrandbits(512) | (1 << 511) | 1
    ctx = MontgomeryContext(n)
    m = rng.randrange(n)
    e = rng.getrandbits(512) | (1 << 511) | 1
    sched = sliding_window_schedule(e, 5)

    result = benchmark(lambda: execute_schedule(ctx, sched, m))
    assert result == pow(m, e, n)
