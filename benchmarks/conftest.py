"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (table/figure/claim) and
does two things with it:

1. prints the paper-vs-measured comparison (visible with ``-s``; also
   written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can
   quote it);
2. asserts the *shape* of the result — who wins, by roughly what factor —
   so a regression in the reproduction fails the suite loudly.

Wall-clock timings of the simulators themselves go through
pytest-benchmark's ``benchmark`` fixture.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_table(results_dir):
    """Writer fixture: ``save_table(name, text)`` persists and echoes."""

    def _save(name: str, text: str) -> None:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
