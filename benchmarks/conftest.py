"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (table/figure/claim) and
does two things with it:

1. prints the paper-vs-measured comparison (visible with ``-s``; also
   written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can
   quote it);
2. asserts the *shape* of the result — who wins, by roughly what factor —
   so a regression in the reproduction fails the suite loudly.

Wall-clock timings of the simulators themselves go through
pytest-benchmark's ``benchmark`` fixture.

Every benchmark additionally runs under an observability session (see
:mod:`repro.observability`): the autouse ``benchmark_metrics`` fixture
installs a fresh metrics registry around the test and, if the workload
recorded anything, writes the snapshot to
``results/metrics/<test_name>.json`` next to the ``results/*.txt``
artifacts — a machine-readable record of where the cycles went.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.observability import MetricsRegistry, observe

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
METRICS_DIR = os.path.join(RESULTS_DIR, "metrics")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(autouse=True)
def benchmark_metrics(request):
    """Per-benchmark metrics JSON, written beside the ``results/*.txt``.

    Yields the live registry so a benchmark can also assert on counters
    directly (``benchmark_metrics.counter("mmmc.multiplications")...``).
    """
    registry = MetricsRegistry()
    with observe(metrics=registry):
        yield registry
    snap = registry.snapshot()
    if not any(snap.values()):
        return  # the workload never touched an instrumented path
    os.makedirs(METRICS_DIR, exist_ok=True)
    name = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    registry.write_json(os.path.join(METRICS_DIR, f"{name}.json"))


@pytest.fixture
def save_table(results_dir):
    """Writer fixture: ``save_table(name, text)`` persists and echoes."""

    def _save(name: str, text: str) -> None:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
