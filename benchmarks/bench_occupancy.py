"""Occupancy profiler validation: analytic model, lane fill, disabled cost.

Three claims from the utilization-profiler PR, measured:

1. **The sampled occupancy matches the analytic ``2i+j`` model.**  The
   RTL array's per-cycle busy mask integrates to exactly ``l+2`` busy
   cycles per cell over a multiplication, so measured idle fraction at
   l=64 must land within ``idle_fraction_tolerance`` of
   ``1 - (l+2)/(3l+4)`` (corrected) / ``1 - (l+2)/(3l+3)`` (paper) —
   for both the RTL array source and the gate-level engine's
   controller-derived MUL-cycle stream.

2. **Lane-fill accounting counts what the bit-sliced engine wastes.**
   An 8-of-64-lane dispatch must report ``hdl.lane_fill`` p50 at the
   baseline floor and ``hdl.wasted_lane_cycles`` equal to
   ``(lanes - used) * cycles`` exactly.

3. **Profiling disabled costs < ``max_disabled_overhead_pct`` on the
   ``repro bench-sim`` workload.**  Every occupancy hook sits inside a
   pre-existing ``if OBS.enabled:`` guard (array/compiled hot loops) or
   behind one boolean per MUL cycle (interpreted gate loop), so the
   disabled path executes essentially no new instructions.  The A/B here
   times the bench-sim lane-batch core twice with observation fully off —
   the delta bounds disabled-path cost plus run-to-run jitter — and then
   once with full metrics+occupancy profiling on, reporting the marginal
   cost of *enabled* profiling alongside (informational, not gated).

Artifacts: ``results/occupancy.txt`` (all three sections) with floors
asserted from ``baselines/occupancy.json``.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.analysis.tables import render_table
from repro.montgomery.params import precompute_montgomery_constants
from repro.observability import (
    MetricsRegistry,
    OccupancyRecorder,
    analytic_idle_fraction,
    observe,
)
from repro.systolic.array import SystolicArrayRTL
from repro.systolic.mmmc_netlist import GateLevelMMMC
from repro.utils.rng import random_odd_modulus

L = 64
LANES = 64
BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baselines", "occupancy.json"
)


def _floors() -> dict:
    with open(BASELINE) as fh:
        return json.load(fh)


def _operands(l: int, seed: str = "occupancy"):
    rng = random.Random(seed)
    n = random_odd_modulus(l, rng)
    return n, rng.randrange(n), rng.randrange(n)


def _best_of(repeat: int, fn) -> float:
    best = float("inf")
    for _ in range(max(repeat, 1)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_idle_fraction_matches_analytic(save_table):
    """Claim 1: measured idle fraction vs the ``2i+j`` model, both modes."""
    floors = _floors()
    tol = floors["idle_fraction_tolerance"]
    n, x, y = _operands(L)

    rows = []
    for mode in ("corrected", "paper"):
        model = analytic_idle_fraction(L, mode)

        occ = OccupancyRecorder()
        with observe(metrics=MetricsRegistry(), occupancy=occ):
            SystolicArrayRTL(L, mode=mode).run_multiplication(x, y, n)
        rtl_idle = occ.idle_fraction("array")

        occ = OccupancyRecorder()
        with observe(metrics=MetricsRegistry(), occupancy=occ):
            GateLevelMMMC(L, mode=mode, simulator="compiled").multiply(x, y, n)
        gate_idle = occ.idle_fraction("gate")

        for source, idle in (("array (RTL)", rtl_idle), ("gate (netlist)", gate_idle)):
            rows.append(
                [
                    mode,
                    source,
                    f"{model:.4f}",
                    f"{idle:.4f}",
                    f"{idle - model:+.4f}",
                ]
            )
            assert abs(idle - model) <= tol, (
                f"{mode}/{source}: measured idle {idle:.4f} deviates from "
                f"analytic {model:.4f} by more than {tol}"
            )

    save_table(
        "occupancy_model",
        render_table(
            ["mode", "source", "analytic idle", "measured idle", "delta"],
            rows,
            title=f"l={L} occupancy vs 2i+j model (tolerance {tol})",
        ),
    )


def test_lane_fill_accounting(save_table):
    """Claim 2: an 8-of-64 dispatch is accounted lane for lane."""
    floors = _floors()
    used = floors["lane_fill_p50_floor"]
    n, _, _ = _operands(16)
    rng = random.Random("lane-fill")
    xs = [rng.randrange(n) for _ in range(used)]
    ys = [rng.randrange(n) for _ in range(used)]

    registry = MetricsRegistry()
    occ = OccupancyRecorder()
    vec = GateLevelMMMC(16, simulator="compiled", lanes=LANES)
    with observe(metrics=registry, occupancy=occ):
        runs = vec.multiply_lanes(xs, ys, [n] * used)

    fill = registry.histogram("hdl.lane_fill").aggregate()
    assert fill.count == 1 and fill.min == used == fill.max
    p50 = registry.histogram("hdl.lane_fill").percentile(50)
    assert p50 >= floors["lane_fill_p50_floor"], (
        f"lane_fill p50 {p50} below floor {floors['lane_fill_p50_floor']}"
    )
    wasted = registry.counter("hdl.wasted_lane_cycles").total()
    cycles = runs[0].cycles
    assert wasted == (LANES - used) * cycles, (wasted, LANES - used, cycles)
    lanes_idle = occ.idle_fraction("hdl.lanes")
    assert abs(lanes_idle - (LANES - used) / LANES) < 1e-9

    save_table(
        "occupancy_lanes",
        render_table(
            ["lanes", "used", "p50 fill", "cycles", "wasted lane-cycles", "lane idle"],
            [[LANES, used, f"{p50:g}", cycles, int(wasted), f"{lanes_idle:.1%}"]],
            title=f"lane-fill accounting, {used}-of-{LANES} dispatch at l=16",
        ),
    )


def test_profiling_overhead(save_table):
    """Claim 3: disabled profiling is free on the bench-sim lane batch."""
    floors = _floors()
    n, _, _ = _operands(L)
    rng = random.Random("overhead")
    xs = [rng.randrange(n) for _ in range(LANES)]
    ys = [rng.randrange(n) for _ in range(LANES)]
    ns = [n] * LANES
    vec = GateLevelMMMC(L, simulator="compiled", lanes=LANES)
    vec.multiply_lanes(xs, ys, ns)  # warmup: compile + trace caches

    batch = lambda: vec.multiply_lanes(xs, ys, ns)
    repeat = 10
    with observe():  # observation fully off, overriding the harness session
        disabled_a = _best_of(repeat, batch)
        disabled_b = _best_of(repeat, batch)
    with observe(metrics=MetricsRegistry(), occupancy=OccupancyRecorder()):
        enabled = _best_of(repeat, batch)

    base = min(disabled_a, disabled_b)
    disabled_delta = abs(disabled_a - disabled_b) / base * 100
    enabled_overhead = (enabled - base) / base * 100

    save_table(
        "occupancy",
        render_table(
            ["configuration", "batch ms", "delta vs disabled"],
            [
                ["disabled (run A)", f"{disabled_a * 1e3:.3f}", "—"],
                [
                    "disabled (run B)",
                    f"{disabled_b * 1e3:.3f}",
                    f"{disabled_delta:+.2f}% (run-to-run)",
                ],
                [
                    "metrics+occupancy",
                    f"{enabled * 1e3:.3f}",
                    f"{enabled_overhead:+.2f}% (enabled, informational)",
                ],
            ],
            title=(
                f"profiling cost on the bench-sim {LANES}-lane batch at l={L} "
                f"(min of {repeat}; disabled gate "
                f"<{floors['max_disabled_overhead_pct']}%)"
            ),
        ),
    )
    assert disabled_delta < floors["max_disabled_overhead_pct"], (
        f"disabled-path cost (incl. jitter) {disabled_delta:.2f}% exceeds "
        f"{floors['max_disabled_overhead_pct']}% — the dormant instrumentation "
        f"is no longer free"
    )
