"""Sharded data-plane scaling: batched binary IPC vs the inline baseline.

The sharding PR's headline claim, measured end to end: the 200-request /
8-moduli workload through :class:`repro.serving.ModExpService` with
``worker_kind="shard"`` — coalesced batches crossing per-shard pipes as
single binary frames, each modulus homed on one warm worker — scales
near-linearly with available cores, and *never loses* to the sequential
inline baseline even on a single core (where the win is that frames and
warm caches cost less than they save).

Two proofs ride along with the timing:

* **Correctness** — every sharded value is checked against
  ``pow(base, exponent, modulus)``.
* **Homing** — the per-shard telemetry shows each modulus derived its
  Montgomery constants exactly once, on its home shard, with every
  later batch a cache hit (``montgomery.precompute{shard=i}`` misses
  equal the moduli homed on shard *i*; hits dominate).

The core-count guard mirrors ``bench_serving.py``: the >=3x assertion
needs >=4 available cores (affinity-aware); below that the table and
JSON artifact record the measured ratio with the core count, and the
floor drops to "not slower than inline".  The JSON twin
(``results/serving_scale.json``) carries everything machine-readable,
and the ``serving.scale_*`` gauges land in the metrics snapshot so CI
can gate the speedup with ``repro obs diff --require``.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.analysis.tables import render_table
from repro.montgomery.params import montgomery_cache_clear
from repro.serving import ModExpRequest, ModExpService
from repro.utils.rng import random_odd_modulus

REQUESTS = 200
MODULI = 8  # four 128-bit + four 192-bit

#: Chosen so consistent hashing spreads the 8 moduli evenly: on 4
#: shards each gets one 128-bit and one 192-bit modulus; on 2 shards
#: the split is 4/4.  A lumpier seed would cap the measurable speedup
#: below the parallelism actually available.
SEED = "serving-scale-1003"

TIMED_PASSES = 3  # best-of, after one warmup pass


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _workload() -> list:
    rng = random.Random(SEED)
    moduli = [random_odd_modulus(128, rng) for _ in range(MODULI // 2)]
    moduli += [random_odd_modulus(192, rng) for _ in range(MODULI // 2)]
    out = []
    for i in range(REQUESTS):
        n = moduli[i % MODULI]
        out.append(
            ModExpRequest(
                rng.randrange(n), rng.randrange(1, n), n, request_id=f"s{i}"
            )
        )
    return out


def _timed_pass(service, requests) -> float:
    """One timed pass; every result pow()-verified."""
    t0 = time.perf_counter()
    results = service.process(requests)
    elapsed = time.perf_counter() - t0
    assert len(results) == len(requests)
    for request, result in zip(requests, results):
        assert result.ok, result.error
        assert result.value == pow(
            request.base, request.exponent, request.modulus
        )
    return elapsed


def test_sharded_scale_and_homing(save_table, benchmark_metrics):
    requests = _workload()
    cores = _available_cores()
    shards = 4 if cores >= 4 else (2 if cores >= 2 else 1)

    # Workers inherit the parent's constant cache at fork; clear it
    # first so the per-shard miss/hit accounting the homing proof reads
    # starts cold.  Timed passes are *interleaved* (inline, shard,
    # inline, shard, ...) so slow drift on a shared machine biases both
    # configurations equally instead of whichever ran second.
    montgomery_cache_clear()
    with ModExpService(
        backend="integer", workers=shards, worker_kind="shard", max_batch=64
    ) as shard_svc, ModExpService(
        backend="integer", workers=1, worker_kind="inline", max_batch=64
    ) as inline_svc:
        shard_svc.process(requests[:MODULI])  # warm the forked workers
        inline_svc.process(requests[:MODULI])
        inline_s = shard_s = float("inf")
        for _ in range(TIMED_PASSES):
            inline_s = min(inline_s, _timed_pass(inline_svc, requests))
            shard_s = min(shard_s, _timed_pass(shard_svc, requests))
    speedup = inline_s / shard_s

    # Homing proof from the merged per-shard telemetry: constants for
    # each modulus were derived exactly once, on its home shard — every
    # warmup-and-later batch for that modulus was a cache hit there.
    misses = benchmark_metrics.counter("montgomery.precompute")
    hits = benchmark_metrics.counter("montgomery.precompute_cache_hits")
    per_shard = {
        str(i): {
            "precompute_misses": misses.total(shard=str(i)),
            "precompute_hits": hits.total(shard=str(i)),
        }
        for i in range(shards)
    }
    shard_misses = sum(row["precompute_misses"] for row in per_shard.values())
    shard_hits = sum(row["precompute_hits"] for row in per_shard.values())
    assert shard_misses == MODULI, per_shard
    # The balanced seed splits the keyring evenly across the ring.
    assert all(
        row["precompute_misses"] == MODULI // shards
        for row in per_shard.values()
    ), per_shard
    # Warmup + two timed passes: at least two warm batches per modulus.
    assert shard_hits >= 2 * MODULI, per_shard

    # Gauges behind the CI `repro obs diff --require` gate.
    benchmark_metrics.gauge("serving.scale_speedup").set(round(speedup, 3))
    benchmark_metrics.gauge("serving.scale_cores").set(cores)
    benchmark_metrics.gauge("serving.scale_shards").set(shards)

    rows = [
        [
            "inline (sequential)",
            round(inline_s, 3),
            round(REQUESTS / inline_s, 1),
        ],
        [
            f"{shards} shard workers",
            round(shard_s, 3),
            round(REQUESTS / shard_s, 1),
        ],
        ["speedup", "-", round(speedup, 2)],
    ]
    table = render_table(
        ["configuration", "wall s", "req/s"],
        rows,
        title=(
            f"Sharded serving data plane: {REQUESTS} requests, {MODULI} "
            f"moduli (128/192-bit), integer backend, {cores} available "
            f"cores, best of {TIMED_PASSES}"
        ),
    )
    save_table("serving_scale", table)

    results_dir = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "results"
    )
    with open(os.path.join(results_dir, "serving_scale.json"), "w") as fh:
        json.dump(
            {
                "workload": {
                    "seed": SEED,
                    "requests": REQUESTS,
                    "moduli": MODULI,
                    "modulus_bits": [128, 192],
                },
                "cores_available": cores,
                "shards": shards,
                "timed_passes": TIMED_PASSES,
                "inline_s": round(inline_s, 4),
                "shard_s": round(shard_s, 4),
                "speedup": round(speedup, 3),
                "inline_rps": round(REQUESTS / inline_s, 1),
                "shard_rps": round(REQUESTS / shard_s, 1),
                "per_shard": per_shard,
            },
            fh,
            indent=2,
        )
        fh.write("\n")

    if cores >= 4:
        assert speedup >= 3.0, (
            f"expected >=3x with {shards} shards on {cores} cores, "
            f"got {speedup:.2f}x"
        )
    elif cores >= 2:
        assert speedup >= 1.3, (
            f"expected >=1.3x with {shards} shards on {cores} cores, "
            f"got {speedup:.2f}x"
        )
    else:
        # One core: sharding can't add throughput, but frames + warm
        # caches must at least pay for themselves.
        assert speedup >= 0.9, (
            f"sharded plane slower than inline on 1 core: {speedup:.2f}x"
        )
