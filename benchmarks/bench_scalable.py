"""Extension: the paper's array vs the Tenca-Koç scalable unit [26].

Section 2 presents the scalable architecture as the flexible alternative
("ability to work on any given operand precision, adjustable to any chip
area").  This bench puts both designs on one latency-vs-area axis for
1024-bit operands: the paper's full array is the low-latency/high-area
corner; scalable configurations trace the rest of the Pareto front.
"""

import random

from repro.analysis.tables import render_table
from repro.baselines.scalable import ScalableUnit, scalable_montgomery
from repro.montgomery.params import MontgomeryContext
from repro.systolic.timing import mmm_cycles
from repro.utils.rng import random_odd_modulus


def test_latency_area_pareto(benchmark, save_table):
    n_bits = 1024

    def sweep():
        rows = []
        # The paper's array: one cell per bit, 3l+4 cycles.
        rows.append(["paper array", "-", n_bits + 1, mmm_cycles(n_bits)])
        for w, p in ((8, 4), (8, 16), (8, 64), (16, 16), (32, 8), (16, 32)):
            u = ScalableUnit(word=w, stages=p)
            rows.append([f"scalable w={w}", p, u.area_cells, u.mmm_cycles(n_bits)])
        return rows

    rows = benchmark(sweep)
    save_table(
        "scalable_pareto",
        render_table(
            ["design", "stages", "area (cell equivalents)", "T_MMM cycles"],
            rows,
            title=f"Latency vs area at {n_bits} bits: paper array vs Tenca-Koç",
        ),
    )
    paper_area, paper_cycles = rows[0][2], rows[0][3]
    small = [r for r in rows[1:] if r[2] <= paper_area // 4]
    large = [r for r in rows[1:] if r[2] > paper_area // 2]
    for row in rows[1:]:
        assert row[2] < paper_area, "every scalable config is smaller"
    for row in small:
        assert row[3] > paper_cycles, "small configs pay in latency"
    # Finding: a scalable unit at ~half the array's area can *undercut*
    # the array's latency, because the 2i+j wavefront only keeps 50% of
    # the array's cells busy (see the Fig. 2 occupancy bench).  The
    # array's edge is its clock (1-bit cells), not its cycle count.
    assert any(r[3] < paper_cycles for r in large) or not large


def test_scalable_kernel_correct(benchmark):
    """Functional word-serial kernel at RSA size."""
    rng = random.Random(71)
    n = random_odd_modulus(512, rng)
    ctx = MontgomeryContext(n)
    x, y = rng.randrange(n), rng.randrange(n)

    got = benchmark(lambda: scalable_montgomery(ctx, x, y, 32))
    assert got == (x * y * pow(1 << ctx.l, -1, n)) % n
