"""Extension ablation: overlapped multiplication issue on the array.

The paper's own pre-computation count (5l+10 = two issues at 2(l+2)+1
plus a drain) implies the array supports pipelined back-to-back
multiplications, but its measured totals charge a full 3l+4 per
operation.  The issue model in repro.systolic.pipeline quantifies what
the overlap is worth for a whole exponentiation: multiplications by the
standing M·R can stream the previous result into X and start ~l cycles
early; squarings cannot (they need the result in parallel).
"""

import random

from repro.analysis.tables import render_table
from repro.systolic.pipeline import (
    IssuePlanner,
    exponentiation_cycles_overlapped,
    issue_interval,
    precomputation_overlapped,
)
from repro.systolic.timing import precomputation_cycles


def test_overlap_exponentiation_saving(benchmark, save_table):
    def sweep():
        rows = []
        for l in (160, 512, 1024, 2048):
            e = random.Random(l).getrandbits(l) | (1 << (l - 1)) | 1
            ov, nov = exponentiation_cycles_overlapped(l, e)
            rows.append([l, nov, ov, round((nov - ov) / nov, 4)])
        return rows

    rows = benchmark(sweep)
    save_table(
        "ablation_overlap",
        render_table(
            ["l", "serial cycles", "overlapped cycles", "saving"],
            rows,
            title="Overlapped issue: streaming the result into the next X",
        ),
    )
    for _, nov, ov, saving in rows:
        assert ov < nov
        assert 0.05 <= saving <= 0.20  # ~1/3 of ops save ~1/3 of their cost


def test_paper_precomputation_formula_recovered(benchmark, save_table):
    rows = []

    def check():
        out = []
        for l in (32, 128, 1024):
            out.append(
                [
                    l,
                    precomputation_cycles(l),
                    precomputation_overlapped(l),
                    IssuePlanner(l).extend(["independent", "independent"]).total_cycles(),
                ]
            )
        return out

    for l, paper, derived, planner in benchmark(check):
        rows.append([l, paper, derived, planner])
        assert paper == derived
        assert abs(planner - paper) <= 1
    save_table(
        "ablation_overlap_pre",
        render_table(
            ["l", "paper 5l+10", "issue-model formula", "planner (2 ops)"],
            rows,
            title="The paper's pre-computation count is pipelined issue",
        ),
    )


def test_issue_interval_hierarchy(benchmark):
    l = 1024
    vals = benchmark(
        lambda: (
            issue_interval(l, "stream_x"),
            issue_interval(l, "independent"),
            issue_interval(l, "full_drain"),
        )
    )
    assert vals[0] < vals[1] < vals[2]
