"""Multi-array chip claims, measured: interleaved idle and chip throughput.

Two claims from the chip PR, gated against ``baselines/chip.json``:

1. **Wave interleaving recovers the 2i+j slack.**  A lone multiplication
   keeps each cell busy only ``l+2`` of ``3l+4`` cycles (~66% idle at
   l=64, the utilization profiler's headline).  Two parity-offset waves
   through the same lattice must measure idle ``<= interleaved_idle_max``
   (0.40) at l=64 — and within ``idle_model_tolerance`` of the analytic
   greedy-schedule model, while every result stays bit-identical to a
   sequential single-array run.

2. **The tiled chip multiplies throughput.**  A 2-tile x 2-wave chip
   retiring a batch must beat one sequential array by at least
   ``chip_speedup_floor`` (1.5x).  Cycles are the unit — at equal clock
   the cycle ratio *is* the MMM/s ratio — and the analytic steady-state
   model predicts 4x, so the floor has slack for drain edges.

The measured gauges (``chip.interleaved_idle_fraction``,
``chip.throughput_speedup``) land in
``results/metrics/chip_baseline.json``; CI re-checks the same floors from
the snapshot via ``repro obs diff --require``, so the gate holds even for
runs that skip pytest.
"""

from __future__ import annotations

import json
import os
import random

from repro.analysis.tables import render_table
from repro.chip import ChipModel, InterleavedArray, MMMOp
from repro.chip.schedule import (
    datapath_cycles,
    interleaved_idle_model,
    speedup_model,
)
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import precompute_montgomery_constants
from repro.observability import OccupancyRecorder, observe
from repro.utils.rng import random_odd_modulus

BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baselines", "chip.json"
)
METRICS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "metrics"
)


def _floors() -> dict:
    with open(BASELINE) as fh:
        return json.load(fh)


def _workload(l: int, count: int):
    rng = random.Random("bench-chip")
    n = random_odd_modulus(l, rng)
    ctx = precompute_montgomery_constants(n)
    ops = [
        MMMOp(rng.randrange(n), rng.randrange(n), n, tag=i)
        for i in range(count)
    ]
    golden = {op.tag: montgomery_no_subtraction(ctx, op.x, op.y) for op in ops}
    return ops, golden


def test_interleaved_idle_and_chip_throughput(save_table, benchmark_metrics):
    floors = _floors()
    l = floors["l"]
    waves = floors["interleaved_waves"]
    per_mmm = datapath_cycles(l) + 1  # T_MMM = 3l+5 on the corrected array

    # Claim 1: W-wave interleave — differential + measured idle.
    ops, golden = _workload(l, 4)
    occ = OccupancyRecorder()
    arr = InterleavedArray(l, waves=waves)
    with observe(metrics=benchmark_metrics, occupancy=occ):
        outcomes = arr.run(ops)
    assert len(outcomes) == len(ops)
    for o in outcomes:
        assert o.value == golden[o.op.tag], (
            f"interleaved result diverged from sequential at tag {o.op.tag}"
        )
    idle = occ.idle_fraction("interleaved")
    model = interleaved_idle_model(len(ops), l, waves=waves)
    assert abs(idle - model) <= floors["idle_model_tolerance"], (
        f"measured interleaved idle {idle:.4f} deviates from the greedy "
        f"model {model:.4f}"
    )
    assert idle <= floors["interleaved_idle_max"], (
        f"W={waves} interleaved idle {idle:.4f} above the "
        f"{floors['interleaved_idle_max']} ceiling"
    )

    # Claim 2: the tiled chip vs one sequential array.
    tiles, cwaves = floors["chip_tiles"], floors["chip_waves"]
    ops8, golden8 = _workload(l, 8)
    chip_occ = OccupancyRecorder()
    chip = ChipModel(l, tiles=tiles, waves=cwaves)
    with observe(metrics=benchmark_metrics, occupancy=chip_occ):
        chip_out = chip.run(ops8)
    assert len(chip_out) == len(ops8)
    for o in chip_out:
        assert o.value == golden8[o.op.tag]
    sequential = len(ops8) * per_mmm
    speedup = sequential / chip.cycle
    assert speedup >= floors["chip_speedup_floor"], (
        f"{tiles}x{cwaves} chip speedup {speedup:.2f}x below the "
        f"{floors['chip_speedup_floor']}x floor"
    )

    # Export the gated figures as gauges and pin the snapshot CI re-checks.
    benchmark_metrics.gauge("chip.interleaved_idle_fraction").set(idle)
    benchmark_metrics.gauge("chip.throughput_speedup").set(speedup)
    os.makedirs(METRICS_DIR, exist_ok=True)
    benchmark_metrics.write_json(os.path.join(METRICS_DIR, "chip_baseline.json"))

    lone_idle = interleaved_idle_model(1, l, waves=1)
    save_table(
        "chip_throughput",
        render_table(
            ["figure", "measured", "model/floor"],
            [
                [
                    "single-array idle (W=1)",
                    f"{lone_idle:.1%}",
                    "1-(l+2)/(3l+4)",
                ],
                [
                    f"interleaved idle (W={waves})",
                    f"{idle:.1%}",
                    f"model {model:.1%}, gate <= {floors['interleaved_idle_max']:.0%}",
                ],
                [
                    f"chip makespan ({tiles}x{cwaves}, {len(ops8)} MMMs)",
                    f"{chip.cycle} cycles",
                    f"sequential {sequential} cycles",
                ],
                [
                    "chip MMM/s vs single array",
                    f"{speedup:.2f}x",
                    f"steady-state {speedup_model(l, tiles=tiles, waves=cwaves):.1f}x, "
                    f"floor {floors['chip_speedup_floor']}x",
                ],
            ],
            title=(
                f"Multi-array chip at l={l} (cycle ratios = MMM/s ratios "
                "at equal clock)"
            ),
        ),
    )
