"""Reproduction finding: the printed leftmost cell drops a reachable carry.

The loop invariant of Algorithm 2 is ``T_i < Y + N`` (< 3N, not 2N), so
the undivided row sum ``S_i = 2·T_i`` can reach bit ``l+2`` whenever
``N > (2/3)·2^l`` — but Fig. 1(d)'s cell has only an XOR for bit ``l+1``
and nowhere to put bit ``l+2``.  This benchmark measures how often random
operand triples trigger the overflow as a function of ``N/2^l``, and costs
the corrected architecture that fixes it (+1 cell, ~+4 FFs, +1 cycle).
"""

import random

from repro.analysis.tables import render_table
from repro.errors import SimulationError
from repro.hdl.census import census
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext
from repro.systolic.array import SystolicArrayRTL
from repro.systolic.array_netlist import build_array


def _overflow_occurs(n: int, x: int, y: int, l: int) -> bool:
    """Pure recurrence check: does any row sum need bit l+2?"""
    t = 0
    for i in range(l + 2):
        xi = (x >> i) & 1
        m = (t ^ (xi & y)) & 1
        s = t + xi * y + m * n
        if s >> (l + 2):
            return True
        t = s >> 1
    return False


def test_overflow_frequency_vs_modulus_size(benchmark, save_table):
    l = 24

    def sweep_bands():
        rng = random.Random(31)  # re-seed per call: identical across rounds
        bands = []
        for lo_frac, hi_frac in ((0.5, 0.667), (0.667, 0.8), (0.8, 0.95), (0.95, 1.0)):
            hits = total = 0
            while total < 300:
                n = rng.randrange(int(lo_frac * (1 << l)) | 1, int(hi_frac * (1 << l)), 2)
                if n.bit_length() != l:
                    continue
                x, y = rng.randrange(2 * n), rng.randrange(2 * n)
                total += 1
                hits += _overflow_occurs(n, x, y, l)
            bands.append((lo_frac, hi_frac, hits, total))
        return bands

    bands = benchmark(sweep_bands)
    rows = [
        [f"{lo:.3f}-{hi:.3f}", hits, total, round(hits / total, 3)]
        for lo, hi, hits, total in bands
    ]
    save_table(
        "overflow_frequency",
        render_table(
            ["N / 2^l band", "overflows", "trials", "rate"],
            rows,
            title="Leftmost-cell carry loss frequency vs modulus magnitude (l=24)",
        ),
    )
    # Below 2/3 the design is provably safe; above it the rate is nonzero
    # and grows with N.
    assert bands[0][2] == 0
    rates = [h / t for _, _, h, t in bands[1:]]
    assert rates[-1] > 0
    assert rates == sorted(rates)


def test_paper_mode_raises_corrected_mode_computes(benchmark, save_table):
    """End-to-end on the RTL models with a known triggering operand set."""
    l, n, x, y = 31, 2094037023, 2652540660, 2813059522
    ctx = MontgomeryContext(n)
    golden = montgomery_no_subtraction(ctx, x, y)

    corrected = SystolicArrayRTL(l, mode="corrected")
    res = benchmark(lambda: corrected.run_multiplication(x, y, n))
    assert res.value == golden

    raised = False
    try:
        SystolicArrayRTL(l, mode="paper").run_multiplication(x, y, n)
    except SimulationError:
        raised = True
    save_table(
        "overflow_endtoend",
        render_table(
            ["architecture", "outcome", "cycles"],
            [
                ["printed (Fig. 2)", "carry lost (detected)", "-"],
                ["corrected (+1 cell)", f"correct = {res.value}", res.total_cycles],
            ],
            title=f"Known overflow triple (l={l}, N/2^l={n / 2**l:.3f})",
        ),
    )
    assert raised


def test_corrected_architecture_cost(benchmark, save_table):
    """What the fix costs in area and latency."""
    l = 64

    def censuses():
        return (
            census(build_array(l, "paper").circuit),
            census(build_array(l, "corrected").circuit),
        )

    cp, cc = benchmark(censuses)
    rows = [
        ["gates", cp.total_gates, cc.total_gates, cc.total_gates - cp.total_gates],
        ["flip-flops", cp.flip_flops, cc.flip_flops, cc.flip_flops - cp.flip_flops],
        ["cycles / MMM", 3 * l + 4, 3 * l + 5, 1],
    ]
    save_table(
        "overflow_cost",
        render_table(
            ["resource", "printed", "corrected", "delta"],
            rows,
            title=f"Cost of the corrected top cell (l={l})",
        ),
    )
    assert cc.total_gates - cp.total_gates <= 12
    assert cc.flip_flops - cp.flip_flops <= 4
