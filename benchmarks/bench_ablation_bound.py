"""Bound ablation: R = 2^(l+2) (this paper) vs R = 2^(l+3) (Blum–Paar [3]).

Section 2's claim: using Walter's optimal bound saves one iteration per
multiplication (l+2 vs l+3) and removes the extra algorithm step, which
over a ~1500-multiplication exponentiation is a few percent of cycles
before any clock-rate advantage.  We regenerate that comparison, plus the
window-stability probe showing why R cannot shrink below 4N.
"""

import random

from repro.analysis.tables import render_table
from repro.baselines.blum_paar import (
    BlumPaarModel,
    blum_paar_exponentiation_cycles,
    blum_paar_mmm_cycles,
    blum_paar_montgomery,
)
from repro.montgomery.bounds import probe_window_stability
from repro.montgomery.params import MontgomeryContext
from repro.systolic.timing import exponentiation_cycles_paper, mmm_cycles
from repro.utils.rng import random_odd_modulus


def test_bound_ablation_cycle_counts(benchmark, save_table):
    rng = random.Random(13)
    rows = []

    def run():
        out = []
        for l in (160, 512, 1024, 2048):
            e = rng.getrandbits(l) | (1 << (l - 1)) | 1
            ours_mmm = mmm_cycles(l)
            theirs_mmm = blum_paar_mmm_cycles(l)
            ours_exp = exponentiation_cycles_paper(l, e).total
            theirs_exp = blum_paar_exponentiation_cycles(l, e)
            out.append((l, ours_mmm, theirs_mmm, ours_exp, theirs_exp))
        return out

    for l, om, tm, oe, te in benchmark(run):
        rows.append([l, om, tm, oe, te, round(te / oe, 4)])
        assert om < tm
        assert oe < te
        # The per-multiplication saving is 2 cycles out of ~3l.
        assert 1.0 < te / oe < 1.05
    save_table(
        "ablation_bound_cycles",
        render_table(
            ["l", "MMM ours", "MMM B-P", "exp ours", "exp B-P", "B-P/ours"],
            rows,
            title="Bound ablation — cycle counts, R=2^(l+2) vs R=2^(l+3)",
        ),
    )


def test_bound_ablation_wall_clock(benchmark, save_table):
    """Adding the paper's clock-rate advantage over the B-P cells."""
    base_tp = 10.0
    rows = []

    def run():
        out = []
        for l in (512, 1024):
            e = (1 << l) - 1
            model = BlumPaarModel(l=l)
            ours_ns = exponentiation_cycles_paper(l, e).total * base_tp
            theirs_ns = model.exponentiation_time_ns(base_tp, e)
            out.append((l, ours_ns / 1e6, theirs_ns / 1e6))
        return out

    for l, ours_ms, theirs_ms in benchmark(run):
        rows.append([l, round(ours_ms, 2), round(theirs_ms, 2), round(theirs_ms / ours_ms, 2)])
        assert theirs_ms > ours_ms * 1.2, "clock penalty dominates the comparison"
    save_table(
        "ablation_bound_wallclock",
        render_table(
            ["l", "ours (ms)", "Blum-Paar model (ms)", "ratio"],
            rows,
            title="Bound ablation — modeled wall clock (all-ones exponent)",
        ),
    )


def test_window_stability_probe(benchmark, save_table):
    """Empirical Eq. (2): the 2N window is closed for r = l+2 and l+3,
    open for r = l (known violating operands exist)."""
    rng = random.Random(17)
    n = random_odd_modulus(16, rng)
    ops = [(rng.randrange(2 * n), rng.randrange(2 * n)) for _ in range(400)]
    ops.append((2 * n - 1, 2 * n - 1))

    def probe_all():
        return {
            r_off: probe_window_stability(n, n.bit_length() + r_off, ops)
            for r_off in (2, 3)
        }

    probes = benchmark(probe_all)
    rows = [
        [f"l+{off}", str(p.closed), p.max_output, 2 * n]
        for off, p in sorted(probes.items())
    ]
    # Known-violating small cases for r = l (from exhaustive search).
    for n_bad, x, y in [(3, 3, 5), (5, 7, 9), (7, 7, 13)]:
        bad = probe_window_stability(n_bad, n_bad.bit_length(), [(x, y)])
        rows.append([f"l (N={n_bad})", str(bad.closed), bad.max_output, 2 * n_bad])
        assert not bad.closed
    for p in probes.values():
        assert p.closed
    save_table(
        "ablation_bound_probe",
        render_table(
            ["R exponent", "window closed", "max output", "2N"],
            rows,
            title="Walter-bound window probe (x,y < 2N; closed iff R >= 4N)",
        ),
    )


def test_blum_paar_algorithm_correct(benchmark):
    """Functional sanity of the baseline itself."""
    rng = random.Random(19)
    n = random_odd_modulus(64, rng)
    ctx = MontgomeryContext(n)
    x, y = rng.randrange(2 * n), rng.randrange(2 * n)
    t = benchmark(lambda: blum_paar_montgomery(ctx, x, y))
    assert t % n == (x * y * pow(1 << (ctx.l + 3), -1, n)) % n
