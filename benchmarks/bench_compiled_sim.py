"""Compiled-kernel simulation throughput: PR 4's perf claim, measured.

Times the gate-level MMMC through the interpreted simulator, the
compiled single-lane kernel and the compiled 64-lane bit-sliced sweep at
l ∈ {16, 64, 256} on identical netlists and seeded operands.  Each width
is measured by ``repro bench-sim --json -`` in a fresh interpreter: the
pytest process itself slows the huge generated kernel functions by
~30-40% (interpreter-wide overhead that the per-gate interpreter loop
doesn't feel), which would understate exactly the speedup this suite
exists to guard.  The measurement core is
:mod:`repro.analysis.simbench`, shared with the CLI.

Three artifacts come out of one run:

1. ``results/compiled_sim.txt`` — the human-readable comparison table;
2. ``results/compiled_sim.json`` — machine-readable per-width numbers so
   future PRs have a perf trajectory;
3. hard floors from ``baselines/compiled_sim.json`` asserted at l=64:
   the compiled engine must stay ≥5x the interpreter single-lane and
   ≥50x aggregate with 64 lanes.  A codegen regression fails the suite
   loudly rather than silently eroding the speedup.

Engine agreement is cross-checked inside ``measure_engines`` (every
engine must produce identical products), so this is also a coarse
differential test at widths the unit suite doesn't reach.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import repro
from repro.analysis.simbench import SimBenchResult, result_rows
from repro.analysis.tables import render_table
from repro.hdl.compiled import clear_kernel_cache
from repro.systolic.mmmc_netlist import GateLevelMMMC

L_SET = (16, 64, 256)
LANES = 64
BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baselines", "compiled_sim.json"
)


def _measure_clean(l: int, repeat: int) -> SimBenchResult:
    """Run one width's measurement in a pristine interpreter."""
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "bench-sim",
            "--l", str(l), "--lanes", str(LANES),
            "--repeat", str(repeat), "--json", "-",
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
        check=True,
    )
    return SimBenchResult.from_json(json.loads(proc.stdout))


def test_compiled_engine_speedups(save_table, results_dir, benchmark_metrics):
    results = [
        # min-of-5 rides out GC pauses; the interpreter needs
        # ~0.5 s/mult at l=256, so fewer runs there.
        _measure_clean(l, repeat=5 if l < 256 else 2)
        for l in L_SET
    ]

    tables = []
    for r in results:
        tables.append(
            render_table(
                ["engine", "ms/MMM", "MMM/s", "gate-evals/s", "speedup"],
                result_rows(r),
                title=(
                    f"l={r.l}: {r.gates} gates, {r.dffs} DFFs, "
                    f"{r.cycles_per_mult} cycles/MMM, "
                    f"compile {r.compile_s:.3f}s"
                ),
            )
        )
    save_table("compiled_sim", "\n\n".join(tables))

    payload = {
        "lanes": LANES,
        "results": [r.as_json() for r in results],
    }
    json_path = os.path.join(results_dir, "compiled_sim.json")
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"[perf trajectory written to {json_path}]")

    with open(BASELINE) as fh:
        floors = json.load(fh)
    by_l = {r.l: r for r in results}
    gate = by_l[floors["l"]]
    single = gate.speedup("compiled")
    aggregate = gate.speedup("compiled+lanes")
    assert single >= floors["min_single_lane_speedup"], (
        f"compiled single-lane speedup regressed at l={floors['l']}: "
        f"{single:.1f}x < {floors['min_single_lane_speedup']}x floor"
    )
    assert aggregate >= floors["min_aggregate_speedup"], (
        f"compiled {LANES}-lane aggregate speedup regressed at "
        f"l={floors['l']}: {aggregate:.1f}x < "
        f"{floors['min_aggregate_speedup']}x floor"
    )

    # Kernel-cache accounting, probed under the live session from a cold
    # cache: one compile per distinct structural key (= per l), and the
    # 64-lane instance reuses the scalar kernel because lane count is
    # bound at bind time, not compile time.
    clear_kernel_cache()
    for l in L_SET:
        GateLevelMMMC(l, simulator="compiled")
    GateLevelMMMC(L_SET[0], simulator="compiled", lanes=LANES)
    misses = benchmark_metrics.counter("hdl.compile_cache_misses").total()
    hits = benchmark_metrics.counter("hdl.compile_cache_hits").total()
    assert misses == len(L_SET), (misses, hits)
    assert hits == 1, (misses, hits)
