"""Extension: the dual-field (GF(p) + GF(2^m)) story of Savaş et al. [24].

The paper cites the dual-field multiplier as an adjacent design with
"obvious benefits".  We quantify why it is nearly free: GF(2^m)
Montgomery multiplication is Algorithm 2 with the carry plane deleted, so
the binary-field cell is a strict subset of the paper's regular cell.
Functionally, the GF(2^163) field (NIST B-163) is exercised end to end.
"""

import random

from repro.analysis.tables import render_table
from repro.montgomery.gf2 import (
    NIST_B163_POLY,
    GF2MontgomeryContext,
    clmul,
    dual_field_cell_costs,
    gf2_modexp,
    poly_mod,
)


def test_dual_field_cell_cost_table(benchmark, save_table):
    costs = benchmark(dual_field_cell_costs)
    rows = [
        [c.mode, c.and_gates, c.xor_gates, c.or_gates, c.total_gates, c.flip_flops_per_cell]
        for c in costs.values()
    ]
    save_table(
        "dualfield_cells",
        render_table(
            ["cell mode", "AND", "XOR", "OR", "total", "FFs/cell"],
            rows,
            title="Per-cell cost: GF(p) vs GF(2^m) vs dual-field (paper's regular cell basis)",
        ),
    )
    assert costs["GF(2^m)"].total_gates * 3 <= costs["GF(p)"].total_gates
    assert costs["dual-field"].total_gates - costs["GF(p)"].total_gates <= 1


def test_b163_field_operations(benchmark, save_table):
    """Functional GF(2^163): Montgomery multiply + exponentiation,
    validated against schoolbook carry-less arithmetic."""
    ctx = GF2MontgomeryContext(NIST_B163_POLY)
    rng = random.Random(61)
    a = rng.getrandbits(163)
    b = rng.getrandbits(163)

    product = benchmark(lambda: ctx.field_multiply(a, b))
    assert product == poly_mod(clmul(a, b), NIST_B163_POLY)

    # Group order: a^(2^m - 1) = 1 for a != 0.
    assert gf2_modexp(ctx, a | 1, (1 << 163) - 1) == 1
    save_table(
        "dualfield_b163",
        render_table(
            ["check", "status"],
            [
                ["Mont product == schoolbook clmul+mod", "ok"],
                ["a^(2^163 - 1) == 1", "ok"],
                ["iterations per multiplication", ctx.m],
                ["no-subtraction window needed", "none (carry-free)"],
            ],
            title="GF(2^163) (NIST B-163) through the dual-field Montgomery loop",
        ),
    )


def test_gf2_array_architectures(benchmark, save_table):
    """The two dual-field datapath organizations, cycle-accurate:
    broadcast (one row per cycle, fanout-limited clock) vs systolic
    (the paper's 2i+j wavefront, cell-local clock)."""
    import random as _random

    from repro.systolic.gf2_array import Gf2ArrayBroadcast, Gf2ArraySystolic

    ctx = GF2MontgomeryContext(NIST_B163_POLY)
    rng = _random.Random(97)
    a, b = rng.getrandbits(163), rng.getrandbits(163)
    gold = ctx.multiply(a, b)

    sy = Gf2ArraySystolic(ctx)
    r_sy = benchmark(lambda: sy.multiply(a, b))
    bc = Gf2ArrayBroadcast(ctx)
    r_bc = bc.multiply(a, b)
    assert r_sy.value == r_bc.value == gold

    base_tp = 9.3
    rows = [
        ["broadcast", r_bc.total_cycles, round(bc.clock_period_ns(base_tp), 2),
         round(r_bc.total_cycles * bc.clock_period_ns(base_tp) / 1e3, 3)],
        ["systolic (2i+j)", r_sy.total_cycles, base_tp,
         round(r_sy.total_cycles * base_tp / 1e3, 3)],
        ["GF(p) same m (for scale)", 3 * 163 + 4, base_tp,
         round((3 * 163 + 4) * base_tp / 1e3, 3)],
    ]
    save_table(
        "dualfield_arrays",
        render_table(
            ["datapath", "cycles", "Tp (ns)", "T_MMM (us)"],
            rows,
            title="GF(2^163) multiplication: broadcast vs systolic vs GF(p)",
        ),
    )
    assert r_bc.total_cycles < r_sy.total_cycles <= 3 * 163 + 4


def test_binary_ecc_coordinates(benchmark, save_table):
    """Binary-field ECC on K-163: affine (one inversion per op) vs
    López–Dahab projective (one inversion per scalar multiplication)."""
    from repro.ecc.binary import NIST_K163, BinaryPoint, binary_scalar_multiply
    from repro.ecc.binary_ld import ld_scalar_multiply
    from repro.systolic.gf2_array import Gf2ArraySystolic

    fld = NIST_K163.field()
    g = BinaryPoint.generator(NIST_K163, fld)
    k = 0xDEADBEEFCAFEBABE1234567

    p_ld, m_ld = benchmark(lambda: ld_scalar_multiply(g, k))
    p_aff, m_aff = binary_scalar_multiply(g, k)
    assert p_ld.to_affine_ints() == p_aff.to_affine_ints()

    cycles_per_mult = Gf2ArraySystolic(NIST_K163.context()).multiply(1, 1).total_cycles
    rows = [
        ["affine (Fermat inversion per op)", m_aff, m_aff * cycles_per_mult],
        ["López–Dahab projective", m_ld, m_ld * cycles_per_mult],
        ["speedup", round(m_aff / m_ld, 1), "-"],
    ]
    # Third rung: tau-adic NAF (Frobenius replaces doublings entirely).
    from repro.ecc.koblitz import tnaf_scalar_multiply

    r_tnaf = tnaf_scalar_multiply(g, k)
    assert r_tnaf.point.to_affine_ints() == p_aff.to_affine_ints()
    rows.insert(
        2,
        [
            "López–Dahab + τNAF (Koblitz)",
            r_tnaf.field_multiplications,
            r_tnaf.field_multiplications * cycles_per_mult,
        ],
    )
    save_table(
        "dualfield_ecc_coords",
        render_table(
            ["coordinates", "field mults", "GF(2^163) array cycles"],
            rows,
            title=f"K-163 [k]G, |k| = {k.bit_length()} bits",
        ),
    )
    assert m_aff > 10 * m_ld
    assert r_tnaf.field_multiplications < m_ld


def test_gf2_has_no_overflow_finding(benchmark, save_table):
    """The reproduction's GF(p) overflow finding cannot occur in GF(2^m):
    XOR accumulation has no magnitude, so the result degree is always
    < m.  Verified on the operand corner that breaks the printed GF(p)
    array."""
    ctx = GF2MontgomeryContext(0x11B)  # AES field
    rng = random.Random(67)

    def corner_sweep():
        worst_deg = 0
        for _ in range(300):
            a, b = rng.getrandbits(8), rng.getrandbits(8)
            t = ctx.multiply(a, b)
            worst_deg = max(worst_deg, t.bit_length())
        return worst_deg

    worst = benchmark(corner_sweep)
    save_table(
        "dualfield_no_overflow",
        render_table(
            ["metric", "value"],
            [
                ["field", "GF(2^8), AES polynomial"],
                ["max result bit-length over sweep", worst],
                ["field degree m", ctx.m],
            ],
            title="GF(2^m) Montgomery: results never exceed degree m-1",
        ),
    )
    assert worst <= ctx.m
