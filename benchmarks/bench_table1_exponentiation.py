"""Table 1 regeneration: clock period and average exponentiation time.

Paper row (l, Tp ns, avg T_mod-exp ms):
    32   9.256   0.046
    128 10.242   0.775
    256  9.956   2.974
    512 10.501  12.468
    1024 10.458 49.508

Our row combines the measured-cycle average formula (validated against the
cycle-accurate exponentiator elsewhere in the suite) with the Virtex-E
timing model's Tp.  The pytest-benchmark entries time the exponentiator
engines themselves.
"""

import random

import pytest

from repro.analysis.tables import render_table
from repro.fpga.report import table1_rows
from repro.montgomery.params import MontgomeryContext
from repro.systolic.exponentiator import ModularExponentiator
from repro.utils.rng import random_odd_modulus


BITS = (32, 128, 256, 512, 1024)


def test_table1_regeneration(benchmark, save_table):
    rows = benchmark(lambda: table1_rows(BITS))
    table = render_table(
        ["l", "Tp model (ns)", "Tp paper (ns)", "avg exp model (ms)", "avg exp paper (ms)", "ratio"],
        [
            [
                r.l,
                round(r.tp_ns, 3),
                r.paper_tp_ns,
                round(r.avg_exp_ms, 3),
                r.paper_avg_exp_ms,
                round(r.avg_exp_ms / r.paper_avg_exp_ms, 3),
            ]
            for r in rows
        ],
        title="Table 1 — average modular exponentiation time (model vs paper)",
    )
    save_table("table1", table)
    # Shape assertions: each row within 10%, quadratic growth in l.
    for r in rows:
        assert r.avg_exp_ms == pytest.approx(r.paper_avg_exp_ms, rel=0.10)
    assert rows[-1].avg_exp_ms / rows[0].avg_exp_ms > 500  # ~ (1024/32)^2


def test_exponentiation_engine_rtl_l32(benchmark):
    """Wall-clock of the cycle-accurate RTL exponentiator at l = 32."""
    rng = random.Random(1)
    n = random_odd_modulus(32, rng)
    ctx = MontgomeryContext(n)
    exp = ModularExponentiator(ctx, engine="rtl")
    m, e = rng.randrange(n), rng.getrandbits(16) | 1

    result = benchmark(lambda: exp.exponentiate(m, e).result)
    assert result == pow(m, e, n)


def test_exponentiation_engine_golden_l1024(benchmark):
    """Wall-clock of the golden engine at RSA size (cycle counts exact)."""
    rng = random.Random(2)
    n = random_odd_modulus(1024, rng)
    ctx = MontgomeryContext(n)
    exp = ModularExponentiator(ctx, engine="golden")
    m, e = rng.randrange(n), rng.getrandbits(64) | 1

    result = benchmark(lambda: exp.exponentiate(m, e).result)
    assert result == pow(m, e, n)
