"""Extension: single-bit fault (SEU) susceptibility of the array.

Two results:

1. per-register-class corruption rates under random single-bit upsets —
   the dependability table an FPGA deployment (the paper's target) would
   need;
2. validation of the shadow-lattice microarchitecture theory: flips into
   a register's off-parity (shadow) phase must never corrupt the product,
   flips into the live phase almost always must.  This is the strongest
   available evidence that the RTL model is the machine we think it is.
"""

from repro.analysis.fault import FaultSite, campaign_summary, fault_campaign, inject_fault
from repro.analysis.tables import render_table

L, N, X, Y = 10, 811, 1200, 950


def test_fault_campaign_by_register(benchmark, save_table):
    outs = benchmark(lambda: fault_campaign(L, X, Y, N, samples=400, seed=3))
    summary = campaign_summary(outs)
    rows = [
        [reg, int(v["injections"]), round(v["corruption_rate"], 3)]
        for reg, v in summary.items()
    ]
    save_table(
        "fault_campaign",
        render_table(
            ["register class", "injections", "corruption rate"],
            rows,
            title=f"Single-bit upset campaign (l={L}, 400 flips, one multiplication)",
        ),
    )
    assert 0.3 <= summary["ALL"]["corruption_rate"] <= 0.7
    # The m broadcast is the most sensitive structure (its value fans out
    # across half the array for two cycles).
    assert summary["m_pipe"]["corruption_rate"] >= summary["ALL"]["corruption_rate"]


def test_shadow_lattice_theory(benchmark, save_table):
    """0% corruption on shadow-phase flips; 100% on mid-run live flips."""

    def sweep():
        shadow = live = shadow_n = live_n = 0
        for j in (2, 3, 4, 5):
            for tau in range(6, 2 * L):
                out = inject_fault(
                    L, X, Y, N, FaultSite(cycle=tau, register="t", index=j)
                )
                if tau % 2 == j % 2:
                    live += out.corrupted
                    live_n += 1
                else:
                    shadow += out.corrupted
                    shadow_n += 1
        return shadow, shadow_n, live, live_n

    shadow, shadow_n, live, live_n = benchmark(sweep)
    save_table(
        "fault_shadow",
        render_table(
            ["flip phase", "corrupted", "injections", "rate"],
            [
                ["shadow (off-parity)", shadow, shadow_n, round(shadow / shadow_n, 3)],
                ["live (on-parity)", live, live_n, round(live / live_n, 3)],
            ],
            title="Shadow-lattice prediction: only live-phase flips matter",
        ),
    )
    assert shadow == 0
    assert live == live_n
