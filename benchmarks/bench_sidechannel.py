"""Section 5 claim: removing the subtraction removes a side channel.

Algorithm 1's conditional final subtraction makes per-multiplication
latency data-dependent (two timing classes, variance across keys);
Algorithm 2 (the paper's circuit) executes every multiplication in exactly
3l+4 cycles.  We regenerate both distributions.
"""

import random

from repro.analysis.sidechannel import (
    leakage_summary,
    subtraction_trace,
    timing_histogram,
)
from repro.analysis.tables import render_table
from repro.montgomery.params import MontgomeryContext
from repro.systolic.exponentiator import ModularExponentiator
from repro.utils.rng import random_odd_modulus


def test_sidechannel_comparison(benchmark, save_table):
    rng = random.Random(23)
    n = random_odd_modulus(24, rng)

    def collect():
        traces = []
        for _ in range(16):
            m = rng.randrange(n)
            e = rng.getrandbits(20) | (1 << 19) | 1
            traces.append(subtraction_trace(n, m, e))
        return traces

    traces = benchmark(collect)
    alg1 = leakage_summary(traces)

    # Algorithm 2 through the exponentiator: every op costs the same.
    ctx = MontgomeryContext(n)
    exp = ModularExponentiator(ctx, engine="golden")
    costs = set()
    for tr in traces[:4]:
        run = exp.exponentiate(tr.result % n, tr.exponent)
        costs.update(c for _, c in run.operations)
    rows = [
        ["timing classes", alg1["timing_classes"], len(costs)],
        ["mean leak fraction", round(alg1["mean_leak_fraction"], 3), 0.0],
        ["leak-count variance", round(alg1["leak_count_variance"], 2), 0.0],
    ]
    save_table(
        "sidechannel",
        render_table(
            ["metric", "Algorithm 1 (final subtraction)", "Algorithm 2 (paper)"],
            rows,
            title="Side-channel surface: conditional subtraction vs none",
        ),
    )
    assert alg1["timing_classes"] == 2
    assert alg1["leak_count_variance"] > 0
    assert len(costs) == 1, "Algorithm 2 must be single-timing-class"


def test_spa_operation_sequence_leak(benchmark, save_table):
    """Beyond timing: the operation *sequence* of square-and-multiply
    hands the exponent to an SPA observer even with the constant-time
    multiplier; the powering ladder leaks only the bit length."""
    from repro.analysis.spa import spa_resistance_report

    rng = random.Random(41)
    n = random_odd_modulus(24, rng)
    e = rng.getrandbits(48) | (1 << 47) | 1

    rep = benchmark(lambda: spa_resistance_report(n, rng.randrange(n), e))
    sqm, lad = rep["square-multiply"], rep["ladder"]
    save_table(
        "sidechannel_spa",
        render_table(
            ["exponentiation", "exponent recovered", "value bits leaked"],
            [
                ["square-and-multiply (Alg. 3)", str(sqm.exact), sqm.leaked_bits],
                ["Montgomery powering ladder", str(lad.exact), lad.leaked_bits],
            ],
            title=f"SPA attack on the operation sequence ({e.bit_length()}-bit exponent)",
        ),
    )
    assert sqm.exact and sqm.recovered == e
    assert lad.leaked_bits == 0


def test_subtraction_rate_depends_on_data(benchmark, save_table):
    """The leak is exploitable because the rate varies per operand set."""
    rng = random.Random(29)
    n = random_odd_modulus(20, rng)

    def rates():
        out = []
        for _ in range(10):
            tr = subtraction_trace(n, rng.randrange(n), rng.getrandbits(24) | 1)
            out.append(tr.leak_fraction)
        return out

    rates_seen = benchmark(rates)
    hist_rows = [[i, round(r, 3)] for i, r in enumerate(rates_seen)]
    save_table(
        "sidechannel_rates",
        render_table(
            ["trace", "subtraction rate"],
            hist_rows,
            title="Algorithm 1 per-trace subtraction rates (data-dependent)",
        ),
    )
    assert len(set(round(r, 6) for r in rates_seen)) > 1
