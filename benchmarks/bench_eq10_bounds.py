"""Equation (10) regeneration: exponentiation cycle bounds.

    3l² + 10l + 12  <=  T_mod-exp  <=  6l² + 14l + 12

The lower bound is attained by a single-one exponent, the upper by an
all-ones exponent; random balanced exponents land near the midpoint
4.5l² + 12l + 12 (Table 1's "average").  We measure all three on the
exponentiator with exact RTL cycle accounting and print the comparison.
The measured numbers carry the two documented accounting deltas (pre/post
as full multiplications; +1 cycle per multiplication for the corrected
array), so the assertion uses a small relative tolerance.
"""

import random

from repro.analysis.tables import render_table
from repro.montgomery.params import MontgomeryContext
from repro.systolic.exponentiator import ModularExponentiator
from repro.systolic.timing import (
    average_exponentiation_cycles,
    exponentiation_cycle_bounds,
)
from repro.utils.rng import random_odd_modulus


def test_eq10_bounds(benchmark, save_table):
    rng = random.Random(11)
    rows = []

    def run_all():
        out = []
        for l in (16, 32, 64, 128):
            n = random_odd_modulus(l, rng)
            ctx = MontgomeryContext(n)
            exp = ModularExponentiator(ctx, engine="golden")
            lo, hi = exponentiation_cycle_bounds(l)
            e_min = 1 << l  # single one-bit, l+1 bits
            e_max = (1 << (l + 1)) - 1  # all ones
            e_rand = rng.getrandbits(l + 1) | (1 << l) | 1
            m = rng.randrange(n)
            c_min = exp.exponentiate(m, e_min).cycles
            c_max = exp.exponentiate(m, e_max).cycles
            c_rnd = exp.exponentiate(m, e_rand).cycles
            out.append((l, lo, c_min, hi, c_max, c_rnd))
        return out

    for l, lo, c_min, hi, c_max, c_rnd in benchmark(run_all):
        avg = average_exponentiation_cycles(l)
        rows.append([l, lo, c_min, hi, c_max, round(avg), c_rnd])
        # Shape: measured extremes within 3% of the paper bounds, and
        # ordered as the bounds demand.
        assert abs(c_min - lo) / lo < 0.05
        assert abs(c_max - hi) / hi < 0.05
        assert c_min < c_rnd < c_max
        # Random balanced exponent sits between the bounds, near midpoint.
        assert lo < c_rnd < hi
    save_table(
        "eq10",
        render_table(
            ["l", "Eq10 lower", "measured min", "Eq10 upper", "measured max",
             "avg formula", "measured random"],
            rows,
            title="Equation (10) — exponentiation cycle bounds vs measurement",
        ),
    )
