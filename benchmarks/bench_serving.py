"""Serving-engine throughput: batch coalescing + multi-worker scaling.

The serving PR's systems claim, measured end to end: a 200-request
mixed-modulus workload through :class:`repro.serving.ModExpService`
(integer backend) does exactly one Montgomery pre-computation per
distinct modulus per round — the batch scheduler's coalescing — and
four process workers beat the sequential baseline on the same workload.

The coalescing assertions are machine-independent and always run.  The
>=2x parallel-throughput assertion needs real cores, and the core count
that matters is the *available* one (:func:`os.sched_getaffinity` — CI
containers routinely pin fewer cores than ``os.cpu_count`` reports).  On
a single available core the 4-process comparison is skipped outright:
four processes on one core cannot beat one, so a "0.94x speedup" row
would only misread as a regression.  The results table says so
explicitly instead of publishing the misleading number.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.analysis.tables import render_table
from repro.montgomery.params import montgomery_cache_clear
from repro.serving import ModExpRequest, ModExpService
from repro.utils.rng import random_odd_modulus

REQUESTS = 200
MODULI = 8  # four 128-bit + four 192-bit


def _available_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux / restricted platforms
        return os.cpu_count() or 1


def _workload() -> list:
    rng = random.Random("bench-serving")
    moduli = [random_odd_modulus(128, rng) for _ in range(MODULI // 2)]
    moduli += [random_odd_modulus(192, rng) for _ in range(MODULI // 2)]
    out = []
    for i in range(REQUESTS):
        n = moduli[i % MODULI]
        out.append(
            ModExpRequest(
                rng.randrange(n), rng.randrange(1, n), n, request_id=f"r{i}"
            )
        )
    return out


def _run(workers: int, kind: str, requests) -> float:
    with ModExpService(
        backend="integer", workers=workers, worker_kind=kind, max_batch=64
    ) as service:
        t0 = time.perf_counter()
        results = service.process(requests)
        elapsed = time.perf_counter() - t0
    assert all(r.ok for r in results)
    for request, result in zip(requests, results):
        assert result.value == request.expected()
    return elapsed


def test_parallel_throughput_and_coalescing(save_table, benchmark_metrics):
    requests = _workload()
    montgomery_cache_clear()

    seq_s = _run(1, "inline", requests)
    # Coalescing: one pre-computation per distinct modulus, not per request.
    coalesced = benchmark_metrics.counter("serving.coalesced_precomputes")
    precompute = benchmark_metrics.counter("montgomery.precompute")
    assert coalesced.total() == MODULI
    assert precompute.total() == MODULI
    sizes = benchmark_metrics.histogram("serving.batch_size").series()
    assert sizes.count == MODULI and sizes.sum == REQUESTS

    cores = _available_cores()
    report = {
        "requests": REQUESTS,
        "moduli": MODULI,
        "modulus_bits": [128, 192],
        "cores_available": cores,
        "sequential_s": round(seq_s, 4),
        "sequential_rps": round(REQUESTS / seq_s, 1),
        "parallel": None,
    }
    rows = [
        ["sequential (1 worker)", round(seq_s, 3), round(REQUESTS / seq_s, 1)],
    ]
    if cores >= 2:
        par_s = _run(4, "process", requests)
        # Second round coalesces again but the constants cache already
        # holds every modulus: no new pre-computation work anywhere.
        assert coalesced.total() == 2 * MODULI
        assert precompute.total() == MODULI
        speedup = seq_s / par_s
        rows += [
            ["4 process workers", round(par_s, 3), round(REQUESTS / par_s, 1)],
            ["speedup", "-", round(speedup, 2)],
        ]
        report["parallel"] = {
            "workers": 4,
            "kind": "process",
            "wall_s": round(par_s, 4),
            "rps": round(REQUESTS / par_s, 1),
            "speedup": round(speedup, 3),
        }
    else:
        rows.append(
            [
                "4 process workers",
                "skipped",
                f"only {cores} core available",
            ]
        )
        report["parallel"] = {"skipped": f"only {cores} core available"}
    save_table(
        "serving_throughput",
        render_table(
            ["configuration", "wall s", "req/s"],
            rows,
            title=(
                f"Serving engine: {REQUESTS} requests, {MODULI} moduli "
                f"(128/192-bit), integer backend, {cores} available cores"
            ),
        ),
    )
    # JSON twin of the table: same figures machine-readable, with the
    # detected core count so a scraped result is interpretable without
    # knowing where it ran.
    results_dir = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "results"
    )
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "serving_throughput.json"), "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    if cores >= 4:
        # Generous margin below the ideal 4x: pool + pickling overhead.
        assert speedup >= 2.0, f"expected >=2x with 4 workers, got {speedup:.2f}x"
    elif cores >= 2:
        # Oversubscribed: just require the parallel path to not be
        # pathologically slower than sequential.
        assert speedup >= 0.25, f"parallel path degenerate: {speedup:.2f}x"


def test_accepted_counter_covers_every_request(benchmark_metrics):
    """The serving metrics account for every request exactly once."""
    requests = _workload()[:40]
    with ModExpService(backend="integer", workers=2, worker_kind="thread") as service:
        results = service.process(requests)
    assert all(r.ok for r in results)
    counters = benchmark_metrics.counter("serving.requests")
    assert counters.value(status="accepted", backend="integer") == 40
    assert counters.value(status="completed", backend="integer") == 40


BASELINE_REQUESTS = 32
BASELINE_MODULI = 4


def test_serving_baseline_snapshot(benchmark_metrics):
    """Deterministic metrics snapshot behind the ``obs diff`` CI gate.

    Inline execution on a seeded workload: every cycle-derived series in
    the snapshot is machine-independent (the worker label is always
    ``main``, the batch layout is fixed, the integer backend's cycle
    model is pure arithmetic).  The snapshot lands in
    ``results/metrics/serving_baseline.json``; CI diffs it against the
    committed copy in ``benchmarks/baselines/serving.json`` — only the
    wall-clock series vary per machine, and the gate ignores those.
    """
    montgomery_cache_clear()
    rng = random.Random("serving-baseline")
    moduli = [random_odd_modulus(96, rng) for _ in range(BASELINE_MODULI)]
    requests = [
        ModExpRequest(
            rng.randrange(moduli[i % BASELINE_MODULI]),
            rng.randrange(1, moduli[i % BASELINE_MODULI]),
            moduli[i % BASELINE_MODULI],
            request_id=f"b{i}",
        )
        for i in range(BASELINE_REQUESTS)
    ]
    with ModExpService(
        backend="integer", workers=1, worker_kind="inline", max_batch=16
    ) as service:
        results = service.process(requests)
    assert all(r.ok for r in results)
    for request, result in zip(requests, results):
        assert result.value == request.expected()

    # The latency series must exist — this is the regression test for the
    # process-boundary blind spot (metrics recorded but never surfaced).
    cycles = benchmark_metrics.histogram("serving.request_cycles").aggregate(
        backend="integer"
    )
    assert cycles is not None and cycles.count == BASELINE_REQUESTS
    assert benchmark_metrics.counter("serving.slo_checks").total() == BASELINE_REQUESTS

    metrics_dir = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "results", "metrics"
    )
    os.makedirs(metrics_dir, exist_ok=True)
    benchmark_metrics.write_json(
        os.path.join(metrics_dir, "serving_baseline.json")
    )
