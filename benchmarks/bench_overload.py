"""Overload drill: 2× capacity offered, graceful degradation delivered.

Two experiments against the sharded serving plane, both feeding the CI
``overload-drill`` job's ``repro obs diff --require`` gates:

1. **2× capacity drill** — measure the pool's capacity on a calibration
   workload, then offer twice that in one open-loop burst with the
   graceful-degradation ladder armed (token-bucket admission with an
   interactive reserve, CoDel shedding, per-class deadline budgets).
   The ladder must shed *batch* traffic, keep every admitted interactive
   request inside its deadline (``serving.deadline_violations`` stays
   zero for the class), and hold goodput at ≥ 90% of measured capacity —
   load regulation, not collapse.

2. **Hedged stragglers** — a seeded chaos plan wedges ~10% of requests
   (stuck worker sleeps, the slow-but-alive failure mode) on a two-shard
   pool.  The same workload runs hedging-off then hedging-on: after the
   p99-derived delay the service re-issues the straggler to the other
   shard (with the attempt index bumped, so the deterministic fault does
   not re-fire) and the first result wins.  Hedging must cut the
   straggler p99 at least in half on the same seed.

Every completed value in both experiments is verified against ``pow()``;
any mismatch is counted into ``serving.silent_corruptions`` (gated
``== 0`` in CI, exactly like the chaos drill).
"""

from __future__ import annotations

import random
import time

from repro.analysis.tables import render_table
from repro.observability import OBS
from repro.robustness import ChaosConfig
from repro.robustness.chaos import FaultPlan
from repro.serving import (
    HealthConfig,
    ModExpRequest,
    ModExpService,
    OverloadConfig,
)
from repro.serving.workload import WorkloadConfig, generate_workload
from repro.utils.rng import random_odd_modulus

# Heavy enough that execution dominates IPC and timer noise, light
# enough that the whole 2× burst drains in a second or two — the class
# budgets below are generous, so the drill exercises the deadline
# plumbing without manufacturing violations.
_WORKLOAD = dict(
    keys=4,
    bits=(192, 256),
    exponent_bits=(96,),
    zipf_s=1.2,
    interactive_share=0.25,
    interactive_budget_s=30.0,
    batch_budget_s=60.0,
)
CALIBRATION = 240
OFFERED = 480  # 2× the admission window below


def _percentile(samples: list, q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _verified_ok(requests, results) -> int:
    """Count ok results, folding any wrong value into the silent gauge."""
    ok = silent = 0
    for request, result in zip(requests, results):
        if not result.ok:
            continue
        if result.value == pow(request.base, request.exponent, request.modulus):
            ok += 1
        else:
            silent += 1
    if silent:
        OBS.count("serving.silent_corruptions", silent)
    assert silent == 0, f"{silent} silently corrupted value(s)"
    return ok


def test_overload_drill_at_2x_capacity(save_table, benchmark_metrics):
    # -- calibration: what can this pool actually serve? -----------------
    calibration = generate_workload(
        WorkloadConfig(requests=CALIBRATION, **_WORKLOAD), seed="ovl-cal"
    )
    with ModExpService(
        backend="integer", workers=2, worker_kind="shard"
    ) as service:
        service.process(calibration.requests[:16])  # spawn + warm caches
        t0 = time.perf_counter()
        results = service.process(calibration.requests)
        cal_wall = time.perf_counter() - t0
    assert _verified_ok(calibration.requests, results) == CALIBRATION
    capacity = CALIBRATION / cal_wall

    # -- the drill: 2× capacity in one open-loop burst -------------------
    drill = generate_workload(
        WorkloadConfig(requests=OFFERED, **_WORKLOAD), seed="ovl-drill"
    )
    # Reserve sizing: batch shares the bucket above the reserve line, so
    # interactive (~25% of arrivals) needs reserve + its share of the
    # shared region to cover its demand.  One half leaves slack for the
    # seeded class draw.
    overload = OverloadConfig(
        admit_rate=capacity,
        admit_burst=OFFERED / 2,  # one capacity-worth of burst tokens
        interactive_reserve=0.5,
        shed_target_s=0.25,
        interactive_budget_s=30.0,
        default_budget_s=60.0,
    )
    with ModExpService(
        backend="integer", workers=2, worker_kind="shard", overload=overload
    ) as service:
        service.process(calibration.requests[:16])  # spawn + warm caches
        t0 = time.perf_counter()
        results = service.process(drill.requests)
        drill_wall = time.perf_counter() - t0

    ok = _verified_ok(drill.requests, results)
    goodput = ok / drill_wall
    shed = {"interactive": 0, "batch": 0}
    interactive_admitted = interactive_ok = 0
    for request, result in zip(drill.requests, results):
        if result.error_type == "RequestShed":
            shed[request.priority] += 1
        elif request.priority == "interactive":
            interactive_admitted += 1
            interactive_ok += int(result.ok)

    save_table(
        "overload_drill",
        render_table(
            ["figure", "value"],
            [
                ["measured capacity", f"{capacity:.0f} req/s"],
                ["offered", f"{OFFERED} requests (2x) in one burst"],
                ["admitted / ok", f"{OFFERED - sum(shed.values())} / {ok}"],
                ["shed (batch)", shed["batch"]],
                ["shed (interactive)", shed["interactive"]],
                ["goodput", f"{goodput:.0f} req/s"],
                ["goodput / capacity", f"{goodput / capacity:.2f}"],
                [
                    "interactive served",
                    f"{interactive_ok}/{interactive_admitted} admitted",
                ],
            ],
            title=(
                "Overload drill: 2x capacity offered, token-bucket "
                "admission + interactive reserve + CoDel shedding"
            ),
        ),
    )

    # Load was regulated, not collapsed: batch gave way, interactive
    # survived whole, and the admitted work ran at ~capacity.
    assert shed["batch"] > 0
    assert shed["interactive"] == 0
    assert interactive_ok == interactive_admitted
    assert goodput >= 0.9 * capacity, (
        f"goodput {goodput:.0f}/s under 90% of capacity {capacity:.0f}/s"
    )
    assert benchmark_metrics.counter("serving.shed_requests").total() > 0
    if "serving.deadline_violations" in benchmark_metrics:
        violations = benchmark_metrics.counter("serving.deadline_violations")
        assert violations.total(**{"class": "interactive"}) == 0


STUCK = ChaosConfig(seed=23, stuck_rate=0.10, stuck_s=0.35)
MEASURED = 120
WARMUP = 16


def _straggler_requests():
    """A seeded request set whose hedges race *clean* re-executions.

    The fault plan is deterministic per ``(request_id, attempt)``, so the
    benchmark picks ids where attempt 0 is clean or stuck (the straggler
    population) and attempt 1 — what a hedge or requeue would draw — is
    always clean.  Warmup ids are fully clean.
    """
    plan = FaultPlan(STUCK)
    n = random_odd_modulus(768, random.Random("ovl-hedge"))
    rng = random.Random("ovl-hedge-ops")
    warm, requests, stragglers, i = [], [], 0, 0
    while len(requests) < MEASURED:
        rid = f"hs{i}"
        i += 1
        if plan.decide(rid, 1):
            continue
        stuck = bool(plan.decide(rid, 0))
        if len(warm) < WARMUP:
            if not stuck:
                warm.append(rid)
            continue
        stragglers += stuck
        requests.append(rid)
    make = lambda rid: ModExpRequest(
        rng.randrange(2, n), 65537, n, request_id=rid
    )
    return [make(r) for r in warm], [make(r) for r in requests], stragglers


def _run_hedge_trial(warm, requests, *, hedge: bool) -> list:
    # p90, not p99: the reservoir's first sample rides the worker spawn
    # (~hundreds of ms) and a p99 delay would stay pinned to it for the
    # whole run, firing every hedge far too late to rescue anything.
    overload = OverloadConfig(
        hedge=hedge,
        hedge_quantile=90.0,
        hedge_min_samples=8,
        hedge_min_delay_s=0.02,
    )
    # Stuck sleeps would read as latency strikes and drain the shard
    # mid-benchmark; health reactions are measured elsewhere.
    health = HealthConfig(degrade_factor=1e9, stuck_timeout_s=60.0)
    latencies = []
    with ModExpService(
        backend="integer",
        workers=2,
        worker_kind="shard",
        chaos=STUCK,
        overload=overload,
        health=health,
    ) as service:
        for request in warm:  # spawn workers, warm the hedge reservoir
            service.process([request])
        for request in requests:
            t0 = time.perf_counter()
            (result,) = service.process([request])
            latencies.append(time.perf_counter() - t0)
            assert result.ok, result.error
            assert result.value == pow(
                request.base, request.exponent, request.modulus
            )
    return latencies


def test_hedging_cuts_straggler_p99(save_table, benchmark_metrics):
    warm, requests, stragglers = _straggler_requests()
    assert stragglers >= 4, "chaos plan produced too few stragglers"

    plain = _run_hedge_trial(warm, requests, hedge=False)
    hedged = _run_hedge_trial(warm, requests, hedge=True)

    plain_p99 = _percentile(plain, 0.99)
    hedged_p99 = _percentile(hedged, 0.99)
    fired = benchmark_metrics.counter("serving.hedges_fired").total()
    wins = benchmark_metrics.counter("serving.hedge_wins").total(winner="hedge")

    save_table(
        "overload_hedging",
        render_table(
            ["run", "p50 ms", "p99 ms", "max ms"],
            [
                [
                    label,
                    round(_percentile(s, 0.50) * 1e3, 1),
                    round(_percentile(s, 0.99) * 1e3, 1),
                    round(max(s) * 1e3, 1),
                ]
                for label, s in (("hedging off", plain), ("hedging on", hedged))
            ]
            + [[
                "p99 cut",
                "-",
                f"{plain_p99 / hedged_p99:.1f}x",
                f"hedges fired={int(fired)} won={int(wins)}",
            ]],
            title=(
                f"Hedged stragglers: {MEASURED} requests, {stragglers} "
                f"stuck {STUCK.stuck_s * 1e3:.0f} ms sleeps (seed "
                f"{STUCK.seed}), 2 shards, first result wins"
            ),
        ),
    )

    # The same seed with hedging off eats every stuck sleep; with
    # hedging on the re-dispatch (attempt bumped, so the deterministic
    # fault does not re-fire) rescues the tail.
    assert plain_p99 >= STUCK.stuck_s * 0.9
    assert fired >= stragglers
    assert wins >= 1
    assert hedged_p99 < plain_p99 / 2, (
        f"hedging only cut p99 {plain_p99 * 1e3:.1f} ms -> "
        f"{hedged_p99 * 1e3:.1f} ms"
    )
