"""Radix ablation: radix-2 (the paper) vs word-based 2^α designs.

Section 2: with radix 2^α the multiplication needs ⌈(l+2)/α⌉ iterations
[1]; the trade is a longer cell critical path (the paper argues its 1-bit
purely combinational cells maximize clock rate).  We regenerate the
iteration/latency trade-off curve with the high-radix latency model, and
benchmark the functional SOS/CIOS/FIOS software forms against each other.
"""

import random

from repro.analysis.tables import render_table
from repro.baselines.highradix import HighRadixModel
from repro.montgomery.radix import (
    WordMontgomeryParams,
    mont_mul_cios,
    mont_mul_fios,
    mont_mul_sos,
)
from repro.utils.rng import random_odd_modulus

ALPHAS = (1, 2, 4, 8, 16, 32)


def test_radix_tradeoff_curve(benchmark, save_table):
    l = 1024
    base_tp = 10.0

    def build_curve():
        return [HighRadixModel(l=l, alpha=a) for a in ALPHAS]

    models = benchmark(build_curve)
    rows = []
    for m in models:
        rows.append(
            [
                m.alpha,
                m.iterations,
                m.mmm_cycles,
                round(m.clock_period_ns(base_tp), 2),
                round(m.mmm_time_ns(base_tp) / 1e3, 3),
            ]
        )
    save_table(
        "ablation_radix",
        render_table(
            ["alpha", "iterations", "cycles", "Tp model (ns)", "T_MMM (us)"],
            rows,
            title=f"Radix ablation — iterations vs clock penalty (l={l})",
        ),
    )
    # Shape: iterations fall ~1/alpha; clock rises monotonically.
    its = [m.iterations for m in models]
    assert its == sorted(its, reverse=True)
    tps = [m.clock_period_ns(base_tp) for m in models]
    assert tps == sorted(tps)
    # Radix-2 has the best clock; it is the paper's chosen point.
    assert tps[0] == base_tp


def test_radix_cycles_measured(benchmark, save_table):
    """The iteration counts, *measured* on the cycle-accurate high-radix
    machine rather than assumed from the formula."""
    from repro.montgomery.params import MontgomeryContext
    from repro.systolic.highradix_machine import HighRadixMachine

    rng = random.Random(83)
    n = random_odd_modulus(256, rng)
    x, y = rng.randrange(2 * n), rng.randrange(2 * n)

    def run_all():
        out = []
        for alpha in (1, 2, 4, 8, 16, 32):
            ctx = MontgomeryContext(n, word_bits=alpha)
            m = HighRadixMachine(ctx)
            r = m.multiply(x, y)
            # all radices compute the same residue modulo the R factor
            assert r.result % n == (x * y * pow(ctx.R, -1, n)) % n
            out.append((alpha, m.datapath_cycles, r.cycles, r.digit_products))
        return out

    rows = benchmark(run_all)
    save_table(
        "ablation_radix_measured",
        render_table(
            ["alpha", "formula ceil((l+2)/a)", "measured cycles", "digit products"],
            [[a, f, c, d] for a, f, c, d in rows],
            title="High-radix machine: measured cycle counts (l=256)",
        ),
    )
    for alpha, formula, cycles, _ in rows:
        assert cycles == formula + 1


def test_software_forms_benchmark(benchmark, save_table):
    """CIOS at word sizes: functional cross-check + wall-clock."""
    rng = random.Random(21)
    n = random_odd_modulus(1024, rng)
    x, y = rng.randrange(n), rng.randrange(n)
    params = {a: WordMontgomeryParams(n, a) for a in (8, 16, 32)}

    def run_cios32():
        return mont_mul_cios(params[32], x, y)

    result = benchmark(run_cios32)
    rows = []
    for a, p in params.items():
        ref = (x * y * p.r_inverse) % n
        assert mont_mul_sos(p, x, y) == ref
        assert mont_mul_cios(p, x, y) == ref
        assert mont_mul_fios(p, x, y) == ref
        rows.append([a, p.num_words, "ok"])
    assert result == (x * y * params[32].r_inverse) % n
    save_table(
        "ablation_radix_software",
        render_table(
            ["alpha", "words", "SOS=CIOS=FIOS"],
            rows,
            title="Word-based software forms agree at 1024 bits",
        ),
    )
