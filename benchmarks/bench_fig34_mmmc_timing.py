"""Figures 3-4 regeneration: the MMMC controller and its latency.

Fig. 4's ASM: IDLE -> MUL1 <-> MUL2 -> OUT, with X shifting in MUL2 and
the counter/comparator ending the loop; the text derives T_MMM = 3l+4.
We run the behavioral MMMC and the full gate-level MMMC netlist, print the
observed state sequence shape and the measured latency per l, and assert
both match the formula (paper mode) / formula+1 (corrected mode).
"""

import random

from repro.analysis.tables import render_table
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext
from repro.systolic.controller import State
from repro.systolic.mmmc import MMMC
from repro.systolic.mmmc_netlist import GateLevelMMMC
from repro.utils.rng import random_odd_modulus


def test_fig4_state_sequence(benchmark, save_table):
    l = 8
    n = 139  # 3N < 2^(l+1): safe for the printed architecture

    def run():
        m = MMMC(l, mode="paper")
        return m.multiply(100, 200, n)

    rec = benchmark(run)
    seq = rec.state_sequence
    counts = {s.name: sum(1 for t in seq if t is s) for s in State}
    save_table(
        "fig4_states",
        render_table(
            ["state", "cycles"],
            [[k, v] for k, v in counts.items()],
            title=f"Figure 4 — ASM state occupancy for one MMM (l={l})",
        ),
    )
    assert counts["IDLE"] == 1  # the load cycle
    assert counts["OUT"] == 1
    assert counts["MUL1"] + counts["MUL2"] == 3 * l + 3
    assert abs(counts["MUL1"] - counts["MUL2"]) <= 1
    # strict alternation
    muls = [s for s in seq if s in (State.MUL1, State.MUL2)]
    assert all(a is not b for a, b in zip(muls, muls[1:]))


def test_fig3_latency_scaling(benchmark, save_table):
    rng = random.Random(7)
    rows = []

    def measure_all():
        out = []
        for l in (8, 16, 32, 64, 128):
            n = random_odd_modulus(l, rng)
            x, y = rng.randrange(2 * n), rng.randrange(2 * n)
            m = MMMC(l, mode="corrected")
            run = m.multiply(x, y, n)
            assert run.result == montgomery_no_subtraction(MontgomeryContext(n), x, y)
            out.append((l, 3 * l + 4, run.cycles))
        return out

    for l, formula, measured in benchmark(measure_all):
        rows.append([l, formula, measured, measured - formula])
        assert measured == formula + 1  # corrected array: +1 cycle
    save_table(
        "fig3_latency",
        render_table(
            ["l", "paper 3l+4", "measured (corrected)", "delta"],
            rows,
            title="Figure 3 — MMMC latency: formula vs cycle-accurate measurement",
        ),
    )


def test_fig3_gate_level_agrees(benchmark, save_table):
    """The full gate netlist (controller + datapath) hits the same count."""
    l = 8
    rng = random.Random(9)
    n = random_odd_modulus(l, rng)
    x, y = rng.randrange(2 * n), rng.randrange(2 * n)
    g = GateLevelMMMC(l, "corrected")

    run = benchmark(lambda: g.multiply(x, y, n))
    assert run.result == montgomery_no_subtraction(MontgomeryContext(n), x, y)
    assert run.cycles == 3 * l + 5
    save_table(
        "fig3_gate_level",
        render_table(
            ["model", "cycles"],
            [["behavioral MMMC", 3 * l + 5], ["gate-level MMMC", run.cycles]],
            title=f"Figure 3 — gate-level vs behavioral latency (l={l})",
        ),
    )
