"""RSA application ablation: direct vs CRT decryption on the multiplier.

Not a paper table, but the natural systems question a user of this
exponentiator asks: RSA-CRT replaces one l-bit exponentiation with two
l/2-bit ones.  On *this* multiplier a multiplication costs 3l+4 cycles —
linear in l, unlike the quadratic software multipliers behind the folk
"CRT is 4x faster" — so the cycle saving is ~(3l)·(1.5l) / (2·(1.5l/2)·
(3l/2)) = 2x.  (The half-width datapath also halves the slice count, so
the time-area product still improves ~4x.)  This bench measures the cycle
ratio exactly through the cipher layer.
"""

import random

from repro.analysis.tables import render_table
from repro.rsa.cipher import RSACipher
from repro.rsa.keygen import generate_keypair


def test_crt_speedup(benchmark, save_table):
    key = generate_keypair(256, random.Random(0xBEEF))
    cipher = RSACipher(key, engine="golden")
    rng = random.Random(43)
    m = rng.randrange(key.modulus)
    c = cipher.encrypt(m).value

    crt_op = benchmark(lambda: cipher.decrypt_crt(c))
    direct_op = cipher.decrypt(c)
    assert crt_op.value == direct_op.value == m

    speedup = direct_op.cycles / crt_op.cycles
    save_table(
        "rsa_crt",
        render_table(
            ["path", "multiplications", "multiplier cycles"],
            [
                ["direct (l-bit exponentiation)", direct_op.multiplications, direct_op.cycles],
                ["CRT (two l/2-bit exponentiations)", crt_op.multiplications, crt_op.cycles],
                ["speedup", "-", round(speedup, 2)],
            ],
            title=f"RSA-{key.bits} decryption: direct vs CRT on the systolic multiplier",
        ),
    )
    # Linear-cost multiplier => ~2x in cycles (see module docstring).
    assert 1.7 <= speedup <= 2.4


def test_encrypt_fast_public_exponent(benchmark):
    """e = 65537 keeps encryption to 19 multiplications regardless of l."""
    key = generate_keypair(256, random.Random(0xF00D))
    cipher = RSACipher(key, engine="golden")
    op = benchmark(lambda: cipher.encrypt(0x12345))
    assert op.multiplications == 19
