"""Figure 1 regeneration: gate inventory of the four systolic cell types.

The paper's schematics give, per cell:

    regular   2 FA + 1 HA + 2 AND
    rightmost 1 AND + 1 OR + 1 XOR
    1st-bit   1 FA + 2 HA + 2 AND
    leftmost  1 FA + 1 AND + 1 XOR

We elaborate each cell netlist, census it, and print it next to the
paper's inventory expanded with our FA/HA decomposition (FA = 2 XOR +
2 AND + 1 OR, HA = 1 XOR + 1 AND).  Exact match is asserted — these are
the same schematics, drawn in code.
"""

from repro.analysis.tables import render_table
from repro.hdl.census import census
from repro.hdl.netlist import Circuit
from repro.systolic.cell_netlists import (
    build_first_bit_cell,
    build_leftmost_cell,
    build_regular_cell,
    build_rightmost_cell,
)


def _cell_census(builder, n_inputs):
    c = Circuit("cell")
    ins = [c.add_input(f"i{k}") for k in range(n_inputs)]
    builder(c, *ins)
    return census(c)


# (name, builder, inputs, FA, HA, extra AND, extra OR, extra XOR)
CELLS = [
    ("regular (a)", build_regular_cell, 7, 2, 1, 2, 0, 0),
    ("rightmost (b)", build_rightmost_cell, 3, 0, 0, 1, 1, 1),
    ("1st-bit (c)", build_first_bit_cell, 6, 1, 2, 2, 0, 0),
    ("leftmost (d)", build_leftmost_cell, 5, 1, 0, 1, 0, 1),
]


def _expand(fa, ha, a, o, x):
    """Paper inventory -> primitive gates under our decomposition."""
    return {
        "xor": 2 * fa + ha + x,
        "and": 2 * fa + ha + a,
        "or": fa + o,
    }


def test_fig1_cell_inventories(benchmark, save_table):
    rows = []

    def regenerate():
        out = []
        for name, builder, n_in, fa, ha, a, o, x in CELLS:
            cen = _cell_census(builder, n_in)
            expected = _expand(fa, ha, a, o, x)
            out.append((name, cen, expected))
        return out

    results = benchmark(regenerate)
    for name, cen, expected in results:
        measured = (
            f"{cen.by_kind.get('xor', 0)}/{cen.by_kind.get('and', 0)}"
            f"/{cen.by_kind.get('or', 0)}"
        )
        paper = f"{expected['xor']}/{expected['and']}/{expected['or']}"
        rows.append([name, paper, measured])
        assert cen.by_kind.get("xor", 0) == expected["xor"], name
        assert cen.by_kind.get("and", 0) == expected["and"], name
        assert cen.by_kind.get("or", 0) == expected["or"], name
        assert cen.flip_flops == 0, "cells are purely combinational"
    save_table(
        "fig1",
        render_table(
            ["cell", "paper XOR/AND/OR", "measured XOR/AND/OR"],
            rows,
            title="Figure 1 — systolic cell gate inventories",
        ),
    )
