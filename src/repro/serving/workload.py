"""Seeded, reproducible serving workloads: keyrings, Zipf traffic, bursts.

Every scaling claim in this repository needs the same three ingredients —
a keyring of moduli, a skewed popularity distribution over them, and an
open-loop arrival process — and ad-hoc ``random.Random`` loops in each
benchmark make cross-benchmark comparisons meaningless.  This module is
the single generator: one :class:`WorkloadConfig` plus a seed maps to one
exact request sequence, forever.

* **Keyring** — ``keys`` odd moduli drawn per configured bit width
  (round-robin over ``bits``), derived from the seed; key ``k`` of a
  config is stable under changes to every other knob.
* **Popularity** — key ranks are Zipf-weighted (``1/(rank+1)^s``): a few
  hot keys dominate, the tail stays warm — the shape that makes
  per-modulus batch coalescing interesting.
* **Exponents** — a configurable share of requests uses the fixed RSA
  verification exponent 65537; the rest draw random exponents of a
  random configured bit size (mixed sizes defeat naive lane packing,
  which is exactly what the chip backend's mixed-exponent groups are
  for).
* **Arrivals** — open loop: exponential inter-arrival times at ``rate``
  requests/second, multiplied by ``burst_factor`` inside periodic burst
  windows (``burst_every`` seconds apart, ``burst_len`` long).  The
  arrival time lands in ``ModExpRequest.deadline``, so the batch
  scheduler processes traffic in arrival order and queue-depth dynamics
  follow the bursts.
* **Priority mix** — an ``interactive_share`` of requests (drawn
  per-request from the same trace RNG, so the mix is reproducible) is
  tagged ``priority="interactive"``; each class can carry its own
  relative deadline budget (``interactive_budget_s`` /
  ``batch_budget_s``), which the service turns into an absolute
  ``expires_at`` at admission.  This is what the overload drill uses to
  show interactive traffic surviving a 2× overload while batch sheds.

``repro loadgen`` writes the result as JSON-lines via
:func:`~repro.serving.wire.request_to_json`, directly consumable by
``repro batch`` / ``repro serve``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParameterError
from repro.serving.request import ModExpRequest
from repro.utils.rng import random_odd_modulus

__all__ = ["WorkloadConfig", "Workload", "generate_workload"]

#: The ubiquitous RSA public exponent.
F4 = 65537


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of one reproducible workload.  See the module docstring."""

    requests: int = 200
    keys: int = 8
    bits: Tuple[int, ...] = (16, 24, 32)
    zipf_s: float = 1.1
    exponent_bits: Tuple[int, ...] = (8, 16)
    f4_share: float = 0.0
    rate: float = 200.0
    burst_factor: float = 1.0
    burst_every: float = 1.0
    burst_len: float = 0.25
    interactive_share: float = 0.0
    interactive_budget_s: Optional[float] = None
    batch_budget_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.requests < 0:
            raise ParameterError(f"requests must be >= 0, got {self.requests}")
        if self.keys < 1:
            raise ParameterError(f"keys must be >= 1, got {self.keys}")
        if not self.bits or any(b < 4 for b in self.bits):
            raise ParameterError(f"bits must be widths >= 4, got {self.bits}")
        if self.zipf_s < 0:
            raise ParameterError(f"zipf_s must be >= 0, got {self.zipf_s}")
        if not self.exponent_bits or any(b < 1 for b in self.exponent_bits):
            raise ParameterError(
                f"exponent_bits must be sizes >= 1, got {self.exponent_bits}"
            )
        if not 0.0 <= self.f4_share <= 1.0:
            raise ParameterError(f"f4_share must be in [0, 1], got {self.f4_share}")
        if self.rate <= 0:
            raise ParameterError(f"rate must be > 0, got {self.rate}")
        if self.burst_factor < 1.0:
            raise ParameterError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if self.burst_every <= 0 or not 0 <= self.burst_len <= self.burst_every:
            raise ParameterError(
                "need burst_every > 0 and 0 <= burst_len <= burst_every, got "
                f"{self.burst_every}/{self.burst_len}"
            )
        if not 0.0 <= self.interactive_share <= 1.0:
            raise ParameterError(
                f"interactive_share must be in [0, 1], got {self.interactive_share}"
            )
        for name in ("interactive_budget_s", "batch_budget_s"):
            budget = getattr(self, name)
            if budget is not None and budget <= 0:
                raise ParameterError(f"{name} must be > 0, got {budget}")


@dataclass(frozen=True)
class Workload:
    """The generated trace: requests (arrival order) and their keyring."""

    config: WorkloadConfig
    seed: str
    requests: List[ModExpRequest] = field(default_factory=list)
    keyring: List[int] = field(default_factory=list)
    arrivals: List[float] = field(default_factory=list)

    def key_histogram(self) -> Dict[int, int]:
        """Requests per keyring modulus (popularity check)."""
        counts: Dict[int, int] = {n: 0 for n in self.keyring}
        for r in self.requests:
            counts[r.modulus] += 1
        return counts

    def summary_rows(self) -> List[List[object]]:
        """Table rows for the CLI: rank, bits, share, requests."""
        counts = self.key_histogram()
        total = max(len(self.requests), 1)
        return [
            [rank, n.bit_length(), counts[n], f"{counts[n] / total:.1%}"]
            for rank, n in enumerate(self.keyring)
        ]


def _keyring(config: WorkloadConfig, seed: str) -> List[int]:
    ring: List[int] = []
    for k in range(config.keys):
        bits = config.bits[k % len(config.bits)]
        rng = random.Random(f"{seed}/key{k}/{bits}")
        n = random_odd_modulus(bits, rng)
        ring.append(n)
    return ring


def _zipf_weights(count: int, s: float) -> Sequence[float]:
    return [1.0 / (rank + 1) ** s for rank in range(count)]


def _in_burst(t: float, config: WorkloadConfig) -> bool:
    return config.burst_factor > 1.0 and (t % config.burst_every) < config.burst_len


def generate_workload(
    config: WorkloadConfig = WorkloadConfig(), seed: str = "workload"
) -> Workload:
    """The one exact request sequence for ``(config, seed)``."""
    keyring = _keyring(config, seed)
    weights = _zipf_weights(config.keys, config.zipf_s)
    rng = random.Random(f"{seed}/trace")
    requests: List[ModExpRequest] = []
    arrivals: List[float] = []
    t = 0.0
    for i in range(config.requests):
        rate = config.rate * (config.burst_factor if _in_burst(t, config) else 1.0)
        t += rng.expovariate(rate)
        n = rng.choices(keyring, weights=weights, k=1)[0]
        if config.f4_share and rng.random() < config.f4_share:
            exponent = F4
        else:
            ebits = rng.choice(config.exponent_bits)
            exponent = rng.randrange(1 << (ebits - 1), 1 << ebits) if ebits > 1 else 1
        interactive = (
            config.interactive_share > 0
            and rng.random() < config.interactive_share
        )
        priority = "interactive" if interactive else "batch"
        budget = (
            config.interactive_budget_s if interactive else config.batch_budget_s
        )
        requests.append(
            ModExpRequest(
                base=rng.randrange(1, n),
                exponent=exponent,
                modulus=n,
                request_id=f"{seed}-{i:05d}",
                deadline=t,
                priority=priority,
                budget_s=budget,
            )
        )
        arrivals.append(t)
    return Workload(
        config=config, seed=seed, requests=requests, keyring=keyring, arrivals=arrivals
    )
