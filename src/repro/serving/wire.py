"""Wire formats of the modexp service: JSON-lines and binary batch frames.

**JSON-lines** (human-facing): one request per line, one result per
line, UTF-8, newline-delimited — the format both ``repro serve``
(streaming over stdin/stdout) and ``repro batch`` (file in, file out)
speak.

**Binary batch frames** (the sharded data plane, :mod:`repro.serving.shard`):
the scheduler's coalesced batches cross the parent↔shard-worker pipe as
*one* compact frame per batch instead of one pickled task per request.
Big-int operands travel as raw big-endian bytes (an RSA-2048 modulus is
256 bytes, not a 617-digit decimal string), and the batch's shared
``(modulus, l)`` is encoded once per frame, not once per request.

Frame grammar (all integers unsigned, network byte order)::

    frame    := u32 length | payload            length = len(payload)
    payload  := (batch | results | nack) | u32 crc32
                crc32 covers every preceding payload byte; a mismatch
                raises :class:`WireFormatError` *before* any structural
                parsing, so a flipped byte inside a value bigint can
                never decode into a silently wrong answer — corruption
                on the shard wire always surfaces as detectable shard
                degradation
    batch    := 0x01 | u64 batch_id | u8 attempt | u8 bflags
                | bigint modulus | u32 l | u16 count | request*
                bflags bit 0: caller wants the telemetry snapshot
                (workers skip metrics capture entirely when clear)
                bflags bit 1: brownout cheap mode — the worker executes
                on its registry's cheapest capable backend instead of
                its primary
    request  := str16 id | bigint base | bigint exponent | u8 flags
                | [bigint p | bigint q]         when flags bit 0
                | [f64 expires_at]              when flags bit 1
                flags bit 2: priority class is interactive (batch when
                clear); ``expires_at`` is the absolute deadline on the
                ``time.monotonic()`` clock — valid across forked
                workers, checked worker-side before execution
    results  := 0x02 | u64 batch_id | f64 batch_wall_us | u16 count
                | result* | u32 tlen | telemetry-json
    nack     := 0x03 | u64 batch_id | str16 message
                the worker's decode-failure report: a batch frame it
                could not parse (``batch_id`` is 0 when even the header
                was unreadable); the parent degrades the shard and
                requeues the batch instead of killing the worker
    result   := str16 id | u8 ok
                ok=1: bigint value | u8 has_cycles | [u64 cycles] | f64 wall_us
                ok=0: str16 error_type | str16 check | str16 message
    bigint   := u32 n | n bytes, big-endian, minimal (0 encodes as n=0)
    str16    := u16 n | n bytes utf-8

``length`` is bounded by :data:`MAX_FRAME`; a declared length past the
bound, a truncated length prefix, or a payload shorter than its declared
structure all raise :class:`~repro.errors.WireFormatError` — a corrupt
pipe can never allocate unbounded memory or be half-parsed silently.
The trailing telemetry blob is the worker's per-batch metrics snapshot
(JSON — it is cold-path, per batch, and schema-free by design).

Request line fields
-------------------
``base``, ``exponent``, ``modulus``
    Required.  Integers, or strings parsed with base auto-detection
    (``"0x..."`` hex works — RSA-sized operands don't fit JSON numbers
    losslessly in every tool chain).
``id``
    Optional correlation id (string or integer; echoed back verbatim).
``l``
    Optional circuit width in bits.
``p``, ``q``
    Optional factors of the modulus for the CRT backend.
``timeout``
    Optional per-request wall-clock limit in seconds.
``deadline``
    Optional urgency key (earliest dispatches first).
``budget_ms``
    Optional completion budget in milliseconds.  Deadlines are
    *relative* on the JSON wire (an absolute monotonic timestamp means
    nothing to a remote client); the service converts the budget to an
    absolute ``expires_at`` at admission.
``priority``
    Optional priority class, ``"interactive"`` or ``"batch"``
    (default).  Under overload, batch traffic is shed first.

Result line fields
------------------
``id``, ``ok`` always; ``value`` (as a string when ≥ 2⁵³, so JavaScript
consumers cannot silently lose precision), ``cycles``, ``wall_us``,
``batch`` and ``backend`` on success; ``error`` / ``error_type`` on
failure.  A rejected request (backpressure) is ``ok: false`` with
``error_type: "QueueFull"``.

A blank input line is a **flush marker**: the serve loop dispatches its
buffered batch immediately instead of waiting for ``max_batch`` lines.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import (
    Any,
    BinaryIO,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ParameterError, WireFormatError
from repro.serving.request import ModExpRequest, ModExpResult

__all__ = [
    "parse_request_line",
    "request_to_json",
    "result_to_dict",
    "result_to_json",
    "read_requests",
    "MAX_FRAME",
    "encode_batch_frame",
    "decode_batch_frame",
    "batch_frame_cheap_mode",
    "encode_result_frame",
    "decode_result_frame",
    "encode_nack_frame",
    "decode_nack_frame",
    "write_frame",
    "read_frame",
    "iter_frames",
]

#: Integers at or above 2^53 are emitted as strings on the wire.
_JSON_SAFE_INT = 1 << 53


def _wire_error(message: str, request_id: str = "") -> WireFormatError:
    exc = WireFormatError(message)
    exc.request_id = request_id  # type: ignore[attr-defined]
    return exc


def _to_int(value: Any, field: str, request_id: str) -> int:
    if isinstance(value, bool):
        raise _wire_error(f"field {field!r} must be an integer", request_id)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        try:
            return int(value, 0)
        except ValueError:
            raise _wire_error(
                f"field {field!r} is not a parseable integer: {value!r}", request_id
            ) from None
    raise _wire_error(
        f"field {field!r} must be an integer or integer string, "
        f"got {type(value).__name__}",
        request_id,
    )


def parse_request_line(line: str) -> ModExpRequest:
    """Parse one JSON request line into a :class:`ModExpRequest`.

    Raises :class:`~repro.errors.WireFormatError` on malformed input;
    when an ``id`` was recoverable it is attached to the exception as
    ``request_id`` so the error response can still correlate.
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise _wire_error(f"invalid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise _wire_error(f"request line must be a JSON object, got {type(obj).__name__}")

    raw_id = obj.get("id", "")
    request_id = str(raw_id) if raw_id is not None else ""

    unknown = set(obj) - {
        "id", "base", "exponent", "modulus", "l", "p", "q", "timeout", "deadline",
        "budget_ms", "priority",
    }
    if unknown:
        raise _wire_error(
            f"unknown request fields: {', '.join(sorted(unknown))}", request_id
        )
    for field in ("base", "exponent", "modulus"):
        if field not in obj:
            raise _wire_error(f"missing required field {field!r}", request_id)

    factors: Optional[Tuple[int, int]] = None
    if ("p" in obj) != ("q" in obj):
        raise _wire_error("factors p and q must be given together", request_id)
    if "p" in obj:
        factors = (
            _to_int(obj["p"], "p", request_id),
            _to_int(obj["q"], "q", request_id),
        )

    def _number(field: str) -> Optional[float]:
        if field not in obj or obj[field] is None:
            return None
        value = obj[field]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise _wire_error(f"field {field!r} must be a number", request_id)
        return float(value)

    priority = obj.get("priority", "batch")
    if not isinstance(priority, str):
        raise _wire_error("field 'priority' must be a string", request_id)
    budget_ms = _number("budget_ms")
    if budget_ms is not None and budget_ms <= 0:
        raise _wire_error("field 'budget_ms' must be > 0", request_id)

    try:
        return ModExpRequest(
            base=_to_int(obj["base"], "base", request_id),
            exponent=_to_int(obj["exponent"], "exponent", request_id),
            modulus=_to_int(obj["modulus"], "modulus", request_id),
            request_id=request_id,
            l=_to_int(obj.get("l", 0), "l", request_id),
            factors=factors,
            timeout=_number("timeout"),
            deadline=_number("deadline"),
            priority=priority,
            budget_s=None if budget_ms is None else budget_ms / 1000.0,
        )
    except ParameterError as exc:
        raise _wire_error(str(exc), request_id) from None


def _wire_int(value: int) -> Union[int, str]:
    return value if abs(value) < _JSON_SAFE_INT else str(value)


def request_to_json(request: ModExpRequest) -> str:
    """Serialize a request back to its wire form (workload generators)."""
    obj: Dict[str, Any] = {
        "base": _wire_int(request.base),
        "exponent": _wire_int(request.exponent),
        "modulus": _wire_int(request.modulus),
    }
    if request.request_id:
        obj["id"] = request.request_id
    if request.l:
        obj["l"] = request.l
    if request.factors is not None:
        obj["p"], obj["q"] = map(_wire_int, request.factors)
    if request.timeout is not None:
        obj["timeout"] = request.timeout
    if request.deadline is not None:
        obj["deadline"] = request.deadline
    if request.priority != "batch":
        obj["priority"] = request.priority
    if request.budget_s is not None:
        obj["budget_ms"] = request.budget_s * 1000.0
    return json.dumps(obj, sort_keys=True)


def result_to_dict(result: ModExpResult) -> Dict[str, Any]:
    obj: Dict[str, Any] = {"id": result.request_id, "ok": result.ok}
    if result.ok:
        assert result.value is not None
        obj["value"] = _wire_int(result.value)
        if result.cycles is not None:
            obj["cycles"] = result.cycles
        if result.wall_us is not None:
            obj["wall_us"] = round(result.wall_us, 1)
    else:
        obj["error"] = result.error
        obj["error_type"] = result.error_type
        if result.bundle_path:
            obj["bundle_path"] = result.bundle_path
    if result.backend:
        obj["backend"] = result.backend
    if result.batch_index is not None:
        obj["batch"] = result.batch_index
    return obj


def result_to_json(result: ModExpResult) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


def read_requests(
    lines: Iterable[str],
) -> Iterator[Tuple[int, Union[ModExpRequest, WireFormatError]]]:
    """Parse a JSON-lines workload, yielding ``(line_number, item)``.

    Blank lines are skipped (they are flush markers, meaningless in a
    file); malformed lines yield the :class:`WireFormatError` instead of
    a request so ``repro batch`` can keep input/output line alignment.
    """
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            yield lineno, parse_request_line(stripped)
        except WireFormatError as exc:
            yield lineno, exc


# ----------------------------------------------------------------------
# Binary batch frames (the sharded data plane)
# ----------------------------------------------------------------------

#: Hard ceiling on one frame's payload.  Generous — a 4096-entry batch of
#: RSA-4096 operands is under 7 MiB — while keeping a corrupt or hostile
#: length prefix from asking the receiver to allocate gigabytes.
MAX_FRAME = 1 << 26  # 64 MiB

BATCH_FRAME = 0x01
RESULT_FRAME = 0x02
NACK_FRAME = 0x03

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")

#: request flags
_HAS_FACTORS = 0x01
_HAS_DEADLINE = 0x02
_INTERACTIVE = 0x04

#: batch flags
_WANT_TELEMETRY = 0x01
_CHEAP_MODE = 0x02


def _seal(buf: bytearray) -> bytes:
    """Append the payload checksum: u32 crc32 over every byte so far."""
    buf += _U32.pack(zlib.crc32(bytes(buf)) & 0xFFFFFFFF)
    return bytes(buf)


def _open(payload: bytes, what: str) -> bytes:
    """Verify and strip a payload's crc32 trailer before parsing."""
    if len(payload) < 5:
        raise WireFormatError(f"{what}: payload too short for a checksum")
    body, (crc,) = payload[:-4], _U32.unpack(payload[-4:])
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise WireFormatError(f"{what}: checksum mismatch (corrupt frame)")
    return body


def _put_bigint(buf: bytearray, value: int, field: str) -> None:
    if value < 0:
        raise WireFormatError(f"field {field!r} must be non-negative, got {value}")
    raw = value.to_bytes((value.bit_length() + 7) // 8, "big")
    buf += _U32.pack(len(raw))
    buf += raw


def _put_str(buf: bytearray, text: str, field: str) -> None:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise WireFormatError(f"field {field!r} exceeds 65535 encoded bytes")
    buf += _U16.pack(len(raw))
    buf += raw


class _Reader:
    """Bounds-checked cursor over one frame payload.

    Every read validates against the payload length first, so a frame
    whose declared structure outruns its bytes fails with a precise
    :class:`WireFormatError` instead of a ``struct.error`` mid-field.
    """

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int, what: str) -> bytes:
        if n > len(self.data) - self.pos:
            raise WireFormatError(
                f"truncated frame: {what} wants {n} bytes, "
                f"{len(self.data) - self.pos} remain"
            )
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def u8(self, what: str) -> int:
        return self.take(1, what)[0]

    def u16(self, what: str) -> int:
        return _U16.unpack(self.take(2, what))[0]

    def u32(self, what: str) -> int:
        return _U32.unpack(self.take(4, what))[0]

    def u64(self, what: str) -> int:
        return _U64.unpack(self.take(8, what))[0]

    def f64(self, what: str) -> float:
        return _F64.unpack(self.take(8, what))[0]

    def bigint(self, what: str) -> int:
        n = self.u32(what + " length")
        if n > MAX_FRAME:
            raise WireFormatError(
                f"{what}: declared integer length {n} exceeds frame bound"
            )
        return int.from_bytes(self.take(n, what), "big")

    def string(self, what: str) -> str:
        n = self.u16(what + " length")
        try:
            return self.take(n, what).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"{what}: invalid UTF-8 ({exc})") from None

    def done(self) -> None:
        if self.pos != len(self.data):
            raise WireFormatError(
                f"frame has {len(self.data) - self.pos} trailing bytes"
            )


def encode_batch_frame(
    batch_id: int,
    requests: Sequence[ModExpRequest],
    *,
    attempt: int = 0,
    want_telemetry: bool = True,
    cheap_mode: bool = False,
) -> bytes:
    """One coalesced batch as a binary frame payload.

    Every request must share one ``(modulus, l)`` — the scheduler's
    coalescing invariant — so the modulus is encoded exactly once.
    ``want_telemetry`` sets batch-flag bit 0: when clear, the worker
    skips metrics capture for the batch (observation hooks on the
    engine hot path are not free) and answers with an empty telemetry
    blob.  ``cheap_mode`` sets bit 1 — the brownout lever: the worker
    executes the batch on its registry's cheapest capable backend
    instead of its primary.  A request's absolute deadline and priority
    class ride per-request flags, so expiry is checkable worker-side.
    """
    if not requests:
        raise WireFormatError("a batch frame needs at least one request")
    modulus, l = requests[0].modulus, requests[0].l
    buf = bytearray([BATCH_FRAME])
    buf += _U64.pack(batch_id)
    buf.append(attempt & 0xFF)
    bflags = _WANT_TELEMETRY if want_telemetry else 0
    if cheap_mode:
        bflags |= _CHEAP_MODE
    buf.append(bflags)
    _put_bigint(buf, modulus, "modulus")
    buf += _U32.pack(l)
    buf += _U16.pack(len(requests))
    for request in requests:
        if request.coalesce_key != (modulus, l):
            raise WireFormatError(
                "batch frame requests must share one (modulus, l); got "
                f"{request.coalesce_key} vs {(modulus, l)}"
            )
        _put_str(buf, request.request_id, "id")
        _put_bigint(buf, request.base, "base")
        _put_bigint(buf, request.exponent, "exponent")
        flags = _HAS_FACTORS if request.factors is not None else 0
        if request.expires_at is not None:
            flags |= _HAS_DEADLINE
        if request.priority == "interactive":
            flags |= _INTERACTIVE
        buf.append(flags)
        if request.factors is not None:
            _put_bigint(buf, request.factors[0], "p")
            _put_bigint(buf, request.factors[1], "q")
        if request.expires_at is not None:
            buf += _F64.pack(request.expires_at)
    return _seal(buf)


def decode_batch_frame(
    payload: bytes,
) -> Tuple[int, int, bool, List[ModExpRequest]]:
    """Parse a batch frame payload.

    Returns ``(batch_id, attempt, want_telemetry, requests)``.  The
    cheap-mode flag is available separately via
    :func:`batch_frame_cheap_mode` so this signature stays stable.
    """
    r = _Reader(_open(payload, "batch frame"))
    kind = r.u8("frame kind")
    if kind != BATCH_FRAME:
        raise WireFormatError(f"expected batch frame (0x01), got 0x{kind:02x}")
    batch_id = r.u64("batch id")
    attempt = r.u8("attempt")
    bflags = r.u8("batch flags")
    if bflags & ~(_WANT_TELEMETRY | _CHEAP_MODE):
        raise WireFormatError(f"unknown batch flags 0x{bflags:02x}")
    want_telemetry = bool(bflags & _WANT_TELEMETRY)
    modulus = r.bigint("modulus")
    l = r.u32("l")
    count = r.u16("request count")
    requests: List[ModExpRequest] = []
    for _ in range(count):
        request_id = r.string("request id")
        base = r.bigint("base")
        exponent = r.bigint("exponent")
        flags = r.u8("request flags")
        if flags & ~(_HAS_FACTORS | _HAS_DEADLINE | _INTERACTIVE):
            raise WireFormatError(f"unknown request flags 0x{flags:02x}")
        factors: Optional[Tuple[int, int]] = None
        if flags & _HAS_FACTORS:
            factors = (r.bigint("p"), r.bigint("q"))
        expires_at: Optional[float] = None
        if flags & _HAS_DEADLINE:
            expires_at = r.f64("expires_at")
        try:
            requests.append(
                ModExpRequest(
                    base=base,
                    exponent=exponent,
                    modulus=modulus,
                    request_id=request_id,
                    l=l,
                    factors=factors,
                    priority="interactive" if flags & _INTERACTIVE else "batch",
                    expires_at=expires_at,
                )
            )
        except ParameterError as exc:
            raise WireFormatError(f"invalid request in batch frame: {exc}") from None
    r.done()
    return batch_id, attempt, want_telemetry, requests


def batch_frame_cheap_mode(payload: bytes) -> bool:
    """Peek the brownout cheap-mode flag of a batch frame payload."""
    if len(payload) < 11 or payload[0] != BATCH_FRAME:
        return False
    return bool(payload[10] & _CHEAP_MODE)


def encode_nack_frame(batch_id: int, message: str) -> bytes:
    """A worker's decode-failure report for one batch frame.

    ``batch_id`` is 0 when even the frame header was unreadable.  The
    parent treats a NACK as shard *degradation*, not death: the pipe's
    message boundaries survive a corrupt payload, so the stream is
    intact and the batch can be requeued without recycling the worker.
    """
    buf = bytearray([NACK_FRAME])
    buf += _U64.pack(batch_id)
    _put_str(buf, message, "nack message")
    return _seal(buf)


def decode_nack_frame(payload: bytes) -> Tuple[int, str]:
    """Parse a NACK frame into ``(batch_id, message)``."""
    r = _Reader(_open(payload, "nack frame"))
    kind = r.u8("frame kind")
    if kind != NACK_FRAME:
        raise WireFormatError(f"expected nack frame (0x03), got 0x{kind:02x}")
    batch_id = r.u64("batch id")
    message = r.string("nack message")
    r.done()
    return batch_id, message


def encode_result_frame(
    batch_id: int,
    results: Sequence[Dict[str, Any]],
    *,
    batch_wall_us: float = 0.0,
    telemetry: Optional[Dict[str, Any]] = None,
) -> bytes:
    """One batch's results (plus the worker's telemetry snapshot).

    Each result dict carries ``id`` and either ``value`` (with optional
    ``cycles`` / ``wall_us``) or ``error_type`` / ``check`` / ``error``.
    """
    buf = bytearray([RESULT_FRAME])
    buf += _U64.pack(batch_id)
    buf += _F64.pack(batch_wall_us)
    buf += _U16.pack(len(results))
    for res in results:
        _put_str(buf, str(res.get("id", "")), "id")
        if "value" in res:
            buf.append(1)
            _put_bigint(buf, res["value"], "value")
            cycles = res.get("cycles")
            if cycles is None:
                buf.append(0)
            else:
                buf.append(1)
                buf += _U64.pack(cycles)
            buf += _F64.pack(float(res.get("wall_us", 0.0)))
        else:
            buf.append(0)
            _put_str(buf, str(res.get("error_type", "RuntimeError")), "error type")
            _put_str(buf, str(res.get("check", "")), "check")
            _put_str(buf, str(res.get("error", "")), "error message")
    blob = b"" if telemetry is None else json.dumps(telemetry).encode("utf-8")
    buf += _U32.pack(len(blob))
    buf += blob
    return _seal(buf)


def decode_result_frame(
    payload: bytes,
) -> Tuple[int, float, List[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """Parse a result frame into ``(batch_id, wall_us, results, telemetry)``."""
    r = _Reader(_open(payload, "result frame"))
    kind = r.u8("frame kind")
    if kind != RESULT_FRAME:
        raise WireFormatError(f"expected result frame (0x02), got 0x{kind:02x}")
    batch_id = r.u64("batch id")
    batch_wall_us = r.f64("batch wall time")
    count = r.u16("result count")
    results: List[Dict[str, Any]] = []
    for _ in range(count):
        res: Dict[str, Any] = {"id": r.string("result id")}
        if r.u8("ok flag"):
            res["value"] = r.bigint("value")
            if r.u8("has-cycles flag"):
                res["cycles"] = r.u64("cycles")
            res["wall_us"] = r.f64("wall time")
        else:
            res["error_type"] = r.string("error type")
            res["check"] = r.string("check")
            res["error"] = r.string("error message")
        results.append(res)
    tlen = r.u32("telemetry length")
    telemetry: Optional[Dict[str, Any]] = None
    if tlen:
        try:
            telemetry = json.loads(r.take(tlen, "telemetry").decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireFormatError(f"corrupt telemetry blob: {exc}") from None
    r.done()
    return batch_id, batch_wall_us, results, telemetry


def write_frame(stream: BinaryIO, payload: bytes) -> None:
    """Write one length-prefixed frame to a byte stream."""
    if len(payload) > MAX_FRAME:
        raise WireFormatError(
            f"frame payload of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    stream.write(_U32.pack(len(payload)) + payload)


def read_frame(stream: BinaryIO) -> Optional[bytes]:
    """Read one length-prefixed frame; ``None`` at a clean end of stream.

    A partial length prefix, a declared length past :data:`MAX_FRAME`,
    or a payload cut short all raise :class:`WireFormatError`.
    """
    prefix = stream.read(4)
    if not prefix:
        return None
    if len(prefix) < 4:
        raise WireFormatError(
            f"truncated length prefix: got {len(prefix)} of 4 bytes"
        )
    (length,) = _U32.unpack(prefix)
    if length > MAX_FRAME:
        raise WireFormatError(
            f"declared frame length {length} exceeds MAX_FRAME ({MAX_FRAME})"
        )
    payload = stream.read(length)
    if len(payload) < length:
        raise WireFormatError(
            f"truncated frame: declared {length} bytes, got {len(payload)}"
        )
    return payload


def iter_frames(stream: BinaryIO) -> Iterator[bytes]:
    """Yield frame payloads until a clean end of stream."""
    while True:
        payload = read_frame(stream)
        if payload is None:
            return
        yield payload
