"""JSON-lines wire format of the modexp service.

One request per line, one result per line, UTF-8, newline-delimited —
the format both ``repro serve`` (streaming over stdin/stdout) and
``repro batch`` (file in, file out) speak.

Request line fields
-------------------
``base``, ``exponent``, ``modulus``
    Required.  Integers, or strings parsed with base auto-detection
    (``"0x..."`` hex works — RSA-sized operands don't fit JSON numbers
    losslessly in every tool chain).
``id``
    Optional correlation id (string or integer; echoed back verbatim).
``l``
    Optional circuit width in bits.
``p``, ``q``
    Optional factors of the modulus for the CRT backend.
``timeout``
    Optional per-request wall-clock limit in seconds.
``deadline``
    Optional urgency key (earliest dispatches first).

Result line fields
------------------
``id``, ``ok`` always; ``value`` (as a string when ≥ 2⁵³, so JavaScript
consumers cannot silently lose precision), ``cycles``, ``wall_us``,
``batch`` and ``backend`` on success; ``error`` / ``error_type`` on
failure.  A rejected request (backpressure) is ``ok: false`` with
``error_type: "QueueFull"``.

A blank input line is a **flush marker**: the serve loop dispatches its
buffered batch immediately instead of waiting for ``max_batch`` lines.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import ParameterError, WireFormatError
from repro.serving.request import ModExpRequest, ModExpResult

__all__ = [
    "parse_request_line",
    "request_to_json",
    "result_to_dict",
    "result_to_json",
    "read_requests",
]

#: Integers at or above 2^53 are emitted as strings on the wire.
_JSON_SAFE_INT = 1 << 53


def _wire_error(message: str, request_id: str = "") -> WireFormatError:
    exc = WireFormatError(message)
    exc.request_id = request_id  # type: ignore[attr-defined]
    return exc


def _to_int(value: Any, field: str, request_id: str) -> int:
    if isinstance(value, bool):
        raise _wire_error(f"field {field!r} must be an integer", request_id)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        try:
            return int(value, 0)
        except ValueError:
            raise _wire_error(
                f"field {field!r} is not a parseable integer: {value!r}", request_id
            ) from None
    raise _wire_error(
        f"field {field!r} must be an integer or integer string, "
        f"got {type(value).__name__}",
        request_id,
    )


def parse_request_line(line: str) -> ModExpRequest:
    """Parse one JSON request line into a :class:`ModExpRequest`.

    Raises :class:`~repro.errors.WireFormatError` on malformed input;
    when an ``id`` was recoverable it is attached to the exception as
    ``request_id`` so the error response can still correlate.
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise _wire_error(f"invalid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise _wire_error(f"request line must be a JSON object, got {type(obj).__name__}")

    raw_id = obj.get("id", "")
    request_id = str(raw_id) if raw_id is not None else ""

    unknown = set(obj) - {
        "id", "base", "exponent", "modulus", "l", "p", "q", "timeout", "deadline",
    }
    if unknown:
        raise _wire_error(
            f"unknown request fields: {', '.join(sorted(unknown))}", request_id
        )
    for field in ("base", "exponent", "modulus"):
        if field not in obj:
            raise _wire_error(f"missing required field {field!r}", request_id)

    factors: Optional[Tuple[int, int]] = None
    if ("p" in obj) != ("q" in obj):
        raise _wire_error("factors p and q must be given together", request_id)
    if "p" in obj:
        factors = (
            _to_int(obj["p"], "p", request_id),
            _to_int(obj["q"], "q", request_id),
        )

    def _number(field: str) -> Optional[float]:
        if field not in obj or obj[field] is None:
            return None
        value = obj[field]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise _wire_error(f"field {field!r} must be a number", request_id)
        return float(value)

    try:
        return ModExpRequest(
            base=_to_int(obj["base"], "base", request_id),
            exponent=_to_int(obj["exponent"], "exponent", request_id),
            modulus=_to_int(obj["modulus"], "modulus", request_id),
            request_id=request_id,
            l=_to_int(obj.get("l", 0), "l", request_id),
            factors=factors,
            timeout=_number("timeout"),
            deadline=_number("deadline"),
        )
    except ParameterError as exc:
        raise _wire_error(str(exc), request_id) from None


def _wire_int(value: int) -> Union[int, str]:
    return value if abs(value) < _JSON_SAFE_INT else str(value)


def request_to_json(request: ModExpRequest) -> str:
    """Serialize a request back to its wire form (workload generators)."""
    obj: Dict[str, Any] = {
        "base": _wire_int(request.base),
        "exponent": _wire_int(request.exponent),
        "modulus": _wire_int(request.modulus),
    }
    if request.request_id:
        obj["id"] = request.request_id
    if request.l:
        obj["l"] = request.l
    if request.factors is not None:
        obj["p"], obj["q"] = map(_wire_int, request.factors)
    if request.timeout is not None:
        obj["timeout"] = request.timeout
    if request.deadline is not None:
        obj["deadline"] = request.deadline
    return json.dumps(obj, sort_keys=True)


def result_to_dict(result: ModExpResult) -> Dict[str, Any]:
    obj: Dict[str, Any] = {"id": result.request_id, "ok": result.ok}
    if result.ok:
        assert result.value is not None
        obj["value"] = _wire_int(result.value)
        if result.cycles is not None:
            obj["cycles"] = result.cycles
        if result.wall_us is not None:
            obj["wall_us"] = round(result.wall_us, 1)
    else:
        obj["error"] = result.error
        obj["error_type"] = result.error_type
        if result.bundle_path:
            obj["bundle_path"] = result.bundle_path
    if result.backend:
        obj["backend"] = result.backend
    if result.batch_index is not None:
        obj["batch"] = result.batch_index
    return obj


def result_to_json(result: ModExpResult) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


def read_requests(
    lines: Iterable[str],
) -> Iterator[Tuple[int, Union[ModExpRequest, WireFormatError]]]:
    """Parse a JSON-lines workload, yielding ``(line_number, item)``.

    Blank lines are skipped (they are flush markers, meaningless in a
    file); malformed lines yield the :class:`WireFormatError` instead of
    a request so ``repro batch`` can keep input/output line alignment.
    """
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            yield lineno, parse_request_line(stripped)
        except WireFormatError as exc:
            yield lineno, exc
