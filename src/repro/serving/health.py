"""Shard health state machine: healthy → degraded → draining → dead.

PR 9's shard plane knew exactly two shard states — alive or
pipe-at-EOF — so every anomaly short of death was invisible, and every
death was a SIGKILL-grade event: pending batches requeued, caches gone.
This module adds the states between, driven by passive probes the pool
already generates:

* a **latency EWMA** per shard, fed from each result frame's batch wall
  time; a sample far above the smoothed mean is a *strike* (the
  quad-core RSA processor keeps cores independently schedulable for the
  same reason — one stalled core must not look like a dead part);
* **corrupt frames** (a result frame the parent cannot decode, or a
  batch frame the worker NACKs) are strikes too — message boundaries
  are preserved by the pipe, so one bad frame does not desync the
  stream and is *not* a death;
* **stuck detection**: a pending batch older than ``stuck_timeout_s``
  with no frame seen since means the worker is alive but wedged.

Strikes promote ``healthy → degraded`` (routing unchanged, recovery
counted); persistent strikes or a stuck worker promote ``degraded →
draining``: the shard stops admitting (its ring ranges rehome to the
next live shard), in-flight work gets ``drain_timeout_s`` to finish,
then the pool recycles the worker gracefully.  Clean batches demote
``degraded → healthy``.  ``dead`` remains what it was — pipe EOF — and
respawn returns the shard to ``healthy``.

State is exported as the ``serving.shard_health{shard=}`` gauge (0–3 in
state order) and every edge counts
``serving.shard_health_transitions{shard=,to=}``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ParameterError
from repro.observability import OBS

__all__ = ["HEALTH_STATES", "HealthConfig", "ShardHealth"]

HEALTH_STATES = ("healthy", "degraded", "draining", "dead")
_STATE_CODE = {name: code for code, name in enumerate(HEALTH_STATES)}


@dataclass(frozen=True)
class HealthConfig:
    """Promotion/demotion thresholds shared by every shard's machine."""

    latency_alpha: float = 0.2       # EWMA smoothing of batch wall time
    degrade_factor: float = 6.0      # sample > factor × EWMA = one strike
    degrade_strikes: int = 2         # strikes to leave healthy
    drain_strikes: int = 4           # strikes (total) to start draining
    recover_batches: int = 3         # clean batches to return healthy
    stuck_timeout_s: float = 5.0     # oldest pending age with no frames
    drain_timeout_s: float = 5.0     # grace for in-flight work while draining

    def __post_init__(self) -> None:
        if not 0.0 < self.latency_alpha <= 1.0:
            raise ParameterError(
                f"latency_alpha must be in (0, 1], got {self.latency_alpha}"
            )
        if self.degrade_factor <= 1.0:
            raise ParameterError(
                f"degrade_factor must be > 1, got {self.degrade_factor}"
            )
        if self.degrade_strikes < 1 or self.drain_strikes < self.degrade_strikes:
            raise ParameterError(
                "need drain_strikes >= degrade_strikes >= 1, got "
                f"{self.drain_strikes}/{self.degrade_strikes}"
            )
        if self.recover_batches < 1:
            raise ParameterError(
                f"recover_batches must be >= 1, got {self.recover_batches}"
            )
        if self.stuck_timeout_s <= 0 or self.drain_timeout_s < 0:
            raise ParameterError(
                "need stuck_timeout_s > 0 and drain_timeout_s >= 0, got "
                f"{self.stuck_timeout_s}/{self.drain_timeout_s}"
            )


class ShardHealth:
    """Thread-safe health machine for one shard.

    Transitions are driven by the pool's reader/monitor threads through
    the ``on_*`` event methods; the pool reacts to the *returned* state
    (e.g. ``on_corrupt_frame() == "draining"`` → stop admitting).
    """

    def __init__(
        self,
        shard: int,
        config: Optional[HealthConfig] = None,
        *,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.shard = shard
        self.config = config or HealthConfig()
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = "healthy"
        self.ewma_us: Optional[float] = None
        self._strikes = 0
        self._clean = 0
        self._export_locked()

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def code(self) -> int:
        return _STATE_CODE[self.state]

    @property
    def strikes(self) -> int:
        with self._lock:
            return self._strikes

    def _export_locked(self) -> None:
        if OBS.enabled:
            OBS.gauge(
                "serving.shard_health",
                _STATE_CODE[self._state],
                shard=str(self.shard),
            )

    def _transition_locked(self, to: str) -> None:
        if to == self._state:
            return
        came_from = self._state
        self._state = to
        if to in ("healthy", "dead"):
            self._strikes = 0
            self._clean = 0
        self._export_locked()
        if OBS.enabled:
            OBS.count(
                "serving.shard_health_transitions", shard=str(self.shard), to=to
            )
        if self._on_transition is not None:
            self._on_transition(came_from, to)

    def _strike_locked(self) -> str:
        self._clean = 0
        self._strikes += 1
        if self._state == "healthy" and self._strikes >= self.config.degrade_strikes:
            self._transition_locked("degraded")
        elif self._state == "degraded" and self._strikes >= self.config.drain_strikes:
            self._transition_locked("draining")
        return self._state

    # ------------------------------------------------------------------
    # Events (return the post-event state)
    # ------------------------------------------------------------------
    def on_batch_done(self, batch_wall_us: float) -> str:
        """One result frame arrived; fold its wall time into the EWMA."""
        cfg = self.config
        with self._lock:
            if self.ewma_us is None:
                self.ewma_us = batch_wall_us
                slow = False
            else:
                slow = batch_wall_us > cfg.degrade_factor * max(self.ewma_us, 1.0)
                self.ewma_us += cfg.latency_alpha * (batch_wall_us - self.ewma_us)
            if slow:
                return self._strike_locked()
            if self._state == "degraded":
                self._clean += 1
                if self._clean >= cfg.recover_batches:
                    self._transition_locked("healthy")
            return self._state

    def on_corrupt_frame(self) -> str:
        """A malformed frame crossed this shard's wire (either direction).

        Corruption weighs a full degrade step at once: unlike a slow
        batch it is never ambiguous.
        """
        with self._lock:
            self._clean = 0
            self._strikes += max(
                self.config.degrade_strikes - (0 if self._state == "healthy" else 1),
                1,
            )
            if self._state == "healthy":
                self._transition_locked("degraded")
            elif (
                self._state == "degraded"
                and self._strikes >= self.config.drain_strikes
            ):
                self._transition_locked("draining")
            return self._state

    def on_stuck(self) -> str:
        """The worker is alive but has not answered within the timeout."""
        with self._lock:
            if self._state in ("healthy", "degraded"):
                self._transition_locked("draining")
            return self._state

    def on_death(self) -> str:
        with self._lock:
            self._transition_locked("dead")
            return self._state

    def on_respawn(self) -> str:
        with self._lock:
            self.ewma_us = None
            self._transition_locked("healthy")
            return self._state
