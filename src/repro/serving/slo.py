"""Latency SLOs in simulated cycles, derived from the paper's formulas.

The natural latency unit of this repository is the *cycle*, not the
wall-clock second: the paper's own performance claims are the per-product
latency ``3l + 4`` (Sect. 4.4) and the exponentiation window of
Eq. (10), ``3l^2 + 10l + 12 <= T <= 6l^2 + 14l + 12``.  An SLO expressed
in cycles is therefore machine-independent and checkable against the
analytic model.

:class:`SLOPolicy` turns one request into its cycle budget:

* the per-multiplication cost is :func:`~repro.systolic.timing.mmm_cycles`
  (``3l+4``) or the corrected-array ``3l+5``, selected by ``mode``;
* a binary exponentiation of exponent ``e`` performs at most
  ``2 * bitlen(e)`` multiplications (square + conditional multiply per
  bit) — Eq. (10)'s upper envelope;
* ``margin`` scales the bound (``1.0`` = the analytic worst case, which
  cycle-accurate backends provably satisfy; modelled backends such as
  the high-radix estimator can legitimately exceed it);
* ``fixed_budget`` short-circuits the formula for absolute budgets.

The service checks every completed request that reports cycles and
counts ``serving.slo_checks`` / ``serving.slo_violations`` per backend
and worker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ParameterError
from repro.serving.request import ModExpRequest
from repro.systolic.timing import mmm_cycles, mmm_cycles_corrected

__all__ = ["SLOPolicy"]

_MODES = ("paper", "corrected")


@dataclass(frozen=True)
class SLOPolicy:
    """Cycle-budget policy: ``margin x 2*bitlen(e) x mmm_cycles(l)``.

    Parameters
    ----------
    margin:
        Multiplier on the analytic bound.  ``1.0`` is the exact Eq. (10)
        upper envelope.
    mode:
        ``"paper"`` uses the paper's ``3l+4`` per multiplication;
        ``"corrected"`` (default) the corrected array's ``3l+5``.
    fixed_budget:
        When set, every request gets this absolute cycle budget and the
        formula is bypassed.
    """

    margin: float = 1.0
    mode: str = "corrected"
    fixed_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ParameterError(f"unknown SLO mode {self.mode!r}; one of {_MODES}")
        if self.margin <= 0:
            raise ParameterError(f"margin must be > 0, got {self.margin}")
        if self.fixed_budget is not None and self.fixed_budget < 1:
            raise ParameterError(
                f"fixed_budget must be >= 1, got {self.fixed_budget}"
            )

    def cycle_budget(self, request: ModExpRequest) -> int:
        """Cycle budget for one request (always ``>= 1``)."""
        if self.fixed_budget is not None:
            return self.fixed_budget
        l = request.width
        per_mult = mmm_cycles(l) if self.mode == "paper" else mmm_cycles_corrected(l)
        mults = 2 * max(request.exponent.bit_length(), 1)
        return max(1, math.ceil(self.margin * mults * per_mult))

    def completion_budget(
        self,
        requests: Sequence[ModExpRequest],
        *,
        tiles: int = 1,
        waves: int = 1,
    ) -> int:
        """Tile-occupancy-aware *group* completion budget in chip cycles.

        Where :meth:`cycle_budget` prices each request at the flat
        ``mults × (3l+4)`` per-op formula, a chip retiring a whole group
        concurrently is bounded by the wave-schedule makespan of the
        pooled multiplications spread over ``tiles × waves`` slots — but
        never beats the longest dependent chain (one exponentiation
        cannot overlap its own squarings).  See
        :func:`repro.chip.schedule.completion_estimate_cycles`; at
        ``tiles=waves=1`` this degenerates to the sum of the per-request
        budgets' multiplication estimate, so the scalar formula is the
        special case.
        """
        if not requests:
            return 0
        if self.fixed_budget is not None:
            return self.fixed_budget
        from repro.chip.schedule import completion_estimate_cycles

        l = max(max(r.width, 2) for r in requests)
        mults = [2 * max(r.exponent.bit_length(), 1) for r in requests]
        estimate = completion_estimate_cycles(
            mults, l, tiles=tiles, waves=waves, mode=self.mode
        )
        return max(1, math.ceil(self.margin * estimate))
