"""The backend registry: every modexp engine behind one protocol.

The repository grew five ways to compute ``base^exponent mod N`` — the
pure-integer Algorithm 2 fast path, CRT-RSA, the cycle-accurate systolic
RTL model, word-based high-radix software, and the Tenca–Koç word-serial
model — plus the gate-level netlist twin.  The serving layer treats them
as interchangeable :class:`ModExpBackend` implementations, each declaring
:class:`BackendCapabilities` (operand-width ceiling, whether its cycle
counts are measured or modelled, whether it is safe to ship to process
workers) and a cost model the batch scheduler orders dispatch by.

All backends receive the batch's pre-computed
:class:`~repro.montgomery.params.MontgomeryContext`, so the Montgomery
constants are derived once per distinct modulus per batch, never per
request (see :mod:`repro.serving.scheduler`).

The :func:`default_registry` registers everything under its canonical
name; worker processes re-resolve backends by name through it, so only
*custom* backends (tests, experiments) are restricted to thread/inline
pools.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import FaultDetected, ParameterError
from repro.montgomery.params import (
    MontgomeryContext,
    precompute_montgomery_constants,
)
from repro.robustness.verify import walter_bound_ok
from repro.serving.request import ModExpRequest

__all__ = [
    "BackendCapabilities",
    "BackendResult",
    "ModExpBackend",
    "BackendRegistry",
    "default_registry",
    "IntegerBackend",
    "CRTBackend",
    "RTLBackend",
    "GateLevelBackend",
    "HighRadixBackend",
    "ScalableBackend",
]


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can serve and how its costs should be read.

    Attributes
    ----------
    description:
        One-line summary for ``repro backends`` and the docs matrix.
    max_bits:
        Operand-width ceiling (``None`` = unbounded).  The simulators are
        capped where a single exponentiation stays interactive.
    cycle_accurate:
        True when reported cycles are measured (RTL/gate) or proven equal
        to measured (the golden accounting); False when modelled.
    simulator:
        True for backends that step a hardware model cycle by cycle.
    process_safe:
        True when the backend may run on process workers (resolvable by
        name in a fresh interpreter, CPU-bound big-int work).  Simulators
        stay on thread workers so their observability hooks keep feeding
        the parent's metrics registry.
    requires_factors:
        True when requests must carry ``factors=(p, q)``.
    lanes:
        Bit-sliced lane width (``1`` = scalar only).  When greater than 1
        the service hands :meth:`ModExpBackend.execute_many` whole groups
        of same-modulus, same-exponent requests, which the backend packs
        as bit-slices of one netlist sweep (see
        :meth:`~repro.systolic.mmmc_netlist.GateLevelMMMC.multiply_lanes`).
    mixed_exponent_lanes:
        True when ``execute_many`` groups need *not* share an exponent.
        Bit-sliced sweeps advance every lane in lock-step, so they demand
        a common square-and-multiply schedule; the chip backend instead
        interleaves independent multiplication chains, so the service may
        pack any same-modulus requests of one batch into a group.
    """

    description: str
    max_bits: Optional[int] = None
    cycle_accurate: bool = True
    simulator: bool = False
    process_safe: bool = True
    requires_factors: bool = False
    lanes: int = 1
    mixed_exponent_lanes: bool = False


@dataclass(frozen=True)
class BackendResult:
    """Value plus the backend's cycle accounting for one request."""

    value: int
    cycles: Optional[int] = None


class ModExpBackend(ABC):
    """One modular-exponentiation engine behind the serving layer.

    Subclasses set ``name`` and ``capabilities`` and implement
    :meth:`estimate_cost` / :meth:`execute`.  ``execute`` may assume the
    request passed :meth:`reject_reason` (the service checks before
    dispatch).
    """

    name: str = ""
    capabilities: BackendCapabilities

    #: Rough wall-time per modelled cycle *relative to the integer
    #: backend* — simulators pay orders of magnitude more per cycle, and
    #: the scheduler's cost ordering should reflect wall time, not only
    #: the hardware cycle count.
    wall_weight: float = 1.0

    def reject_reason(self, request: ModExpRequest) -> Optional[str]:
        """Why this backend cannot serve ``request`` (``None`` = it can)."""
        caps = self.capabilities
        if caps.max_bits is not None and request.width > caps.max_bits:
            return (
                f"operand width {request.width} exceeds backend "
                f"{self.name!r} limit of {caps.max_bits} bits"
            )
        if caps.requires_factors and request.factors is None:
            return f"backend {self.name!r} needs factors=(p, q) on the request"
        return None

    def estimate_cost(self, request: ModExpRequest) -> float:
        """Scheduler cost: modelled cycles weighted by wall-time factor."""
        return self.model_cycles(request) * self.wall_weight

    def model_cycles(self, request: ModExpRequest) -> float:
        """Expected hardware cycles for one exponentiation.

        Default model: square-and-multiply issues ``~1.5·t + 1``
        multiplications for a ``t``-bit exponent (pre/post included), each
        costing the corrected array latency.
        """
        from repro.systolic.timing import mmm_cycles_corrected

        mults = 1.5 * request.exponent.bit_length() + 1
        return mmm_cycles_corrected(request.width) * mults

    @abstractmethod
    def execute(
        self, ctx: MontgomeryContext, request: ModExpRequest
    ) -> BackendResult:
        """Run the exponentiation with the batch's shared constants."""

    def execute_many(
        self, ctx: MontgomeryContext, requests: List[ModExpRequest]
    ) -> List[BackendResult]:
        """Run several requests sharing ``ctx``; results in input order.

        The service calls this (instead of per-request :meth:`execute`
        tasks) for backends declaring ``capabilities.lanes > 1``, passing
        same-modulus groups from one coalesced batch.  The default runs
        them sequentially; lane-capable backends override it to pack
        same-exponent requests into one bit-sliced sweep.
        """
        return [self.execute(ctx, request) for request in requests]


def _square_multiply(
    mont, ctx_r2: int, base: int, exponent: int, n: Optional[int] = None
) -> int:
    """Algorithm 3 over an arbitrary Montgomery-multiply callable.

    ``mont(x, y)`` must compute ``x·y·R⁻¹ mod N`` for whatever ``R`` the
    backend uses; ``ctx_r2`` is ``R² mod N`` in the same convention.
    When ``n`` is given, every intermediate product is checked against
    Walter's ``T < 2N`` bound — the invariant the paper's ``R > 4N``
    choice guarantees — so a register upset that pushes a product out of
    range fails loudly (:class:`~repro.errors.FaultDetected`) in the
    worker instead of propagating into a silently wrong result.
    """

    def step(x: int, y: int) -> int:
        t = mont(x, y)
        if n is not None and not walter_bound_ok(t, n):
            raise FaultDetected(
                f"Montgomery product {t} outside [0, {2 * n}) — Walter "
                "T < 2N invariant violated mid-exponentiation",
                check="walter-bound",
            )
        return t

    m_bar = step(base, ctx_r2)
    a = m_bar
    for i in reversed(range(exponent.bit_length() - 1)):
        a = step(a, a)
        if (exponent >> i) & 1:
            a = step(a, m_bar)
    return step(a, 1)


# ----------------------------------------------------------------------
# Concrete backends
# ----------------------------------------------------------------------
class IntegerBackend(ModExpBackend):
    """Pure-integer Algorithm 2 with the proven RTL cycle accounting.

    The production fast path: big-int multiplications at any width, with
    cycle counts the test suite proves identical to the measured RTL
    model.  Process-safe and the default backend of ``repro serve``.
    """

    name = "integer"
    capabilities = BackendCapabilities(
        description="big-integer Algorithm 2, exact 3l+5 cycle accounting",
        max_bits=None,
        cycle_accurate=True,
        simulator=False,
        process_safe=True,
    )

    def execute(self, ctx, request):
        from repro.systolic.exponentiator import ModularExponentiator

        run = ModularExponentiator(ctx, engine="golden").exponentiate(
            request.base, request.exponent
        )
        return BackendResult(run.result, run.cycles)


class CRTBackend(ModExpBackend):
    """CRT-RSA: two half-width exponentiations plus Garner recombination.

    Requires ``factors=(p, q)`` with p, q prime (the standard RSA private
    operation).  Roughly 4× cheaper in cycle-weighted work because the
    half-width multiplier runs ``3(l/2)+5``-cycle multiplications over
    half-length exponents.
    """

    name = "crt-rsa"
    capabilities = BackendCapabilities(
        description="two half-width golden exponentiations + Garner",
        max_bits=None,
        cycle_accurate=True,
        simulator=False,
        process_safe=True,
        requires_factors=True,
    )

    def model_cycles(self, request):
        from repro.systolic.timing import mmm_cycles_corrected

        half = max(request.width // 2, 2)
        mults = 1.5 * half + 1  # exponent reduced mod (p-1): ~half-length
        return 2 * mmm_cycles_corrected(half) * mults

    def execute(self, ctx, request):
        from repro.systolic.exponentiator import ModularExponentiator

        p, q = request.factors
        c, d = request.base, request.exponent
        cycles = 0

        def half(prime: int) -> int:
            nonlocal cycles
            d_half = d % (prime - 1)
            residue = c % prime
            if d_half == 0:
                # x^0 = 1 for invertible x, 0 for x = 0 — no cycles spent.
                return 1 % prime if residue else 0
            exp = ModularExponentiator(
                precompute_montgomery_constants(prime), engine="golden"
            )
            run = exp.exponentiate(residue, d_half)
            cycles += run.cycles
            return run.result

        m_p, m_q = half(p), half(q)
        q_inv = pow(q, -1, p)
        h = (q_inv * (m_p - m_q)) % p
        return BackendResult(m_q + h * q, cycles)


class _NetlistBackend(ModExpBackend):
    """Shared machinery of the two netlist-simulation backends.

    Each operand width gets one elaborated :class:`GateLevelMMMC`, reused
    across requests — a scalar instance for :meth:`execute` and a K-lane
    instance for the bit-sliced :meth:`execute_many` path.  Both run the
    compiled kernel engine and share one codegen'd kernel through the
    structural-key cache (lane count is bound per simulator, not per
    kernel).  The simulators are stateful, so a lock keeps thread workers
    from interleaving multiplications on one instance.
    """

    #: netlist simulator engine for the cached instances
    simulator = "compiled"

    def __init__(self) -> None:
        import threading

        self._scalar: Dict[int, object] = {}
        self._vector: Dict[int, object] = {}
        self._lock = threading.Lock()

    def _mmmc(self, l: int, lanes: int = 1):
        cache = self._scalar if lanes <= 1 else self._vector
        inst = cache.get(l)
        if inst is None:
            from repro.systolic.mmmc_netlist import GateLevelMMMC

            inst = cache[l] = GateLevelMMMC(
                l, simulator=self.simulator, lanes=max(lanes, 1)
            )
        return inst

    def _execute_lanes(
        self, ctx: MontgomeryContext, requests: List[ModExpRequest]
    ) -> List[BackendResult]:
        """One square-and-multiply schedule, K bases as bit-sliced lanes.

        Caller holds ``self._lock`` and guarantees every request shares
        ``ctx`` and the exponent (the lanes advance in lock-step, so the
        multiplication schedule must be common).
        """
        n = ctx.modulus
        exponent = requests[0].exponent
        gate = self._mmmc(ctx.l, self.capabilities.lanes)
        k = len(requests)
        ns = [n] * k
        cycles = 0

        def mont(xs: List[int], ys: List[int]) -> List[int]:
            nonlocal cycles
            runs = gate.multiply_lanes(xs, ys, ns)
            cycles += runs[0].cycles  # lock-step: every lane pays the same
            for k, r in enumerate(runs):
                if not walter_bound_ok(r.result, n):
                    raise FaultDetected(
                        f"lane {k}: Montgomery product {r.result} outside "
                        f"[0, {2 * n}) — Walter T < 2N invariant violated",
                        check="walter-bound",
                    )
            return [r.result for r in runs]

        m_bar = mont([r.base for r in requests], [ctx.r2_mod_n] * k)
        a = m_bar
        for i in reversed(range(exponent.bit_length() - 1)):
            a = mont(a, a)
            if (exponent >> i) & 1:
                a = mont(a, m_bar)
        a = mont(a, [1] * k)
        return [BackendResult(v % n, cycles) for v in a]

    def execute_with_register_fault(self, ctx, request, rng):
        """Chaos hook: one seeded register bit flip mid-exponentiation.

        Runs the request on the width's scalar netlist instance with a
        single-event upset scheduled into one randomly chosen
        multiplication (register class, bit and cycle drawn from
        ``rng``).  The flip may be masked (shadow-phase state), detected
        in-worker by the Walter-bound check, or surface as a silently
        wrong value for the service verifier to catch — the same three
        outcomes a real SEU has.
        """
        from repro.analysis.fault import REGISTER_CLASSES, FaultSite

        n = ctx.modulus
        l = ctx.l
        reg_class = rng.choice(REGISTER_CLASSES)
        cycles = 0
        mults = 0
        with self._lock:
            gate = self._mmmc(l)
            widths = {r: len(ws) for r, ws in gate.fault_sites().items()}
            site = FaultSite(
                cycle=rng.randrange(3 * l + 4),
                register=reg_class,
                index=rng.randrange(widths[reg_class]),
            )
            # Total mont calls of the square-and-multiply schedule below:
            # conversion + squarings + multiplies + de-conversion.
            e = request.exponent
            total = 1 + (e.bit_length() - 1) + (bin(e).count("1") - 1) + 1
            target = rng.randrange(total)

            def mont(x: int, y: int) -> int:
                nonlocal cycles, mults
                if mults == target:
                    gate.schedule_fault(site)
                mults += 1
                rec = gate.multiply(x, y, n)
                cycles += rec.cycles
                return rec.result

            value = _square_multiply(
                mont, ctx.r2_mod_n, request.base, request.exponent, n=n
            )
        return BackendResult(value % n, cycles)

    def execute_many(self, ctx, requests):
        lanes = max(self.capabilities.lanes, 1)
        results: List[Optional[BackendResult]] = [None] * len(requests)
        groups: Dict[int, List[int]] = {}
        for i, request in enumerate(requests):
            groups.setdefault(request.exponent, []).append(i)
        for members in groups.values():
            for lo in range(0, len(members), lanes):
                chunk = members[lo : lo + lanes]
                if len(chunk) == 1:
                    results[chunk[0]] = self.execute(ctx, requests[chunk[0]])
                else:
                    with self._lock:
                        outs = self._execute_lanes(
                            ctx, [requests[i] for i in chunk]
                        )
                    for i, out in zip(chunk, outs):
                        results[i] = out
        return results


class RTLBackend(_NetlistBackend):
    """Cycle-accurate systolic MMMC model (the paper's datapath).

    Runs the full exponentiator protocol — pre/scan/post with the
    measured-vs-model cycle cross-check — over the gate-level netlist
    twin on compiled kernels by default (``engine="gate"``), which the
    equivalence suite proves cycle- and bit-identical to the behavioral
    model.  ``engine="rtl"`` falls back to the behavioral
    :class:`~repro.systolic.mmmc.MMMC` (needed e.g. for controller state
    traces, which the netlist twin does not log).
    """

    name = "rtl"
    capabilities = BackendCapabilities(
        description="cycle-accurate MMMC on compiled gate-level kernels",
        max_bits=64,
        cycle_accurate=True,
        simulator=True,
        process_safe=False,
        lanes=64,
    )
    wall_weight = 200.0

    def __init__(self, engine: str = "gate") -> None:
        from dataclasses import replace

        super().__init__()
        if engine not in ("gate", "rtl"):
            raise ParameterError(f"unknown rtl-backend engine {engine!r}")
        self.engine = engine
        if engine == "rtl":
            # Behavioral fallback: no netlist, no lane packing.
            self.capabilities = replace(
                self.capabilities,
                description="cycle-accurate behavioral MMMC + controller",
                lanes=1,
            )

    def _multiplier(self, l: int):
        if self.engine == "gate":
            return self._mmmc(l)
        inst = self._scalar.get(l)
        if inst is None:
            from repro.systolic.mmmc import MMMC

            inst = self._scalar[l] = MMMC(l)
        return inst

    def execute(self, ctx, request):
        from repro.systolic.exponentiator import ModularExponentiator

        with self._lock:
            run = ModularExponentiator(
                ctx, engine=self.engine, multiplier=self._multiplier(ctx.l)
            ).exponentiate(request.base, request.exponent)
        return BackendResult(run.result, run.cycles)


class GateLevelBackend(_NetlistBackend):
    """Gate-level netlist simulation of the MMMC, every gate evaluated.

    The most faithful tier — every AND gate of every cell is evaluated —
    so the width ceiling stays tiny even though the compiled kernel
    engine (the default) recovers most of the interpreter overhead.
    ``simulator="interpreted"`` is the pre-codegen path, kept for
    differential debugging.
    """

    name = "gate"
    capabilities = BackendCapabilities(
        description="gate-level MMMC netlist co-simulation, compiled kernels",
        max_bits=10,
        cycle_accurate=True,
        simulator=True,
        process_safe=False,
        lanes=64,
    )
    # Compiled kernels brought the per-cycle wall cost down ~7x from the
    # interpreted simulator's 20000x; still far above the big-int paths.
    wall_weight = 3000.0

    def __init__(self, simulator: str = "compiled") -> None:
        from dataclasses import replace

        super().__init__()
        self.simulator = simulator
        if simulator != "compiled":
            # Lane packing is a compiled-kernel feature.
            self.capabilities = replace(
                self.capabilities,
                description="gate-level MMMC netlist co-simulation, interpreted",
                lanes=1,
            )
            self.wall_weight = 20000.0

    def execute(self, ctx, request):
        n = ctx.modulus
        cycles = 0
        with self._lock:
            gate = self._mmmc(ctx.l)

            def mont(x: int, y: int) -> int:
                nonlocal cycles
                rec = gate.multiply(x, y, n)
                cycles += rec.cycles
                return rec.result

            value = _square_multiply(
                mont, ctx.r2_mod_n, request.base, request.exponent, n=n
            )
        return BackendResult(value % n, cycles)


class HighRadixBackend(ModExpBackend):
    """Word-based (radix-2^α) CIOS software baseline.

    Functional arithmetic from :mod:`repro.montgomery.radix`; cycles come
    from the :class:`~repro.baselines.highradix.HighRadixModel` latency
    model (modelled, not measured — ``cycle_accurate=False``).
    """

    name = "highradix"
    capabilities = BackendCapabilities(
        description="word-based CIOS Montgomery, modelled cycles",
        max_bits=None,
        cycle_accurate=False,
        simulator=False,
        process_safe=True,
    )

    def __init__(self, word_bits: int = 16) -> None:
        if word_bits < 1:
            raise ParameterError(f"word_bits must be >= 1, got {word_bits}")
        self.word_bits = word_bits

    def model_cycles(self, request):
        from repro.baselines.highradix import HighRadixModel

        model = HighRadixModel(max(request.width, 2), self.word_bits)
        mults = 1.5 * request.exponent.bit_length() + 1
        return model.mmm_cycles * mults

    def execute(self, ctx, request):
        from repro.baselines.highradix import HighRadixModel
        from repro.montgomery.radix import WordMontgomeryParams, mont_mul_cios

        n = ctx.modulus
        params = WordMontgomeryParams(n, self.word_bits)
        r2 = (params.R * params.R) % n
        mults = 0

        def mont(x: int, y: int) -> int:
            nonlocal mults
            mults += 1
            return mont_mul_cios(params, x, y)

        value = _square_multiply(mont, r2, request.base, request.exponent, n=n)
        cycles = HighRadixModel(ctx.l, self.word_bits).mmm_cycles * mults
        return BackendResult(value % n, cycles)


class ScalableBackend(ModExpBackend):
    """Tenca–Koç word-serial scalable unit (paper ref [26]).

    Functional word-serial kernel with the published first-order latency
    model for a ``stages``-PE pipeline.
    """

    name = "scalable"
    capabilities = BackendCapabilities(
        description="word-serial Tenca–Koç kernel, modelled pipeline cycles",
        max_bits=None,
        cycle_accurate=False,
        simulator=False,
        process_safe=True,
    )

    def __init__(self, word: int = 8, stages: int = 4) -> None:
        if word < 1 or stages < 1:
            raise ParameterError("word and stages must be >= 1")
        self.word = word
        self.stages = stages

    def model_cycles(self, request):
        from repro.baselines.scalable import scalable_mmm_cycles

        mults = 1.5 * request.exponent.bit_length() + 1
        return scalable_mmm_cycles(request.width, self.word, self.stages) * mults

    def execute(self, ctx, request):
        from repro.baselines.scalable import scalable_mmm_cycles, scalable_montgomery

        n = ctx.modulus
        # The scalable kernel uses the classical R₁ = 2^l convention with
        # operands in [0, N), unlike the array's R = 2^(l+2) / [0, 2N).
        r1 = (1 << ctx.l) % n
        r2 = (r1 * r1) % n
        mults = 0

        def mont(x: int, y: int) -> int:
            nonlocal mults
            mults += 1
            return scalable_montgomery(ctx, x, y, self.word)

        value = _square_multiply(mont, r2, request.base, request.exponent, n=n)
        cycles = scalable_mmm_cycles(ctx.l, self.word, self.stages) * mults
        return BackendResult(value % n, cycles)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class BackendRegistry:
    """Name → backend mapping with a capability matrix for docs/CLI."""

    def __init__(self) -> None:
        self._backends: Dict[str, ModExpBackend] = {}

    def register(self, backend: ModExpBackend, *, replace: bool = False) -> None:
        if not backend.name:
            raise ParameterError("backend must declare a non-empty name")
        if backend.name in self._backends and not replace:
            raise ParameterError(f"backend {backend.name!r} already registered")
        self._backends[backend.name] = backend

    def get(self, name: str) -> ModExpBackend:
        try:
            return self._backends[name]
        except KeyError:
            raise ParameterError(
                f"unknown backend {name!r}; registered: {', '.join(self.names())}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._backends)

    def __contains__(self, name: str) -> bool:
        return name in self._backends

    def __len__(self) -> int:
        return len(self._backends)

    def __iter__(self) -> Iterator[ModExpBackend]:
        return iter(self._backends[n] for n in self.names())

    def capability_rows(self) -> List[List[object]]:
        """Rows for ``repro backends`` / the docs capability matrix."""
        rows = []
        for b in self:
            caps = b.capabilities
            rows.append(
                [
                    b.name,
                    "∞" if caps.max_bits is None else caps.max_bits,
                    "measured" if caps.cycle_accurate else "modelled",
                    "yes" if caps.simulator else "no",
                    "process" if caps.process_safe else "thread",
                    "yes" if caps.requires_factors else "no",
                    caps.description,
                ]
            )
        return rows


def default_registry() -> BackendRegistry:
    """A fresh registry holding every built-in backend."""
    # Imported here, not at module top: repro.chip.backend subclasses
    # ModExpBackend from this module, so a top-level import would cycle.
    from repro.chip.backend import ChipBackend

    reg = BackendRegistry()
    for backend in (
        IntegerBackend(),
        CRTBackend(),
        RTLBackend(),
        GateLevelBackend(),
        HighRadixBackend(),
        ScalableBackend(),
        ChipBackend(),
    ):
        reg.register(backend)
    return reg
