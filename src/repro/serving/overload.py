"""Graceful degradation under overload: admit, shed, hedge, brown out.

The shard plane (PR 9) gave the service throughput; this module defends
it when offered load exceeds capacity or a shard turns slow-but-alive.
The ladder, cheapest lever first:

1. **Admission control** — a :class:`TokenBucket` in front of the
   scheduler.  Tokens refill at the configured sustainable rate; a
   reserve fraction is only spendable by interactive traffic, so a batch
   burst can never starve the urgent class.  Refused requests fail fast
   with :class:`~repro.errors.RequestShed` (a ``QueueFull`` subclass —
   clients already know how to back off from those).
2. **Adaptive shedding** — a :class:`CoDelShedder` watching queue
   *sojourn* (admission → dispatch delay), the CoDel law: once delay
   stays over ``target_s`` for a full ``interval_s``, start dropping
   batch-class requests, next drop at ``interval / sqrt(drop_count)``
   so the drop rate tracks how persistently the queue is standing.
3. **Brownout** — a :class:`BrownoutController` integrating queue
   pressure into discrete levels 0–3: step down verify sampling, reroute
   lane groups to cheaper capable backends, and finally suspend batch
   admission entirely — all before a single interactive request is
   refused.
4. **Hedging** — a :class:`HedgePolicy` over a bounded latency
   reservoir: when a dispatched request is still unresolved after the
   observed p99, re-dispatch it to the next live shard on the ring and
   take whichever answer lands first (exactly-once: the loser is
   abandoned and its late result dropped).

Everything here is policy — pure, clock-injectable, independently
testable.  :class:`~repro.serving.service.ModExpService` wires the
mechanisms through its dispatch/collect path when given an
:class:`OverloadConfig`.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import ParameterError
from repro.observability import OBS
from repro.serving.request import PRIORITIES

__all__ = [
    "OverloadConfig",
    "TokenBucket",
    "CoDelShedder",
    "LatencyReservoir",
    "HedgePolicy",
    "BrownoutController",
]


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs of the graceful-degradation ladder (all levers optional).

    ``admit_rate`` (requests/second) turns on the token bucket;
    ``shed_target_s`` / ``shed_interval_s`` tune the CoDel shedder
    (always on once an ``OverloadConfig`` is given — shedding only ever
    drops batch-class traffic); ``hedge=True`` arms hedged re-dispatch
    on shard pools; ``brownout=True`` arms the pressure controller.
    ``default_budget_s`` stamps a deadline on requests that arrive
    without one (per priority class via ``interactive_budget_s``).
    """

    admit_rate: Optional[float] = None
    admit_burst: Optional[float] = None  # default: 2 × admit_rate
    interactive_reserve: float = 0.25
    shed_target_s: float = 0.05
    shed_interval_s: float = 0.5
    hedge: bool = False
    hedge_quantile: float = 99.0
    hedge_min_samples: int = 16
    hedge_min_delay_s: float = 0.005
    brownout: bool = False
    brownout_high: float = 0.75
    brownout_low: float = 0.25
    brownout_dwell_s: float = 0.25
    default_budget_s: Optional[float] = None
    interactive_budget_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.admit_rate is not None and self.admit_rate <= 0:
            raise ParameterError(f"admit_rate must be > 0, got {self.admit_rate}")
        if self.admit_burst is not None and self.admit_burst <= 0:
            raise ParameterError(f"admit_burst must be > 0, got {self.admit_burst}")
        if not 0.0 <= self.interactive_reserve < 1.0:
            raise ParameterError(
                f"interactive_reserve must be in [0, 1), got {self.interactive_reserve}"
            )
        if self.shed_target_s <= 0 or self.shed_interval_s <= 0:
            raise ParameterError(
                "shed_target_s and shed_interval_s must be > 0, got "
                f"{self.shed_target_s}/{self.shed_interval_s}"
            )
        if not 0.0 < self.hedge_quantile <= 100.0:
            raise ParameterError(
                f"hedge_quantile must be in (0, 100], got {self.hedge_quantile}"
            )
        if self.hedge_min_samples < 2:
            raise ParameterError(
                f"hedge_min_samples must be >= 2, got {self.hedge_min_samples}"
            )
        if self.hedge_min_delay_s < 0:
            raise ParameterError(
                f"hedge_min_delay_s must be >= 0, got {self.hedge_min_delay_s}"
            )
        if not 0.0 <= self.brownout_low < self.brownout_high <= 1.0:
            raise ParameterError(
                "need 0 <= brownout_low < brownout_high <= 1, got "
                f"{self.brownout_low}/{self.brownout_high}"
            )
        for name in ("default_budget_s", "interactive_budget_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ParameterError(f"{name} must be > 0, got {value}")

    def budget_for(self, priority: str) -> Optional[float]:
        """Default completion budget for one priority class."""
        if priority == "interactive" and self.interactive_budget_s is not None:
            return self.interactive_budget_s
        return self.default_budget_s


class TokenBucket:
    """Priority-aware admission gate: refill at ``rate``, cap at ``burst``.

    The bottom ``reserve`` fraction of the bucket is spendable only by
    interactive traffic — batch requests are refused once the level
    drops to the reserve line, so a batch flood leaves the urgent class
    a protected slice of the sustainable rate.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        *,
        reserve: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ParameterError(f"rate must be > 0, got {rate}")
        self.rate = rate
        self.burst = burst if burst is not None else 2.0 * rate
        if self.burst <= 0:
            raise ParameterError(f"burst must be > 0, got {self.burst}")
        if not 0.0 <= reserve < 1.0:
            raise ParameterError(f"reserve must be in [0, 1), got {reserve}")
        self.reserve = reserve
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._refilled_at = clock()

    def _refill_locked(self, now: float) -> None:
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._refilled_at = now

    @property
    def level(self) -> float:
        """Current fill fraction in ``[0, 1]`` (a dashboard gauge)."""
        with self._lock:
            self._refill_locked(self._clock())
            return self._tokens / self.burst

    def try_admit(self, priority: str = "batch", tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if the class's floor allows it."""
        if priority not in PRIORITIES:
            raise ParameterError(f"unknown priority {priority!r}")
        floor = 0.0 if priority == "interactive" else self.reserve * self.burst
        with self._lock:
            self._refill_locked(self._clock())
            if self._tokens - tokens < floor - 1e-12:
                return False
            self._tokens -= tokens
            return True


class CoDelShedder:
    """CoDel-style shedding on queue sojourn time.

    Classic controlled-delay law adapted from packet queues to request
    admission: sojourn under ``target_s`` is healthy no matter how deep
    the queue is; sojourn continuously *over* target for ``interval_s``
    means the queue is standing, and we start shedding — the next shed
    arriving at ``interval / sqrt(count)`` so persistent overload sheds
    at an accelerating rate and transient bursts shed barely at all.
    Only batch-class requests are ever offered to :meth:`offer`.
    """

    def __init__(
        self,
        target_s: float = 0.05,
        interval_s: float = 0.5,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if target_s <= 0 or interval_s <= 0:
            raise ParameterError(
                f"target_s and interval_s must be > 0, got {target_s}/{interval_s}"
            )
        self.target_s = target_s
        self.interval_s = interval_s
        self._clock = clock
        self._lock = threading.Lock()
        self._first_above: Optional[float] = None  # when sojourn first crossed
        self._dropping = False
        self._drop_next = 0.0
        self._count = 0  # drops this dropping episode

    @property
    def dropping(self) -> bool:
        with self._lock:
            return self._dropping

    def offer(self, sojourn_s: float) -> bool:
        """Report one request's queue delay; True = shed this request."""
        now = self._clock()
        with self._lock:
            if sojourn_s < self.target_s:
                # Queue drained below target: leave dropping state.
                self._first_above = None
                self._dropping = False
                return False
            if self._first_above is None:
                self._first_above = now + self.interval_s
                return False
            if not self._dropping:
                if now < self._first_above:
                    return False  # above target, but not yet for a full interval
                self._dropping = True
                # Resume near the previous episode's rate when the queue
                # re-stands quickly, per the CoDel recommendation.
                self._count = max(self._count - 2, 1)
                self._drop_next = now + self.interval_s / math.sqrt(self._count)
                return True
            if now >= self._drop_next:
                self._count += 1
                self._drop_next = now + self.interval_s / math.sqrt(self._count)
                return True
            return False


class LatencyReservoir:
    """Bounded ring of recent latency samples with percentile readout."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 2:
            raise ParameterError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._samples: List[float] = []
        self._pos = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def record(self, latency_s: float) -> None:
        with self._lock:
            if len(self._samples) < self.capacity:
                self._samples.append(latency_s)
            else:
                self._samples[self._pos] = latency_s
                self._pos = (self._pos + 1) % self.capacity

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile (nearest-rank), ``None`` when empty."""
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(q / 100.0 * len(ordered)) - 1))
        return ordered[rank]


class HedgePolicy:
    """When to re-dispatch a straggler: after the observed tail latency.

    The delay is the reservoir's ``quantile`` (p99 by default) — by
    construction only ~1% of requests ever hedge, so the added load is
    marginal while the straggler tail collapses to roughly the p99 of
    two independent draws.  Until ``min_samples`` completions have been
    observed the policy abstains (``delay() is None``): hedging on a
    cold estimate would fire on everything.
    """

    def __init__(
        self,
        *,
        quantile: float = 99.0,
        min_samples: int = 16,
        min_delay_s: float = 0.005,
        capacity: int = 512,
    ) -> None:
        if min_samples < 2:
            raise ParameterError(f"min_samples must be >= 2, got {min_samples}")
        if min_delay_s < 0:
            raise ParameterError(f"min_delay_s must be >= 0, got {min_delay_s}")
        self.quantile = quantile
        self.min_samples = min_samples
        self.min_delay_s = min_delay_s
        self.reservoir = LatencyReservoir(capacity)

    def observe(self, latency_s: float) -> None:
        self.reservoir.record(latency_s)

    def delay(self) -> Optional[float]:
        """Seconds to wait before hedging, or ``None`` (not yet armed)."""
        if len(self.reservoir) < self.min_samples:
            return None
        tail = self.reservoir.percentile(self.quantile)
        if tail is None:
            return None
        return max(tail, self.min_delay_s)


#: Brownout levels, mildest first.  Each level keeps every lever of the
#: previous ones engaged.
BROWNOUT_LEVELS = (
    "normal",          # 0 — full service
    "verify-sampled",  # 1 — verify sampling stepped down to 1/4
    "cheap-backends",  # 2 — + lane groups rerouted to cheaper backends
    "batch-suspended", # 3 — + batch-class admission suspended
)

#: Verify-sampling multiplier per brownout level (level 3 keeps a
#: trickle so ``silent_corruptions == 0`` stays a checkable claim).
_VERIFY_SCALE = (1.0, 0.25, 0.1, 0.05)


class BrownoutController:
    """Integrate queue pressure into discrete degradation levels.

    ``update(pressure)`` feeds an EWMA of instantaneous pressure (0 =
    idle, 1 = the in-flight window is full); crossing ``high`` steps one
    level up, falling under ``low`` steps one level down, and ``dwell_s``
    of hysteresis keeps the controller from flapping on every burst.
    Transitions are counted (``serving.brownout_transitions{to=}``) and
    the level is exported as the ``serving.brownout_level`` gauge.
    """

    def __init__(
        self,
        *,
        high: float = 0.75,
        low: float = 0.25,
        dwell_s: float = 0.25,
        alpha: float = 0.3,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 <= low < high <= 1.0:
            raise ParameterError(f"need 0 <= low < high <= 1, got {low}/{high}")
        if not 0.0 < alpha <= 1.0:
            raise ParameterError(f"alpha must be in (0, 1], got {alpha}")
        if dwell_s < 0:
            raise ParameterError(f"dwell_s must be >= 0, got {dwell_s}")
        self.high = high
        self.low = low
        self.dwell_s = dwell_s
        self.alpha = alpha
        self._clock = clock
        self._lock = threading.Lock()
        self._level = 0
        self._pressure = 0.0
        self._moved_at = -math.inf

    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    @property
    def level_name(self) -> str:
        return BROWNOUT_LEVELS[self.level]

    @property
    def pressure(self) -> float:
        with self._lock:
            return self._pressure

    def verify_scale(self) -> float:
        """Multiplier for the verify policy's sampling rate at this level."""
        return _VERIFY_SCALE[self.level]

    @property
    def reroute_cheap(self) -> bool:
        """Should lane groups fail over to cheaper capable backends?"""
        return self.level >= 2

    @property
    def batch_suspended(self) -> bool:
        """Is batch-class admission suspended outright?"""
        return self.level >= 3

    def update(self, pressure: float) -> int:
        """Fold one pressure sample in; returns the (possibly new) level."""
        pressure = min(max(pressure, 0.0), 1.0)
        now = self._clock()
        with self._lock:
            self._pressure += self.alpha * (pressure - self._pressure)
            if now - self._moved_at >= self.dwell_s:
                if self._pressure >= self.high and self._level < 3:
                    self._step_locked(self._level + 1, now)
                elif self._pressure <= self.low and self._level > 0:
                    self._step_locked(self._level - 1, now)
            if OBS.enabled:
                OBS.gauge("serving.brownout_pressure", self._pressure)
            return self._level

    def _step_locked(self, to: int, now: float) -> None:
        self._level = to
        self._moved_at = now
        if OBS.enabled:
            OBS.gauge("serving.brownout_level", to)
            OBS.count("serving.brownout_transitions", to=BROWNOUT_LEVELS[to])
