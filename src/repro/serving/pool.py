"""Bounded worker pool over :mod:`concurrent.futures`.

Three worker kinds cover the backend spectrum:

* ``"process"`` — :class:`~concurrent.futures.ProcessPoolExecutor`, for
  the CPU-bound big-integer backends (the GIL would serialize them on
  threads).  Task functions must be module-level picklables.
* ``"thread"`` — :class:`~concurrent.futures.ThreadPoolExecutor`, for
  the simulators: they stay in-process so their ``OBS`` hook sites keep
  feeding the parent's metrics registry, and the GIL cost is acceptable
  because simulator throughput is bounded by Python bytecode anyway.
* ``"inline"`` — synchronous execution on the caller's thread, the
  deterministic mode tests and sequential baselines use.

The pool's defining feature is the **bounded in-flight window**: at most
``queue_limit`` submitted-but-unfinished tasks.  A submission past the
bound raises :class:`~repro.errors.QueueFull` immediately — backpressure
is explicit and the queue can never grow without bound or deadlock the
submitter.  Callers that prefer flow control over rejection block on
:meth:`wait_for_capacity` between attempts.

The in-flight depth is exported as the ``serving.queue_depth`` gauge.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Optional

from repro.errors import ParameterError, QueueFull
from repro.observability import OBS

__all__ = ["WorkerPool"]

_KINDS = ("process", "thread", "inline")


class WorkerPool:
    """Bounded dispatch front-end over an executor.

    Parameters
    ----------
    workers:
        Executor size (ignored for ``"inline"``).
    kind:
        ``"process"``, ``"thread"`` or ``"inline"``.
    queue_limit:
        Maximum in-flight (submitted, not yet done) tasks; defaults to
        ``4 × workers``.  ``submit`` raises :class:`QueueFull` beyond it.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        kind: str = "thread",
        queue_limit: Optional[int] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ParameterError(f"unknown worker kind {kind!r}; one of {_KINDS}")
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self.kind = kind
        self.workers = workers
        self.queue_limit = queue_limit if queue_limit is not None else 4 * workers
        if self.queue_limit < 1:
            raise ParameterError(f"queue_limit must be >= 1, got {self.queue_limit}")
        self._inflight = 0
        self._capacity = threading.Condition()
        self._closed = False
        if kind == "process":
            self._executor: Optional[Any] = ProcessPoolExecutor(max_workers=workers)
        elif kind == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-serve"
            )
        else:
            self._executor = None

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Current in-flight task count (the queue-depth gauge value)."""
        return self._inflight

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        """Dispatch ``fn(*args, **kwargs)``; reject when the window is full."""
        if self._closed:
            raise QueueFull("worker pool is shut down")
        with self._capacity:
            if self._inflight >= self.queue_limit:
                raise QueueFull(
                    f"worker queue full ({self._inflight}/{self.queue_limit} "
                    f"in flight); retry later"
                )
            self._inflight += 1
            if OBS.enabled:
                OBS.gauge("serving.queue_depth", self._inflight)
        if self._executor is None:
            future: Future = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # surfaced via future.exception()
                future.set_exception(exc)
            self._release(future)
            return future
        try:
            future = self._executor.submit(fn, *args, **kwargs)
        except BaseException:
            self._release(None)
            raise
        future.add_done_callback(self._release)
        return future

    def _release(self, _future: Optional[Future]) -> None:
        with self._capacity:
            self._inflight -= 1
            if OBS.enabled:
                OBS.gauge("serving.queue_depth", self._inflight)
            self._capacity.notify_all()

    def wait_for_capacity(self, timeout: Optional[float] = None) -> bool:
        """Block until a submission would be admitted (or ``timeout``)."""
        with self._capacity:
            return self._capacity.wait_for(
                lambda: self._inflight < self.queue_limit, timeout=timeout
            )

    # ------------------------------------------------------------------
    def shutdown(self, *, wait: bool = True, cancel_pending: bool = False) -> None:
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=cancel_pending)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
