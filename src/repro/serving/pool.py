"""Bounded worker pool over :mod:`concurrent.futures`.

Three worker kinds cover the backend spectrum:

* ``"process"`` — :class:`~concurrent.futures.ProcessPoolExecutor`, for
  the CPU-bound big-integer backends (the GIL would serialize them on
  threads).  Task functions must be module-level picklables.
* ``"thread"`` — :class:`~concurrent.futures.ThreadPoolExecutor`, for
  the simulators: they stay in-process so their ``OBS`` hook sites keep
  feeding the parent's metrics registry, and the GIL cost is acceptable
  because simulator throughput is bounded by Python bytecode anyway.
* ``"inline"`` — synchronous execution on the caller's thread, the
  deterministic mode tests and sequential baselines use.

The pool's defining feature is the **bounded in-flight window**: at most
``queue_limit`` submitted-but-unfinished tasks.  A submission past the
bound raises :class:`~repro.errors.QueueFull` immediately — backpressure
is explicit and the queue can never grow without bound or deadlock the
submitter.  Callers that prefer flow control over rejection block on
:meth:`wait_for_capacity` between attempts.

Slot accounting is **idempotent per future**: a slot is released exactly
once whether the future completes, is cancelled, or is explicitly
abandoned by the caller via :meth:`abandon` (the collector does this for
requests that exceed their deadline while still running — without it a
handful of stuck tasks would pin their slots forever and saturate the
window permanently).  A broken process executor (a worker died holding
tasks) is detected on submission and replaced via :meth:`respawn`, which
increments ``serving.worker_restarts``.

The in-flight depth is exported as the ``serving.queue_depth`` gauge.
"""

from __future__ import annotations

import threading
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable, Optional

from repro.errors import ParameterError, QueueFull
from repro.observability import OBS

__all__ = ["SlotWindow", "WorkerPool"]

_KINDS = ("process", "thread", "inline")


class SlotWindow:
    """Bounded in-flight slot accounting, shared by the worker pools.

    One instance tracks how many submitted-but-unfinished tasks a pool
    has admitted.  :meth:`reserve` applies the bound (raising
    :class:`~repro.errors.QueueFull` past it), :meth:`release` frees one
    future's slot exactly once however many times it is called (done
    callback, abandonment, shutdown may race), and :meth:`wait` blocks
    callers that prefer flow control over rejection.  The current depth
    is exported as the ``serving.queue_depth`` gauge on every change.

    Both :class:`WorkerPool` (one slot per task) and the sharded pool
    (one slot per request, reserved a batch at a time) delegate here so
    the two data planes share one backpressure semantic.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ParameterError(f"queue_limit must be >= 1, got {limit}")
        self.limit = limit
        self._inflight = 0
        self._cond = threading.Condition()

    @property
    def depth(self) -> int:
        return self._inflight

    def _gauge(self) -> None:
        if OBS.enabled:
            OBS.gauge("serving.queue_depth", self._inflight)

    def reserve(self, slots: int = 1, *, elastic: bool = False) -> None:
        """Admit ``slots`` tasks or raise :class:`QueueFull`.

        ``elastic`` admits an oversized reservation when the window is
        empty — a batch larger than the whole window must not deadlock a
        ``wait``-mode submitter that can never see enough free slots.
        """
        with self._cond:
            over = self._inflight + slots > self.limit
            if over and not (elastic and self._inflight == 0):
                raise QueueFull(
                    f"worker queue full ({self._inflight}/{self.limit} "
                    f"in flight, {slots} requested); retry later"
                )
            self._inflight += slots
            self._gauge()

    def release(self, future: Future) -> bool:
        """Release ``future``'s slot — exactly once, however often called.

        Runs as the done callback *and* from explicit abandonment; the
        per-future flag (checked under the lock) makes the paths
        race-free, so a slot can never be double-freed (which would
        corrupt the window) nor leaked (which would deadlock it).
        Returns ``True`` if this call released the slot.
        """
        with self._cond:
            if getattr(future, "_repro_released", False):
                return False
            future._repro_released = True
            self._inflight -= 1
            self._gauge()
            self._cond.notify_all()
            return True

    def cancel_reservation(self, slots: int = 1) -> None:
        """Back out slots reserved for a submission that never happened."""
        with self._cond:
            self._inflight -= slots
            self._gauge()
            self._cond.notify_all()

    def wait(self, timeout: Optional[float] = None, *, slots: int = 1) -> bool:
        """Block until ``slots`` tasks would be admitted (or ``timeout``).

        The predicate mirrors :meth:`reserve` including its elastic
        escape hatch (an empty window admits any size), so a waiter
        holding an oversized batch cannot spin on a window that is
        below the limit yet still too full for the whole batch.
        """
        with self._cond:
            return self._cond.wait_for(
                lambda: self._inflight + slots <= self.limit or self._inflight == 0,
                timeout=timeout,
            )


class WorkerPool:
    """Bounded dispatch front-end over an executor.

    Parameters
    ----------
    workers:
        Executor size (ignored for ``"inline"``).
    kind:
        ``"process"``, ``"thread"`` or ``"inline"``.
    queue_limit:
        Maximum in-flight (submitted, not yet done) tasks; defaults to
        ``4 × workers``.  ``submit`` raises :class:`QueueFull` beyond it.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        kind: str = "thread",
        queue_limit: Optional[int] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ParameterError(f"unknown worker kind {kind!r}; one of {_KINDS}")
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self.kind = kind
        self.workers = workers
        self.queue_limit = queue_limit if queue_limit is not None else 4 * workers
        self._window = SlotWindow(self.queue_limit)
        self._closed = False
        self._exec_lock = threading.Lock()  # serializes respawn/shutdown
        self.restarts = 0
        if kind == "process":
            self._executor: Optional[Any] = ProcessPoolExecutor(max_workers=workers)
        elif kind == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-serve"
            )
        else:
            self._executor = None

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Current in-flight task count (the queue-depth gauge value)."""
        return self._window.depth

    @property
    def load(self) -> float:
        """Window occupancy in ``[0, 1]`` — the brownout pressure signal."""
        return min(self._window.depth / max(self.queue_limit, 1), 1.0)

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        """Dispatch ``fn(*args, **kwargs)``; reject when the window is full."""
        if self._closed:
            raise QueueFull("worker pool is shut down")
        self._window.reserve()
        if self._executor is None:
            future: Future = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # surfaced via future.exception()
                future.set_exception(exc)
            self._release(future)
            return future
        try:
            future = self._executor.submit(fn, *args, **kwargs)
        except BrokenExecutor:
            # A worker process died (chaos kill, OOM, segfault) and broke
            # the executor.  Replace it and retry the submission once; a
            # second failure releases the slot and propagates.
            if self.kind != "process" or self._closed:
                self._window.cancel_reservation()
                raise
            self.respawn()
            try:
                future = self._executor.submit(fn, *args, **kwargs)
            except BaseException:
                self._window.cancel_reservation()
                raise
        except BaseException:
            self._window.cancel_reservation()
            raise
        future.add_done_callback(self._release)
        return future

    def _release(self, future: Future) -> None:
        self._window.release(future)

    def abandon(self, future: Future) -> bool:
        """Give up on a still-running task: free its slot immediately.

        The collector calls this for requests that blew their deadline —
        ``future.cancel()`` alone is not enough, because a task already
        *executing* cannot be cancelled and would otherwise hold its
        in-flight slot until it finishes (possibly never, if wedged).
        Returns ``True`` if this call released the slot.  The underlying
        task may still run to completion; its done callback then finds
        the slot already released and does nothing.
        """
        future.cancel()  # removes it from the executor queue if not started
        if self._window.release(future):
            if OBS.enabled:
                OBS.count("serving.abandoned")
            return True
        return False

    def respawn(self) -> None:
        """Replace a broken process executor with a fresh one.

        In-flight futures of the dead executor have already completed
        exceptionally (BrokenProcessPool), so their done callbacks have
        released their slots; only the executor object needs replacing.
        No-op for thread/inline pools, which cannot break this way.
        """
        if self.kind != "process":
            return
        with self._exec_lock:
            old, self._executor = self._executor, ProcessPoolExecutor(
                max_workers=self.workers
            )
            self.restarts += 1
            if OBS.enabled:
                OBS.count("serving.worker_restarts")
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)

    def wait_for_capacity(
        self, timeout: Optional[float] = None, *, slots: int = 1
    ) -> bool:
        """Block until a submission would be admitted (or ``timeout``)."""
        return self._window.wait(timeout, slots=slots)

    # ------------------------------------------------------------------
    def shutdown(self, *, wait: bool = True, cancel_pending: bool = False) -> None:
        self._closed = True
        with self._exec_lock:
            executor = self._executor
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=cancel_pending)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
