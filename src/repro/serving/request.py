"""Request and result types of the modexp serving layer.

A :class:`ModExpRequest` is one unit of client work — "compute
``base^exponent mod modulus``" — plus the scheduling envelope around it:
an identifier for correlation on the wire, an optional circuit width
``l`` (to model hardware wider than the modulus), an optional
``deadline`` the batch scheduler orders by, an optional per-request
``timeout`` the worker pool enforces, and optional ``factors`` for
backends that exponentiate via the CRT.

A :class:`ModExpResult` is the uniform answer envelope: either the value
(plus the backend's cycle accounting and measured wall time) or a typed
error (``TimeoutError``, ``QueueFull``, a backend failure), never an
exception — a batch of 200 requests always yields 200 results in input
order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ParameterError
from repro.observability.context import TraceContext
from repro.utils.validation import ensure_odd

__all__ = ["PRIORITIES", "ModExpRequest", "ModExpResult"]

#: Priority classes the overload layer understands, most urgent first.
#: ``interactive`` traffic is protected by admission reserves and is the
#: last to be shed; ``batch`` is the first.
PRIORITIES = ("interactive", "batch")


@dataclass(frozen=True)
class ModExpRequest:
    """One modular exponentiation to serve.

    Parameters
    ----------
    base, exponent, modulus:
        The operation ``base^exponent mod modulus``.  ``base`` is reduced
        into ``[0, N)`` on construction; ``exponent >= 1`` and ``modulus``
        odd ``>= 3`` (the Montgomery preconditions).
    request_id:
        Client-chosen correlation id echoed in the result (and on the
        JSON-lines wire).  Empty means "anonymous".
    l:
        Optional circuit width in bits (``0`` = the modulus bit length);
        requests only coalesce into one batch when both modulus *and*
        width match, because the pre-computed constants depend on both.
    factors:
        Optional ``(p, q)`` with ``p·q = modulus`` for CRT-capable
        backends (two half-width exponentiations).
    deadline:
        Optional urgency key; batches containing an earlier deadline
        dispatch first.  Units are whatever the caller uses consistently
        (the CLI uses seconds).
    timeout:
        Optional per-request wall-clock limit in seconds, enforced by the
        service when collecting the request's future.
    priority:
        Overload class, one of :data:`PRIORITIES` (default
        ``"batch"``).  Under pressure the admission gate and the CoDel
        shedder drop batch traffic first; interactive requests ride the
        reserved admission tokens.
    budget_s:
        Optional *relative* completion budget in seconds.  This is the
        form deadlines travel in on the JSON wire (``budget_ms``) and in
        workload traces — the service converts it to :attr:`expires_at`
        at admission time.
    expires_at:
        Optional *absolute* deadline on the ``time.monotonic()`` clock
        (system-wide on Linux, so it stays meaningful across forked
        shard workers).  Checked at admission, dequeue, and pre-execute;
        caps retry backoff.  Distinct from :attr:`deadline`, which is a
        relative urgency sort key, not a drop-dead time.
    trace:
        Optional :class:`~repro.observability.context.TraceContext`
        attached by the service before dispatch; it travels with the
        request into the worker so telemetry recorded there can be
        shipped back and merged under the request's span.
    """

    base: int
    exponent: int
    modulus: int
    request_id: str = ""
    l: int = 0
    factors: Optional[Tuple[int, int]] = None
    deadline: Optional[float] = None
    timeout: Optional[float] = None
    priority: str = "batch"
    budget_s: Optional[float] = None
    expires_at: Optional[float] = None
    trace: Optional[TraceContext] = None

    def __post_init__(self) -> None:
        if self.priority not in PRIORITIES:
            raise ParameterError(
                f"priority must be one of {PRIORITIES}, got {self.priority!r}"
            )
        if self.budget_s is not None and self.budget_s <= 0:
            raise ParameterError(f"budget_s must be > 0, got {self.budget_s}")
        ensure_odd("modulus", self.modulus)
        if self.modulus < 3:
            raise ParameterError(f"modulus must be >= 3, got {self.modulus}")
        if self.exponent < 1:
            raise ParameterError(f"exponent must be >= 1, got {self.exponent}")
        if not isinstance(self.base, int) or isinstance(self.base, bool):
            raise ParameterError("base must be an int")
        object.__setattr__(self, "base", self.base % self.modulus)
        if self.l and self.l < self.modulus.bit_length():
            raise ParameterError(
                f"l={self.l} too small for modulus of "
                f"{self.modulus.bit_length()} bits"
            )
        if self.factors is not None:
            p, q = self.factors
            if p * q != self.modulus:
                raise ParameterError(
                    f"factors ({p}, {q}) do not multiply to modulus {self.modulus}"
                )
            if p % 2 == 0 or q % 2 == 0:
                raise ParameterError("CRT factors must both be odd")

    @property
    def width(self) -> int:
        """Effective circuit width: explicit ``l`` or the modulus bits."""
        return self.l or self.modulus.bit_length()

    @property
    def coalesce_key(self) -> Tuple[int, int]:
        """Requests sharing this key share one Montgomery pre-computation."""
        return (self.modulus, self.l)

    @property
    def shard_key(self) -> int:
        """Stable placement key for the sharded data plane.

        A digest of :attr:`coalesce_key`, so every request for one
        ``(modulus, l)`` hashes to the same ring position and therefore
        the same home shard — keeping that shard's compiled-kernel and
        Montgomery-constant caches warm for its moduli.
        """
        from repro.serving.shard import placement_key

        return placement_key(self.modulus, self.l)

    def remaining_s(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds until :attr:`expires_at` (``None`` = no deadline).

        Negative once the deadline has passed — callers compare against
        zero rather than clamping, so "how late" stays observable.
        """
        if self.expires_at is None:
            return None
        return self.expires_at - (time.monotonic() if now is None else now)

    def expired(self, now: Optional[float] = None) -> bool:
        """True once the absolute deadline has passed."""
        remaining = self.remaining_s(now)
        return remaining is not None and remaining <= 0.0

    def expected(self) -> int:
        """Reference answer via CPython's ``pow`` (tests / verification)."""
        return pow(self.base, self.exponent, self.modulus)


@dataclass(frozen=True)
class ModExpResult:
    """Uniform outcome envelope for one request.

    ``ok`` distinguishes the two shapes: success carries ``value`` (and
    usually ``cycles``/``wall_us``); failure carries ``error_type`` (the
    exception class name, e.g. ``"TimeoutError"`` or ``"QueueFull"``) and
    a human-readable ``error`` message.  When the failure came with a
    flight-recorder post-mortem (a :class:`~repro.errors.FaultDetected`
    with signal-level evidence), ``bundle_path`` points at the dump.
    """

    request_id: str
    ok: bool
    value: Optional[int] = None
    error: str = ""
    error_type: str = ""
    backend: str = ""
    cycles: Optional[int] = None
    wall_us: Optional[float] = None
    batch_index: Optional[int] = field(default=None)
    bundle_path: Optional[str] = None

    @classmethod
    def success(
        cls,
        request: ModExpRequest,
        value: int,
        *,
        backend: str = "",
        cycles: Optional[int] = None,
        wall_us: Optional[float] = None,
        batch_index: Optional[int] = None,
    ) -> "ModExpResult":
        return cls(
            request_id=request.request_id,
            ok=True,
            value=value,
            backend=backend,
            cycles=cycles,
            wall_us=wall_us,
            batch_index=batch_index,
        )

    @classmethod
    def failure(
        cls,
        request_id: str,
        exc: BaseException,
        *,
        backend: str = "",
        batch_index: Optional[int] = None,
    ) -> "ModExpResult":
        return cls(
            request_id=request_id,
            ok=False,
            error=str(exc) or type(exc).__name__,
            error_type=type(exc).__name__,
            backend=backend,
            batch_index=batch_index,
            bundle_path=getattr(exc, "bundle_path", None),
        )
