"""Serving engine: backends, batch scheduling, workers, backpressure.

The paper's systolic array is a *throughput* design — one result per
``3l+4`` cycles once the pipeline fills — and this package is its
software-system counterpart: a serving layer that turns the repository's
single-shot engines into a multi-worker modular-exponentiation service.

* :mod:`repro.serving.request` — :class:`ModExpRequest` /
  :class:`ModExpResult`, the unit of work and its uniform outcome.
* :mod:`repro.serving.backends` — the :class:`ModExpBackend` protocol,
  capability declarations, cost models and the registry wrapping every
  engine in the repo (integer fast path, CRT-RSA, systolic RTL,
  gate-level netlist, high-radix, Tenca–Koç scalable).
* :mod:`repro.serving.scheduler` — per-modulus batch coalescing (one
  Montgomery pre-computation per batch) and deadline/cost dispatch
  ordering.
* :mod:`repro.serving.pool` — the bounded worker pool (process workers
  for big-int backends, thread workers for the simulators) with explicit
  ``QueueFull`` backpressure, and the shared :class:`SlotWindow`
  in-flight accounting.
* :mod:`repro.serving.shard` — the sharded data plane: consistent-hash
  placement of ``(modulus, l)`` onto pre-forked warm workers, coalesced
  batches crossing per-shard pipes as single binary frames, shard death
  → respawn → exactly-once requeue.
* :mod:`repro.serving.service` — the :class:`ModExpService` facade the
  CLI commands ``repro serve`` / ``repro batch`` drive.
* :mod:`repro.serving.slo` — :class:`SLOPolicy`, the cycle-budget SLO
  derived from the paper's ``3l+4`` / Eq. (10) formulas.
* :mod:`repro.serving.http` — :class:`TelemetryServer`, the ``/metrics``
  (Prometheus) + ``/healthz`` scrape endpoint ``repro serve`` can run.
* :mod:`repro.serving.wire` — the JSON-lines request/result format and
  the checksummed binary batch-frame format the shard plane speaks.
* :mod:`repro.serving.workload` — seeded workload generator (Zipf keyring
  traffic, mixed exponents, open-loop bursts, priority mix) behind
  ``repro loadgen``.
* :mod:`repro.serving.overload` — the graceful-degradation ladder:
  :class:`OverloadConfig` plus the token-bucket admission gate, CoDel
  shedder, hedged-request policy and brownout controller the service
  threads through its lifecycle under load.
* :mod:`repro.serving.health` — per-shard
  ``healthy → degraded → draining → dead`` state machines replacing the
  binary alive/dead view of the sharded data plane.

Self-healing (PR 5) lives in :mod:`repro.robustness` and threads through
:class:`ModExpService`: online result verification, seeded chaos fault
injection, retry with backoff, per-backend circuit breakers with
failover, and worker-crash recovery.  The policy types are re-exported
here for convenience.
"""

from repro.robustness import (
    BreakerConfig,
    ChaosConfig,
    RetryPolicy,
    VerifyPolicy,
)
from repro.serving.backends import (
    BackendCapabilities,
    BackendRegistry,
    BackendResult,
    ModExpBackend,
    default_registry,
)
from repro.serving.health import HEALTH_STATES, HealthConfig, ShardHealth
from repro.serving.http import TelemetryServer
from repro.serving.overload import (
    BrownoutController,
    CoDelShedder,
    HedgePolicy,
    LatencyReservoir,
    OverloadConfig,
    TokenBucket,
)
from repro.serving.pool import SlotWindow, WorkerPool
from repro.serving.request import ModExpRequest, ModExpResult
from repro.serving.scheduler import Batch, BatchScheduler, coalesce, lane_groups
from repro.serving.service import ModExpService
from repro.serving.shard import ShardMap, ShardPool, placement_key
from repro.serving.slo import SLOPolicy
from repro.serving.wire import (
    decode_batch_frame,
    decode_result_frame,
    encode_batch_frame,
    encode_result_frame,
    parse_request_line,
    read_frame,
    read_requests,
    request_to_json,
    result_to_json,
    write_frame,
)
from repro.serving.workload import Workload, WorkloadConfig, generate_workload

__all__ = [
    "BackendCapabilities",
    "BackendRegistry",
    "BackendResult",
    "ModExpBackend",
    "default_registry",
    "SlotWindow",
    "WorkerPool",
    "ShardMap",
    "ShardPool",
    "placement_key",
    "ModExpRequest",
    "ModExpResult",
    "Batch",
    "BatchScheduler",
    "coalesce",
    "lane_groups",
    "ModExpService",
    "SLOPolicy",
    "TelemetryServer",
    "parse_request_line",
    "read_requests",
    "request_to_json",
    "result_to_json",
    "encode_batch_frame",
    "decode_batch_frame",
    "encode_result_frame",
    "decode_result_frame",
    "write_frame",
    "read_frame",
    "Workload",
    "WorkloadConfig",
    "generate_workload",
    "OverloadConfig",
    "TokenBucket",
    "CoDelShedder",
    "HedgePolicy",
    "LatencyReservoir",
    "BrownoutController",
    "HEALTH_STATES",
    "HealthConfig",
    "ShardHealth",
    "BreakerConfig",
    "ChaosConfig",
    "RetryPolicy",
    "VerifyPolicy",
]
