"""The modexp serving engine: registry + scheduler + worker pool.

:class:`ModExpService` is the facade every entry point uses — the
``repro serve`` JSON-lines loop, ``repro batch`` file runs, the example
scripts and the benchmarks.  Lifecycle of one request:

1. **validate** — the backend's capability check turns unservable
   requests into immediate failure results;
2. **coalesce** — the batch scheduler groups requests by modulus so the
   Montgomery constants are pre-computed once per batch;
3. **dispatch** — each request becomes one bounded-pool task carrying
   the batch's shared context; saturation either blocks the submitter
   (``on_full="wait"``, batch mode) or rejects with ``QueueFull``
   (``on_full="reject"``, the serving loop);
4. **collect** — futures are harvested in dispatch order with the
   per-request timeout enforced; every outcome (value, timeout, backend
   failure, rejection) becomes a :class:`ModExpResult` and the results
   come back in input order.

Instrumentation goes through the PR-1 observability layer: wrap calls in
:func:`repro.observability.observe` and the registry fills with
``serving.requests{status=,backend=}`` counters, per-backend/per-worker
``serving.request_cycles`` / ``serving.request_wall_us`` histograms,
``serving.batch_size`` histograms and the ``serving.queue_depth`` gauge.

Telemetry survives the process boundary: each dispatched request carries
a :class:`~repro.observability.context.TraceContext`, process workers
open a fresh local observation session (:func:`capture`) and ship its
snapshot back with the result, and the parent merges it into its own
registry (``worker=`` labels) and re-parents the worker's spans under a
``serving.request`` span per request.  Thread and inline workers share
the parent's ``OBS`` singleton, so their hook sites already feed the
registry in-process and only the worker label is added.

Completed requests that report cycles are additionally checked against
the :class:`~repro.serving.slo.SLOPolicy` cycle budget (the paper's
Eq. (10) envelope), filling ``serving.slo_checks`` /
``serving.slo_violations``.

**Self-healing** (PR 5) threads the :mod:`repro.robustness` layer
through the same lifecycle: completed values pass through the
:class:`~repro.robustness.verify.ResultVerifier` (corruption becomes a
:class:`~repro.errors.FaultDetected` failure and increments
``serving.faults_detected``); failures are retried with backoff under a
:class:`~repro.robustness.retry.RetryPolicy` and service-wide budget;
per-backend :class:`~repro.robustness.breaker.CircuitBreaker`\\ s trip on
consecutive failures or SLO violations and (with ``failover=True``)
route retries to the next-cheapest capable backend; a broken process
pool is respawned and its in-flight requests requeued exactly once; and
a seeded :class:`~repro.robustness.chaos.ChaosConfig` injects worker
kills, exceptions, latency and register/result bit flips so every one of
those paths is exercised deterministically in tests and drills.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures import wait as futures_wait
from dataclasses import replace
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from repro.errors import (
    DeadlineExceeded,
    FaultDetected,
    ParameterError,
    QueueFull,
    RequestShed,
    WireFormatError,
)
from repro.montgomery.params import MontgomeryContext
from repro.observability import (
    OBS,
    REQUEST_SPAN,
    TraceContext,
    WorkerTelemetry,
    capture,
    flightrec_armed,
    worker_label,
)
from repro.observability.flightrec import find_bundles
from repro.robustness.breaker import BreakerBoard, BreakerConfig
from repro.robustness.chaos import ChaosConfig, FaultPlan
from repro.robustness.retry import RetryBudget, RetryPolicy
from repro.robustness.verify import ResultVerifier, VerifyPolicy
from repro.serving.backends import (
    BackendRegistry,
    ModExpBackend,
    default_registry,
)
from repro.serving.health import HealthConfig
from repro.serving.overload import (
    BrownoutController,
    CoDelShedder,
    HedgePolicy,
    OverloadConfig,
    TokenBucket,
)
from repro.serving.pool import WorkerPool
from repro.serving.request import ModExpRequest, ModExpResult
from repro.serving.scheduler import Batch, coalesce, lane_groups
from repro.serving.slo import SLOPolicy
from repro.serving.wire import parse_request_line, result_to_json

__all__ = ["ModExpService"]


_WORKER_REGISTRY: Optional[BackendRegistry] = None


def _worker_registry() -> BackendRegistry:
    """Per-process registry for tasks that arrive as backend *names*."""
    global _WORKER_REGISTRY
    if _WORKER_REGISTRY is None:
        _WORKER_REGISTRY = default_registry()
    return _WORKER_REGISTRY


def _execute_with_chaos(
    backend: ModExpBackend,
    ctx: MontgomeryContext,
    request: ModExpRequest,
    chaos: Optional[ChaosConfig],
    attempt: int,
    allow_kill: bool,
    arm_flightrec: bool = False,
):
    """Run one backend execution under the (possibly inactive) fault plan.

    Kill / exception / latency faults fire before the backend runs; a
    ``bitflip`` decision lands either as a real register upset inside the
    netlist simulator (backends exposing ``execute_with_register_fault``)
    or as a post-hoc XOR into the result — silent either way, by design:
    only the verification layer can catch it.

    When the config carries a ``flightrec_dir``, executions that inject a
    register flip — and any execution with ``arm_flightrec=True`` (retries
    of verify failures, where the corruption source is unknown) — run with
    an armed flight-recorder hub: the SEU fires the black box and the
    post-mortem bundle (VCD + request context) lands in the dump
    directory, tagged with this request id so the parent can find it.
    """
    if chaos is None or not chaos.active:
        return backend.execute(ctx, request)
    plan = FaultPlan(chaos)
    decision = plan.decide(request.request_id, attempt, allow_kill=allow_kill)
    plan.apply_pre(decision, request.request_id)  # may raise / exit / sleep
    is_reg_flip = (
        decision.kind == "bitflip"
        and chaos.register_faults
        and hasattr(backend, "execute_with_register_fault")
    )
    hub = None
    if is_reg_flip or arm_flightrec:
        hub = chaos.make_flightrec_hub()
        if hub is not None:
            hub.set_context(
                request_id=request.request_id,
                backend=getattr(backend, "name", type(backend).__name__),
                seed=chaos.seed,
                attempt=attempt,
            )
    if is_reg_flip:
        rng = random.Random(
            f"chaos-reg|{chaos.seed}|{request.request_id}|{attempt}"
        )
        if OBS.enabled:
            OBS.count("chaos.injected", kind="register-flip")
        with flightrec_armed(hub):
            return backend.execute_with_register_fault(ctx, request, rng)
    with flightrec_armed(hub):
        result = backend.execute(ctx, request)
    if decision.kind == "bitflip":
        corrupted = plan.corrupt_result(
            decision, result.value, request.modulus
        )
        result = type(result)(corrupted, result.cycles)
    return result


def _run_request(
    backend_spec: Any,
    ctx: MontgomeryContext,
    request: ModExpRequest,
    chaos: Optional[ChaosConfig] = None,
    attempt: int = 0,
    allow_kill: bool = False,
    arm_flightrec: bool = False,
) -> Tuple[int, Optional[int], float, str, Optional[WorkerTelemetry]]:
    """Pool task: execute one request, measuring wall time in the worker.

    ``backend_spec`` is the backend object for thread/inline pools and
    the backend *name* for process pools (objects with simulator state
    should not be pickled; names re-resolve in the worker interpreter).
    ``chaos``/``attempt``/``allow_kill`` drive the fault plan — the
    config is a frozen picklable value, so process workers replay the
    same deterministic decisions as inline retries.

    Returns ``(value, cycles, wall_us, worker, telemetry)``.  When the
    request's :class:`TraceContext` asks for capture (process workers —
    their ``OBS`` singleton is a separate interpreter's), the execution
    runs under a fresh local observation session and its snapshot comes
    back as the :class:`WorkerTelemetry`; otherwise telemetry is ``None``
    and the hook sites fed the parent's registry directly.
    """
    backend = (
        _worker_registry().get(backend_spec)
        if isinstance(backend_spec, str)
        else backend_spec
    )
    trace = request.trace
    if trace is not None and trace.wants_capture:
        with capture(trace) as telemetry:
            t0 = time.perf_counter()
            result = _execute_with_chaos(
                backend, ctx, request, chaos, attempt, allow_kill, arm_flightrec
            )
            wall_us = (time.perf_counter() - t0) * 1e6
        return result.value, result.cycles, wall_us, telemetry.worker, telemetry
    t0 = time.perf_counter()
    result = _execute_with_chaos(
        backend, ctx, request, chaos, attempt, allow_kill, arm_flightrec
    )
    wall_us = (time.perf_counter() - t0) * 1e6
    return result.value, result.cycles, wall_us, worker_label(), None


def _run_request_group(
    backend_spec: Any, ctx: MontgomeryContext, requests: List[ModExpRequest]
) -> Tuple[List[int], List[Optional[int]], float, str, None]:
    """Pool task: one same-modulus, same-exponent lane group in one sweep.

    Lane groups form only for thread/inline pools (lane-capable backends
    are simulators, which are not process-safe), so the backend's hook
    sites feed the parent's ``OBS`` registry directly and no capture
    session is needed.  Returns ``(values, cycles_per_request,
    wall_us_for_the_group, worker, None)``; the collector divides the
    group wall time across its requests.
    """
    backend = (
        _worker_registry().get(backend_spec)
        if isinstance(backend_spec, str)
        else backend_spec
    )
    t0 = time.perf_counter()
    results = backend.execute_many(ctx, list(requests))
    wall_us = (time.perf_counter() - t0) * 1e6
    return (
        [r.value for r in results],
        [r.cycles for r in results],
        wall_us,
        worker_label(),
        None,
    )


class _Entry:
    """One dispatched (or immediately resolved) request in flight."""

    __slots__ = (
        "request",
        "input_index",
        "batch_index",
        "future",
        "result",
        "submitted_at",
        "admitted_at",
        "group_pos",
        "group_size",
        "context",
        "requeued",
    )

    def __init__(self, request: ModExpRequest, input_index: int) -> None:
        self.request = request
        self.input_index = input_index
        self.batch_index: Optional[int] = None
        self.future: Optional[Future] = None
        self.result: Optional[ModExpResult] = None
        self.submitted_at: float = 0.0
        self.admitted_at: float = 0.0  # sojourn clock for the CoDel shedder
        self.group_pos: Optional[int] = None  # position in a lane group
        self.group_size: int = 1
        self.context: Optional[MontgomeryContext] = None  # batch's shared ctx
        self.requeued: bool = False  # already requeued after a broken pool


class ModExpService:
    """Multi-worker modular-exponentiation service with backpressure.

    Parameters
    ----------
    backend:
        Backend name (resolved in ``registry``) or a backend instance.
    registry:
        Backend registry; defaults to :func:`default_registry`.
    workers:
        Worker count.
    worker_kind:
        ``"process"`` / ``"thread"`` / ``"inline"`` / ``"shard"`` /
        ``"auto"``.  Auto picks processes for process-safe backends with
        ``workers > 1``, threads otherwise.  ``"shard"`` selects the
        sharded data plane (:mod:`repro.serving.shard`): ``workers``
        pre-forked warm processes, batches consistent-hashed by
        ``(modulus, l)`` and shipped as single binary frames.
    queue_limit:
        Bounded in-flight window of the pool (default ``4 × workers``).
    max_batch:
        Coalescing chunk size and the serve loop's flush threshold.
    default_timeout:
        Per-request timeout in seconds applied when a request carries
        none (``None`` = wait forever).
    slo:
        Cycle-budget policy applied to every completed request that
        reports cycles (default: the Eq. (10) envelope via
        :class:`SLOPolicy`); ``None`` disables SLO tracking.
    verify:
        :class:`~repro.robustness.verify.VerifyPolicy` for online result
        verification (``None`` = off).  Corrupted values become
        :class:`~repro.errors.FaultDetected` failures (and retry, when
        retries are on).
    chaos:
        :class:`~repro.robustness.chaos.ChaosConfig` fault-injection
        plan (``None`` = no injection).  Worker kills are only honoured
        on process pools; lane packing is disabled while chaos is active
        so every request gets its own fault decision.
    retry:
        :class:`~repro.robustness.retry.RetryPolicy` (``None`` = fail
        on first error).  Retries run inline on the collector thread —
        never through a possibly-sick pool — and are always verified
        when verification is enabled.
    retry_budget:
        Service-wide cap on concurrently outstanding retries.
    breaker:
        :class:`~repro.robustness.breaker.BreakerConfig` enabling
        per-backend circuit breakers (``None`` = no breakers).
    failover:
        When True, retries may be routed to the next-cheapest capable
        backend from the registry when the primary's breaker is open
        (or simply as an alternate opinion after a failure).
    overload:
        :class:`~repro.serving.overload.OverloadConfig` enabling the
        graceful-degradation ladder (``None`` = off, the default —
        nothing below changes behaviour):

        * **deadlines** — requests get an absolute ``expires_at`` from
          their ``budget_s`` (or the config's per-class default) at
          admission, checked again at dispatch, while awaiting, and
          before every retry (backoff is clamped to the remaining
          budget);
        * **admission** — a token bucket paces intake, with a reserve
          slice only interactive traffic may draw from;
        * **shedding** — a CoDel controller sheds *batch*-class
          requests whose queue sojourn stays over target;
        * **hedging** — stragglers past the observed p99 are re-issued
          to the next ring shard, first result wins (shard pools only);
        * **brownout** — sustained pressure steps down verification
          sampling, reroutes to cheaper backends, then suspends batch
          admission entirely, in that order.
    health:
        :class:`~repro.serving.health.HealthConfig` for the shard
        pool's per-shard health state machines (shard pools only;
        ``None`` = pool defaults).
    """

    def __init__(
        self,
        *,
        backend: Any = "integer",
        registry: Optional[BackendRegistry] = None,
        workers: int = 1,
        worker_kind: str = "auto",
        queue_limit: Optional[int] = None,
        max_batch: int = 32,
        default_timeout: Optional[float] = None,
        slo: Optional[SLOPolicy] = SLOPolicy(),
        verify: Optional[VerifyPolicy] = None,
        chaos: Optional[ChaosConfig] = None,
        retry: Optional[RetryPolicy] = None,
        retry_budget: int = 32,
        breaker: Optional[BreakerConfig] = None,
        failover: bool = False,
        overload: Optional[OverloadConfig] = None,
        health: Optional[HealthConfig] = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.backend: ModExpBackend = (
            self.registry.get(backend) if isinstance(backend, str) else backend
        )
        caps = self.backend.capabilities
        if worker_kind in ("auto", None):
            worker_kind = (
                "process" if (caps.process_safe and workers > 1) else "thread"
            )
        if worker_kind == "process":
            if not caps.process_safe:
                raise ParameterError(
                    f"backend {self.backend.name!r} is not process-safe; "
                    f"use worker_kind='thread'"
                )
            if self.backend.name not in default_registry():
                raise ParameterError(
                    "process workers resolve backends by name from the default "
                    f"registry, which has no {self.backend.name!r}; "
                    "use worker_kind='thread' for custom backends"
                )
        if worker_kind == "shard" and self.backend.name not in default_registry():
            raise ParameterError(
                "shard workers resolve backends by name from the default "
                f"registry, which has no {self.backend.name!r}; "
                "use worker_kind='thread' for custom backends"
            )
        if max_batch < 1:
            raise ParameterError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = max_batch
        self.default_timeout = default_timeout
        # The chaos plan must exist before the pool: shard workers take
        # it at fork time.
        self.chaos = chaos if (chaos is not None and chaos.active) else None
        if worker_kind == "shard":
            from repro.serving.shard import ShardPool

            self.pool: Any = ShardPool(
                shards=workers,
                backend=self.backend.name,
                queue_limit=queue_limit,
                chaos=self.chaos,
                health=health,
            )
        else:
            self.pool = WorkerPool(
                workers=workers, kind=worker_kind, queue_limit=queue_limit
            )
        self.slo = slo
        self.verify_policy = verify if (verify is not None and verify.enabled) else None
        self._verifier = (
            ResultVerifier(self.verify_policy) if self.verify_policy else None
        )
        self.retry = retry
        self._retry_budget = RetryBudget(retry_budget)
        self.breakers = BreakerBoard(breaker) if breaker is not None else None
        self.failover = failover
        self.overload = overload
        self._admission: Optional[TokenBucket] = None
        self._shedder: Optional[CoDelShedder] = None
        self._brownout: Optional[BrownoutController] = None
        self._hedge: Optional[HedgePolicy] = None
        if overload is not None:
            if overload.admit_rate is not None:
                self._admission = TokenBucket(
                    overload.admit_rate,
                    overload.admit_burst,
                    reserve=overload.interactive_reserve,
                )
            self._shedder = CoDelShedder(
                overload.shed_target_s, overload.shed_interval_s
            )
            if overload.brownout:
                self._brownout = BrownoutController(
                    high=overload.brownout_high,
                    low=overload.brownout_low,
                    dwell_s=overload.brownout_dwell_s,
                )
            if overload.hedge:
                self._hedge = HedgePolicy(
                    quantile=overload.hedge_quantile,
                    min_samples=overload.hedge_min_samples,
                    min_delay_s=overload.hedge_min_delay_s,
                )
        self._batch_counter = 0
        self._trace_seq = 0

    # ------------------------------------------------------------------
    # Telemetry plumbing
    # ------------------------------------------------------------------
    def _trace_context(self, request: ModExpRequest) -> TraceContext:
        """Build the telemetry envelope one request travels with.

        Capture flags only go up for process pools: a worker there is a
        separate interpreter whose ``OBS`` hook sites would otherwise
        record into a registry that dies with the task.  Thread/inline
        workers share this process's session, so re-capturing would
        double-count.
        """
        self._trace_seq += 1
        request_id = request.request_id or f"req{self._trace_seq}"
        want = self.pool.kind == "process" and OBS.enabled
        tracer = OBS.tracer
        return TraceContext(
            request_id=request_id,
            deadline=request.deadline,
            collect_metrics=want and OBS.metrics is not None,
            collect_spans=want and tracer is not None,
            detail=tracer.detail if tracer is not None else "op",
        )

    def _merge_telemetry(self, entry: _Entry, telemetry: WorkerTelemetry) -> None:
        """Fold one worker session into the parent registry/timeline."""
        trace = entry.request.trace
        request_id = trace.request_id if trace is not None else entry.request.request_id
        parent_span = trace.parent_span if trace is not None else REQUEST_SPAN
        if telemetry.metrics is not None and OBS.metrics is not None:
            OBS.metrics.merge(telemetry.metrics, worker=telemetry.worker)
        if telemetry.events and OBS.tracer is not None:
            OBS.tracer.adopt_span(
                parent_span,
                telemetry.events,
                telemetry.cycles,
                worker=telemetry.worker,
                request_id=request_id,
                backend=self.backend.name,
            )

    def _check_slo(
        self, request: ModExpRequest, cycles: int, worker: str, backend_name: str
    ) -> None:
        if self.slo is None:
            return
        budget = self.slo.cycle_budget(request)
        if OBS.enabled:
            OBS.count("serving.slo_checks", backend=backend_name)
        if cycles > budget:
            if OBS.enabled:
                OBS.count(
                    "serving.slo_violations", backend=backend_name, worker=worker
                )
            if self.breakers is not None:
                self.breakers.get(backend_name).record_slo_violation()

    # ------------------------------------------------------------------
    # Overload control: admission, shedding, brownout
    # ------------------------------------------------------------------
    @staticmethod
    def _count_shed(reason: str, priority: str) -> None:
        if OBS.enabled:
            OBS.count(
                "serving.shed_requests", reason=reason, **{"class": priority}
            )

    def _admit(
        self, request: ModExpRequest, now: float
    ) -> Tuple[ModExpRequest, Optional[BaseException]]:
        """Admission gate: stamp the absolute deadline, apply the ladder.

        Returns the (possibly deadline-stamped) request and ``None``, or
        the refusal exception: :class:`DeadlineExceeded` for requests
        already past their budget, :class:`RequestShed` for brownout
        batch suspension and token-bucket refusal.  Interactive traffic
        may draw from the bucket's reserve slice and is never refused by
        the brownout gate — under overload it is batch that gives way.
        """
        if self.overload is None:
            return request, None
        if request.expires_at is None:
            budget = request.budget_s
            if budget is None:
                budget = self.overload.budget_for(request.priority)
            if budget is not None:
                request = replace(request, expires_at=now + budget)
        if request.expired(now):
            if OBS.enabled:
                OBS.count("serving.deadline_expired", where="admission")
            return request, DeadlineExceeded(
                "deadline passed before admission", where="admission"
            )
        if (
            self._brownout is not None
            and self._brownout.batch_suspended
            and request.priority == "batch"
        ):
            self._count_shed("brownout", request.priority)
            return request, RequestShed(
                "batch admission suspended (brownout level 3)", reason="brownout"
            )
        if self._admission is not None:
            if not self._admission.try_admit(request.priority):
                self._count_shed("admission", request.priority)
                return request, RequestShed(
                    f"admission rate exceeded for {request.priority} traffic",
                    reason="admission",
                )
            if OBS.enabled:
                OBS.gauge("serving.admission_level", self._admission.level)
        return request, None

    def _update_brownout(self) -> None:
        """Feed the pool's window occupancy into the brownout controller."""
        if self._brownout is None:
            return
        level = self._brownout.update(getattr(self.pool, "load", 0.0))
        if OBS.enabled:
            OBS.gauge("serving.brownout_level", level)

    def _shed_at_dispatch(self, entries: List[_Entry]) -> List[_Entry]:
        """Dequeue-time gates: expired deadlines, then CoDel shedding.

        Runs just before a batch's entries are submitted to the pool.
        Entries that fail a gate get their failure result attached (the
        collector returns it directly) and are excluded from submission;
        the survivors are returned.  CoDel sheds *batch*-class requests
        only — interactive latency is protected by shedding around it,
        never by dropping it.
        """
        if self.overload is None:
            return entries
        keep: List[_Entry] = []
        now = time.monotonic()
        for entry in entries:
            request = entry.request
            if request.expired(now):
                if OBS.enabled:
                    OBS.count("serving.deadline_expired", where="dispatch")
                    OBS.count(
                        "serving.requests",
                        status="expired",
                        backend=self.backend.name,
                    )
                entry.result = ModExpResult.failure(
                    request.request_id,
                    DeadlineExceeded(
                        "deadline passed before dispatch", where="dispatch"
                    ),
                    backend=self.backend.name,
                    batch_index=entry.batch_index,
                )
                continue
            if self._shedder is not None and request.priority == "batch":
                sojourn = now - entry.admitted_at if entry.admitted_at else 0.0
                if self._shedder.offer(sojourn):
                    self._count_shed("codel", request.priority)
                    if OBS.enabled:
                        OBS.count(
                            "serving.requests",
                            status="shed",
                            backend=self.backend.name,
                        )
                    entry.result = ModExpResult.failure(
                        request.request_id,
                        RequestShed(
                            f"queue sojourn {sojourn * 1e3:.1f} ms over the "
                            f"{self._shedder.target_s * 1e3:.1f} ms target",
                            reason="codel",
                        ),
                        backend=self.backend.name,
                        batch_index=entry.batch_index,
                    )
                    continue
            keep.append(entry)
        return keep

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _backend_spec(self) -> Any:
        return self.backend.name if self.pool.kind == "process" else self.backend

    @staticmethod
    def _lane_groups(
        entries: List[_Entry], lanes: int, *, mixed: bool = False
    ) -> List[List[_Entry]]:
        """Lane-packable groups of in-flight entries.

        Delegates to :func:`repro.serving.scheduler.lane_groups`, the
        grouping rule shared with the shard worker loop.
        """
        return lane_groups(
            entries, lanes, mixed=mixed, exponent_of=lambda e: e.request.exponent
        )

    def _submit_group(
        self, spec: Any, batch: Batch, group: List[_Entry], *, on_full: str
    ) -> None:
        """Submit one pool task for ``group`` (one request, or a lane pack)."""
        while True:
            try:
                now = time.monotonic()
                if len(group) == 1:
                    entry = group[0]
                    entry.submitted_at = now
                    entry.future = self.pool.submit(
                        _run_request,
                        spec,
                        batch.context,
                        entry.request,
                        self.chaos,
                        0,
                        self.pool.kind == "process",
                    )
                else:
                    future = self.pool.submit(
                        _run_request_group,
                        spec,
                        batch.context,
                        [e.request for e in group],
                    )
                    for pos, entry in enumerate(group):
                        entry.submitted_at = now
                        entry.future = future
                        entry.group_pos = pos
                        entry.group_size = len(group)
                if OBS.enabled:
                    OBS.count(
                        "serving.requests",
                        len(group),
                        status="accepted",
                        backend=self.backend.name,
                    )
                return
            except QueueFull as exc:
                if on_full == "reject":
                    for entry in group:
                        entry.result = ModExpResult.failure(
                            entry.request.request_id,
                            exc,
                            backend=self.backend.name,
                            batch_index=batch.index,
                        )
                    if OBS.enabled:
                        OBS.count(
                            "serving.requests",
                            len(group),
                            status="rejected",
                            backend=self.backend.name,
                        )
                    return
                self.pool.wait_for_capacity(timeout=0.5)

    def _dispatch(
        self, batches: List[Batch], entries_by_id: Dict[int, Deque[_Entry]], *, on_full: str
    ) -> List[_Entry]:
        """Submit every batch request; returns entries in dispatch order.

        Backends declaring ``capabilities.lanes > 1`` get same-exponent
        requests of a batch submitted as *one* task running the backend's
        bit-sliced :meth:`execute_many`; everything else dispatches one
        task per request, exactly as before.  Lane grouping is skipped on
        process pools (no lane-capable backend is process-safe, but a
        custom registry could claim otherwise).

        Shard pools take a different path entirely: each batch ships to
        its home shard as one binary frame (lane grouping then happens
        inside the warm worker).
        """
        if self.pool.kind == "shard":
            return self._dispatch_shard(batches, entries_by_id, on_full=on_full)
        spec = self._backend_spec()
        lanes = self.backend.capabilities.lanes
        # Lane packing is suspended under chaos: each request must get its
        # own per-request fault decision, which a shared lock-step sweep
        # cannot honour.
        lane_packing = (
            lanes > 1 and self.pool.kind != "process" and self.chaos is None
        )
        dispatched: List[_Entry] = []
        for batch in batches:
            entries = [entries_by_id[id(r)].popleft() for r in batch.requests]
            for entry in entries:
                entry.batch_index = batch.index
                entry.context = batch.context
            dispatched.extend(entries)
            live = self._shed_at_dispatch(entries)
            if not live:
                continue
            groups = (
                self._lane_groups(
                    live,
                    lanes,
                    mixed=self.backend.capabilities.mixed_exponent_lanes,
                )
                if lane_packing
                else [[entry] for entry in live]
            )
            for group in groups:
                if OBS.enabled:
                    OBS.count(
                        "serving.lane_groups",
                        packed="yes" if len(group) > 1 else "no",
                    )
                    OBS.record(
                        "serving.lane_group_size",
                        len(group),
                        backend=self.backend.name,
                    )
                self._submit_group(spec, batch, group, on_full=on_full)
        return dispatched

    def _dispatch_shard(
        self,
        batches: List[Batch],
        entries_by_id: Dict[int, Deque[_Entry]],
        *,
        on_full: str,
    ) -> List[_Entry]:
        """Ship each coalesced batch to its home shard as one frame.

        One :meth:`~repro.serving.shard.ShardPool.submit_batch` call per
        batch returns one future per request; the collector harvests
        them exactly like single-task futures (``group_pos`` stays
        ``None`` — the payload is already per-request).  Backpressure is
        batch-granular: a batch that does not fit the window is rejected
        or waited out whole.
        """
        cheap = self._brownout is not None and self._brownout.reroute_cheap
        dispatched: List[_Entry] = []
        for batch in batches:
            entries = [entries_by_id[id(r)].popleft() for r in batch.requests]
            for entry in entries:
                entry.batch_index = batch.index
                entry.context = batch.context
            dispatched.extend(entries)
            live = self._shed_at_dispatch(entries)
            if not live:
                continue
            while True:
                try:
                    now = time.monotonic()
                    futures = self.pool.submit_batch(
                        [e.request for e in live], cheap_mode=cheap
                    )
                    for entry, future in zip(live, futures):
                        entry.submitted_at = now
                        entry.future = future
                    if OBS.enabled:
                        OBS.count(
                            "serving.requests",
                            len(live),
                            status="accepted",
                            backend=self.backend.name,
                        )
                    break
                except QueueFull as exc:
                    if on_full == "reject":
                        for entry in live:
                            entry.result = ModExpResult.failure(
                                entry.request.request_id,
                                exc,
                                backend=self.backend.name,
                                batch_index=batch.index,
                            )
                        if OBS.enabled:
                            OBS.count(
                                "serving.requests",
                                len(live),
                                status="rejected",
                                backend=self.backend.name,
                            )
                        break
                    # Wait for the whole batch's worth of slots, not just
                    # one — a below-limit-but-too-full window would
                    # otherwise bounce the waiter straight back into
                    # QueueFull in a hot loop.
                    self.pool.wait_for_capacity(timeout=0.5, slots=len(live))
        return dispatched

    # ------------------------------------------------------------------
    # Collection, verification, recovery
    # ------------------------------------------------------------------
    def _await_future(self, entry: _Entry) -> Tuple[str, Any]:
        """Harvest one dispatched future.

        Returns ``("ok", payload_tuple)``, ``("timeout", exc)`` or
        ``("error", exc)``.  On timeout the future's pool slot is
        *abandoned*, not merely cancelled: a task already executing
        cannot be cancelled and would otherwise pin its in-flight slot
        until (if ever) it finishes — enough stuck tasks would saturate
        the bounded window permanently.
        """
        request, future = entry.request, entry.future
        assert future is not None
        timeout = request.timeout if request.timeout is not None else self.default_timeout
        remaining: Optional[float] = None
        if timeout is not None:
            remaining = max(0.0, entry.submitted_at + timeout - time.monotonic())
        # The absolute deadline also caps the wait — there is no point
        # blocking past the moment the answer stops being useful.
        budget = request.remaining_s()
        if budget is not None:
            budget = max(0.0, budget)
            remaining = budget if remaining is None else min(remaining, budget)
        try:
            if (
                self._hedge is not None
                and self.pool.kind == "shard"
                and entry.group_pos is None
            ):
                payload = self._hedged_result(entry, remaining)
            else:
                payload = future.result(timeout=remaining)
            if self._hedge is not None:
                self._hedge.observe(time.monotonic() - entry.submitted_at)
            if entry.group_pos is None:
                value, cycles, wall_us, worker, telemetry = payload
            else:
                # Lane-group task: unpack this request's slice; wall time
                # is amortized evenly over the group it shared a sweep with.
                values, cycles_list, group_wall_us, worker, telemetry = payload
                value = values[entry.group_pos]
                cycles = cycles_list[entry.group_pos]
                wall_us = group_wall_us / entry.group_size
            if OBS.enabled:
                # Time from submission to harvest minus the execution wall
                # time = time the task sat in the pool's queue (plus any
                # harvest skew, hence the clamp).
                wait_us = (time.monotonic() - entry.submitted_at) * 1e6 - wall_us
                OBS.record(
                    "serving.queue_wait_us",
                    wait_us if wait_us > 0 else 0.0,
                    backend=self.backend.name,
                )
            return "ok", (value, cycles, wall_us, worker, telemetry)
        except FuturesTimeout:
            self.pool.abandon(future)
            if request.expired():
                if OBS.enabled:
                    OBS.count("serving.deadline_expired", where="await")
                return "timeout", DeadlineExceeded(
                    "deadline passed while awaiting the result", where="await"
                )
            return "timeout", TimeoutError(f"request exceeded {timeout}s")
        except BaseException as exc:
            return "error", exc

    def _hedged_result(self, entry: _Entry, remaining: Optional[float]) -> Any:
        """First-result-wins between the primary dispatch and one hedge.

        After the hedge policy's p99-derived delay (``None`` until the
        latency reservoir warms up), the straggling request is re-issued
        to the next live shard on the ring — the shard that would
        inherit its key on real failover, so hedges also warm the right
        caches.  Whichever copy answers first wins; the loser is
        abandoned, so exactly one result is ever consumed.  Raises
        :class:`FuturesTimeout` or the winner's exception exactly like
        ``Future.result`` so the caller's handling is unchanged.
        """
        primary = entry.future
        assert primary is not None and self._hedge is not None
        give_up = None if remaining is None else time.monotonic() + remaining
        delay = self._hedge.delay()
        if delay is None:  # reservoir still warming up: no hedging yet
            return primary.result(timeout=remaining)
        first_wait = (
            delay
            if give_up is None
            else min(delay, max(give_up - time.monotonic(), 0.0))
        )
        try:
            return primary.result(timeout=first_wait)
        except FuturesTimeout:
            pass
        hedge = self.pool.submit_hedge(entry.request)
        if hedge is None:  # no distinct live shard, or the window is full
            rest = None if give_up is None else max(give_up - time.monotonic(), 0.0)
            return primary.result(timeout=rest)
        if OBS.enabled:
            OBS.count("serving.hedges_fired")
        pending = {primary, hedge}
        while pending:
            rest = None if give_up is None else max(give_up - time.monotonic(), 0.0)
            done, pending = futures_wait(
                pending, timeout=rest, return_when=FIRST_COMPLETED
            )
            if not done:
                # Overall timeout: the caller abandons the primary; the
                # hedge is ours to clean up.
                self.pool.abandon(hedge)
                raise FuturesTimeout()
            for settled in done:
                if settled.exception() is None:
                    loser = hedge if settled is primary else primary
                    if not loser.done():
                        self.pool.abandon(loser)
                    if OBS.enabled:
                        OBS.count(
                            "serving.hedge_wins",
                            winner="primary" if settled is primary else "hedge",
                        )
                    return settled.result()
        # Both copies settled exceptionally: surface the primary's error.
        return primary.result()

    def _rid(self, entry: _Entry) -> str:
        request = entry.request
        if request.request_id:
            return request.request_id
        if request.trace is not None:
            return request.trace.request_id
        return f"idx{entry.input_index}"

    def _verify_value(
        self, entry: _Entry, value: int, attempt: int, backend_name: str
    ) -> Optional[FaultDetected]:
        """Run the verification policy over one completed value."""
        if self._verifier is None:
            return None
        if not self.verify_policy.should_verify(self._rid(entry), attempt):
            return None
        if self._brownout is not None:
            # Brownout step one: thin verification before touching any
            # traffic.  Deterministic per (request, attempt) so a given
            # value's fate does not depend on collection order.
            scale = self._brownout.verify_scale()
            if scale < 1.0:
                rng = random.Random(f"brownout-verify|{self._rid(entry)}|{attempt}")
                if rng.random() >= scale:
                    if OBS.enabled:
                        OBS.count("serving.verify_skipped", reason="brownout")
                    return None
        if OBS.enabled:
            OBS.count("serving.verified", backend=backend_name)
        started = time.perf_counter()
        try:
            self._verifier.check(entry.request, value)
        except FaultDetected as exc:
            self._attach_bundle(exc, entry)
            return exc
        finally:
            if OBS.enabled:
                OBS.record(
                    "serving.verify_wall_us",
                    (time.perf_counter() - started) * 1e6,
                    backend=backend_name,
                )
        return None

    def _attach_bundle(self, exc: FaultDetected, entry: _Entry) -> None:
        """Point a detected fault at its flight-recorder bundle, if any.

        The faulting execution may have run in a process worker — its
        hub lives in another interpreter — so the handoff is the dump
        directory on disk: the newest bundle tagged with this request id
        becomes the error's ``bundle_path``.
        """
        chaos = self.chaos
        if exc.bundle_path is not None or chaos is None or not chaos.flightrec_dir:
            return
        found = find_bundles(chaos.flightrec_dir, self._rid(entry))
        if found:
            exc.bundle_path = found[-1]
            if OBS.enabled:
                OBS.count("serving.flightrec_bundles_attached")

    def _note_failure(self, exc: BaseException, backend_name: str) -> None:
        """Account one failed execution: detection metrics + breaker."""
        if isinstance(exc, FaultDetected) and OBS.enabled:
            OBS.count(
                "serving.faults_detected", check=exc.check, backend=backend_name
            )
        if self.breakers is not None:
            self.breakers.get(backend_name).record_failure()

    def _note_success(self, backend_name: str) -> None:
        if self.breakers is not None:
            self.breakers.get(backend_name).record_success()

    def _route(self, request: ModExpRequest) -> Optional[ModExpBackend]:
        """Pick the backend for a retry attempt, breaker- and cost-aware.

        The primary backend keeps priority while its breaker admits
        traffic.  With ``failover=True`` the alternates are the registry
        backends that can serve the request, ordered by
        :meth:`~repro.serving.backends.ModExpBackend.estimate_cost`
        (cheapest first).  ``None`` means no backend is currently
        willing — the caller fails the request without burning budget.
        Breaker ``allow()`` is only consulted in priority order, so
        half-open probe slots are never claimed for backends that are
        not actually used.
        """
        primary = self.backend
        candidates: List[ModExpBackend] = [primary]
        if self.failover:
            alternates = [
                b
                for b in self.registry
                if b.name != primary.name and b.reject_reason(request) is None
            ]
            alternates.sort(key=lambda b: b.estimate_cost(request))
            candidates.extend(alternates)
        for candidate in candidates:
            if self.breakers is None or self.breakers.allow(candidate.name):
                return candidate
        return None

    def _requeue_after_break(self, entry: _Entry) -> Tuple[str, Any]:
        """A worker process died under this request: resubmit exactly once.

        The pool replaces its broken executor on the next submission
        (``respawn``); the request is requeued with a bumped attempt
        index so a deterministic chaos kill does not simply re-fire.
        """
        entry.requeued = True
        if OBS.enabled:
            OBS.count("serving.requeued", backend=self.backend.name)
        try:
            entry.submitted_at = time.monotonic()
            entry.future = self.pool.submit(
                _run_request,
                self._backend_spec(),
                entry.context,
                entry.request,
                self.chaos,
                1,  # attempt index for the chaos RNG key
                self.pool.kind == "process",
            )
        except BaseException as exc:
            return "error", exc
        return self._await_future(entry)

    def _collect(self, entry: _Entry) -> ModExpResult:
        """Resolve one entry: harvest, verify, and recover as configured.

        The recovery ladder, in order: (1) a request whose worker
        process died is requeued once through the respawned pool;
        (2) completed values run through the verification policy —
        detected corruption becomes a failure; (3) failures consume the
        retry policy, re-executing inline on this thread (optionally
        failing over to another backend when the primary's breaker is
        open), with every retried value verified.  Whatever survives is
        the result.
        """
        if entry.result is not None:  # rejected or pre-resolved
            return entry.result
        request = entry.request
        primary = self.backend.name
        used = primary
        attempt = 0
        status, payload = self._await_future(entry)

        if (
            status == "error"
            and isinstance(payload, BrokenExecutor)
            and not entry.requeued
            and self.pool.kind == "process"
        ):
            attempt = 1
            status, payload = self._requeue_after_break(entry)

        if status == "ok":
            value = payload[0]
            fault = self._verify_value(entry, value, attempt, used)
            if fault is not None:
                status, payload = "error", fault
            else:
                self._note_success(used)
        if status in ("error", "timeout"):
            self._note_failure(payload, used)
            status, payload, used, attempt = self._retry_loop(
                entry, status, payload, attempt
            )

        if status != "ok":
            terminal = "timeout" if status == "timeout" else "failed"
            if OBS.enabled:
                OBS.count("serving.requests", status=terminal, backend=used)
            return ModExpResult.failure(
                request.request_id,
                payload,
                backend=used,
                batch_index=entry.batch_index,
            )

        value, cycles, wall_us, worker, telemetry = payload
        if OBS.enabled:
            OBS.count("serving.requests", status="completed", backend=used)
            # A completed-but-late result still violated its deadline;
            # the CI drill gates on this being zero for interactive.
            late = request.remaining_s()
            if late is not None and late < 0:
                OBS.count(
                    "serving.deadline_violations",
                    **{"class": request.priority},
                )
            if telemetry is not None:
                self._merge_telemetry(entry, telemetry)
            if cycles is not None:
                OBS.record(
                    "serving.request_cycles", cycles, backend=used, worker=worker
                )
            OBS.record(
                "serving.request_wall_us", wall_us, backend=used, worker=worker
            )
            # Per-worker busy accounting: summing each worker's execution
            # wall time gives its busy timeline share of the run.
            OBS.count("serving.worker_busy_us", int(wall_us), worker=worker)
        if cycles is not None:
            self._check_slo(request, cycles, worker, used)
        return ModExpResult.success(
            request,
            value,
            backend=used,
            cycles=cycles,
            wall_us=wall_us,
            batch_index=entry.batch_index,
        )

    def _retry_loop(
        self, entry: _Entry, status: str, payload: Any, attempt: int
    ) -> Tuple[str, Any, str, int]:
        """Re-execute a failed request under the retry policy.

        Retries run inline on the collector thread — deliberately not
        through the pool, whose workers may be the thing that is sick —
        with ``allow_kill=False`` (an injected kill inline would take
        down the service itself; the plan degrades it to an exception).
        Returns ``(status, payload, backend_used, attempt)``.
        """
        primary = self.backend.name
        used = primary
        policy = self.retry
        if policy is None or isinstance(payload, ParameterError):
            return status, payload, used, attempt
        request = entry.request
        rid = self._rid(entry)
        # Inline execution must not re-enter telemetry capture (that is
        # for process workers); strip the trace envelope for retries.
        inline_request = (
            replace(request, trace=None) if request.trace is not None else request
        )
        while attempt + 1 < policy.max_attempts and status != "ok":
            remaining = request.remaining_s()
            if remaining is not None and not policy.worth_retrying(attempt, remaining):
                # Fail fast: the budget cannot cover another attempt, so
                # burning it on a doomed retry only delays the failure.
                if OBS.enabled:
                    OBS.count("serving.deadline_expired", where="retry")
                if remaining <= 0 and not isinstance(payload, DeadlineExceeded):
                    status, payload = "timeout", DeadlineExceeded(
                        "deadline passed during retries", where="retry"
                    )
                break
            if not self._retry_budget.try_acquire():
                if OBS.enabled:
                    OBS.count("serving.retry_budget_exhausted")
                break
            retry_fault = isinstance(payload, FaultDetected)
            try:
                attempt += 1
                target = self._route(request)
                if target is None:
                    if OBS.enabled:
                        OBS.count("serving.no_backend_available")
                    break
                delay = policy.backoff(rid, attempt, request.remaining_s())
                if delay > 0:
                    time.sleep(delay)
                if OBS.enabled:
                    OBS.count("serving.retries", backend=target.name)
                ctx = entry.context
                assert ctx is not None
                try:
                    # Retries of a detected fault run with the flight
                    # recorder armed: if the corruption reproduces (a
                    # deterministic register flip, a sick backend), the
                    # black box captures signal-level evidence this time.
                    payload = _run_request(
                        target,
                        ctx,
                        inline_request,
                        self.chaos,
                        attempt,
                        False,
                        arm_flightrec=retry_fault,
                    )
                except BaseException as exc:
                    status, payload = "error", exc
                    self._note_failure(exc, target.name)
                    continue
                fault = self._verify_value(entry, payload[0], attempt, target.name)
                if fault is not None:
                    status, payload = "error", fault
                    self._note_failure(fault, target.name)
                    continue
                status = "ok"
                used = target.name
                self._note_success(used)
                if used != primary and OBS.enabled:
                    OBS.count("serving.failovers", **{"from": primary, "to": used})
            finally:
                self._retry_budget.release()
        return status, payload, used, attempt

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def process(
        self, requests: Iterable[ModExpRequest], *, on_full: str = "wait"
    ) -> List[ModExpResult]:
        """Serve a workload; results come back in input order.

        ``on_full="wait"`` (batch mode) applies flow control against the
        bounded pool — nothing is rejected, the submitter blocks.
        ``on_full="reject"`` (serving mode) turns saturation into
        ``QueueFull`` failure results.
        """
        if on_full not in ("wait", "reject"):
            raise ParameterError(f"on_full must be 'wait' or 'reject', got {on_full!r}")
        ordered = list(requests)
        results: List[Optional[ModExpResult]] = [None] * len(ordered)
        self._update_brownout()

        # Capability screen + overload admission: unservable, refused
        # and already-expired requests resolve immediately.
        servable: List[ModExpRequest] = []
        entries_by_id: Dict[int, Deque[_Entry]] = {}
        admitted_at = time.monotonic()
        for index, request in enumerate(ordered):
            reason = self.backend.reject_reason(request)
            if reason is not None:
                if OBS.enabled:
                    OBS.count(
                        "serving.requests",
                        status="unsupported",
                        backend=self.backend.name,
                    )
                results[index] = ModExpResult.failure(
                    request.request_id,
                    ParameterError(reason),
                    backend=self.backend.name,
                )
                continue
            request, refusal = self._admit(request, admitted_at)
            if refusal is not None:
                if OBS.enabled:
                    status = (
                        "expired"
                        if isinstance(refusal, DeadlineExceeded)
                        else "shed"
                    )
                    OBS.count(
                        "serving.requests", status=status, backend=self.backend.name
                    )
                results[index] = ModExpResult.failure(
                    request.request_id,
                    refusal,
                    backend=self.backend.name,
                )
                continue
            if not request.request_id and (
                self.chaos is not None or self._verifier is not None
            ):
                # Chaos decisions and verification sampling key their RNGs
                # on the request id; give anonymous requests a stable one.
                self._trace_seq += 1
                request = replace(request, request_id=f"req{self._trace_seq}")
            if OBS.enabled and request.trace is None:
                request = replace(request, trace=self._trace_context(request))
            servable.append(request)
            entry = _Entry(request, index)
            entry.admitted_at = admitted_at
            entries_by_id.setdefault(id(request), deque()).append(entry)

        batches = coalesce(
            servable,
            self.backend,
            max_batch=self.max_batch,
            start_index=self._batch_counter,
        )
        self._batch_counter += len(batches)
        dispatched = self._dispatch(batches, entries_by_id, on_full=on_full)
        for entry in dispatched:
            results[entry.input_index] = self._collect(entry)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def serve(
        self,
        in_stream: Iterable[str],
        out_stream: TextIO,
        *,
        on_full: str = "reject",
    ) -> Dict[str, int]:
        """JSON-lines service loop: one request per line, one result per line.

        Requests buffer until ``max_batch`` are pending, a blank line
        arrives (an explicit flush marker), or the stream ends; each
        flush coalesces and dispatches the chunk and writes its results
        in input order.  Malformed lines produce an error result line
        immediately.  Returns counters: served / ok / failed / rejected /
        parse_errors.
        """
        stats = {"served": 0, "ok": 0, "failed": 0, "rejected": 0, "parse_errors": 0}
        buffer: List[ModExpRequest] = []

        def emit(result: ModExpResult) -> None:
            out_stream.write(result_to_json(result) + "\n")
            stats["served"] += 1
            if result.ok:
                stats["ok"] += 1
            elif result.error_type in ("QueueFull", "RequestShed"):
                # Shedding is load regulation, not failure: both count
                # as rejections the client may retry elsewhere/later.
                stats["rejected"] += 1
            else:
                stats["failed"] += 1

        def flush() -> None:
            if not buffer:
                return
            chunk, buffer[:] = list(buffer), []
            for result in self.process(chunk, on_full=on_full):
                emit(result)
            _flush_stream(out_stream)

        for line in in_stream:
            stripped = line.strip()
            if not stripped:
                flush()
                continue
            try:
                request = parse_request_line(stripped)
            except WireFormatError as exc:
                stats["parse_errors"] += 1
                if OBS.enabled:
                    OBS.count(
                        "serving.requests",
                        status="malformed",
                        backend=self.backend.name,
                    )
                emit(
                    ModExpResult.failure(
                        getattr(exc, "request_id", ""), exc, backend=self.backend.name
                    )
                )
                _flush_stream(out_stream)
                continue
            buffer.append(request)
            if len(buffer) >= self.max_batch:
                flush()
        flush()
        return stats

    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        self.pool.shutdown(wait=wait, cancel_pending=True)

    def __enter__(self) -> "ModExpService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _flush_stream(stream: TextIO) -> None:
    flush = getattr(stream, "flush", None)
    if flush is not None:
        flush()
