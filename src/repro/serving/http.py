"""Scrape endpoint: ``/metrics`` (Prometheus) and ``/healthz`` (JSON).

:class:`TelemetryServer` is a tiny stdlib-only HTTP sidecar the serving
loop can run next to itself (``repro serve --http-port``): a daemon
thread with a :class:`~http.server.ThreadingHTTPServer` exposing

* ``GET /metrics`` — the live registry rendered in Prometheus text
  exposition format (:meth:`MetricsRegistry.to_prometheus`);
* ``GET /healthz`` — ``{"status": "ok", ...}`` JSON, extended with
  whatever the owner's ``health`` callback reports (queue depth, served
  counters, ...).

Binding to port ``0`` picks a free port (exposed via :attr:`port` after
:meth:`start`), which is what the tests use.  Request logging is
silenced — a scrape every few seconds must not spam the serving loop's
stderr.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

from repro.observability.metrics import MetricsRegistry

__all__ = ["TelemetryServer"]


class _Handler(BaseHTTPRequestHandler):
    server: "ThreadingHTTPServer"

    def _send(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        owner: "TelemetryServer" = self.server.telemetry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._send(
                200,
                owner.registry.to_prometheus(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/healthz":
            self._send(
                200,
                json.dumps(owner.health_payload()) + "\n",
                "application/json",
            )
        else:
            self._send(404, "not found: try /metrics or /healthz\n", "text/plain")

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # scrapes must not spam the serving loop's stderr


class TelemetryServer:
    """Background HTTP endpoint over a live :class:`MetricsRegistry`.

    Parameters
    ----------
    registry:
        The registry ``/metrics`` renders (scraped live, not a snapshot).
    host / port:
        Bind address; ``port=0`` lets the OS pick (read :attr:`port`
        after :meth:`start`).
    health:
        Optional zero-arg callable returning extra ``/healthz`` fields.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        health: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        self.registry = registry
        self._host = host
        self._requested_port = port
        self._health = health
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (meaningful once :meth:`start` has run)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def health_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"status": "ok"}
        if self._health is not None:
            payload.update(self._health())
        return payload

    # ------------------------------------------------------------------
    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer((self._host, self._requested_port), _Handler)
        httpd.daemon_threads = True
        httpd.telemetry = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-telemetry-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
