"""Batch scheduler: coalesce by modulus, dispatch by deadline and cost.

Montgomery exponentiation pays a fixed pre-computation per modulus —
``R``, ``R² mod N`` and ``N'`` (a modular squaring plus an inversion).
A naive service repeats it for every request; the scheduler instead
groups pending requests by ``(modulus, l)`` into :class:`Batch` objects,
derives the constants **once per batch** through the shared
:func:`~repro.montgomery.params.precompute_montgomery_constants` cache,
and attaches the resulting context to the batch so workers never touch
the cache at all.

Dispatch order is interactive-first, then earliest-deadline-first, ties
broken by estimated backend cost (cheap batches first, so a long
simulation batch cannot convoy short integer batches with equal
urgency).  A batch containing any interactive-priority request outranks
every pure-batch one — under overload the dispatch queue is where
interactive latency is won or lost.

Metrics (when observation is enabled):

* ``serving.batches`` — batches formed;
* ``serving.batch_size`` — histogram of requests per batch;
* ``serving.coalesced_precomputes`` — one per distinct ``(modulus, l)``
  per coalescing round, i.e. the number of pre-computations actually
  needed (compare with ``serving.requests`` to see the savings);
* ``serving.scheduler_depth`` — pending-queue gauge;
* ``serving.requests{status=rejected}`` — bounded-queue rejections.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import QueueFull
from repro.montgomery.params import (
    MontgomeryContext,
    precompute_montgomery_constants,
)
from repro.observability import OBS
from repro.serving.backends import ModExpBackend
from repro.serving.request import ModExpRequest

__all__ = ["Batch", "coalesce", "lane_groups", "BatchScheduler"]

T = TypeVar("T")


def lane_groups(
    items: Sequence[T],
    lanes: int,
    *,
    mixed: bool = False,
    exponent_of: Callable[[T], Any] = lambda item: item.exponent,
) -> List[List[T]]:
    """Partition one batch's items into lane-packable groups.

    Bit-sliced lane packing needs a shared square-and-multiply schedule,
    so only requests with identical exponents share a group; groups are
    capped at the backend's lane width.  Backends declaring
    ``capabilities.mixed_exponent_lanes`` (the chip, which interleaves
    independent chains instead of lock-stepping lanes) group the whole
    batch regardless of exponent.  Order within a group follows batch
    order.

    Shared by the service's dispatcher (grouping in-flight ``_Entry``
    objects via ``exponent_of``) and the shard worker loop (grouping
    decoded :class:`ModExpRequest` objects directly).
    """
    by_exponent: Dict[Any, List[T]] = {}
    for item in items:
        key = None if mixed else exponent_of(item)
        by_exponent.setdefault(key, []).append(item)
    groups: List[List[T]] = []
    for members in by_exponent.values():
        for lo in range(0, len(members), lanes):
            groups.append(members[lo : lo + lanes])
    return groups


@dataclass
class Batch:
    """Requests sharing one modulus (hence one set of constants).

    ``context`` is the pre-computed parameter set every request in the
    batch reuses; ``estimated_cost`` is the backend's cost estimate
    summed over the batch (the dispatch tie-breaker).
    """

    index: int
    modulus: int
    l: int
    context: MontgomeryContext
    requests: List[ModExpRequest] = field(default_factory=list)
    estimated_cost: float = 0.0

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def deadline(self) -> float:
        """Earliest deadline in the batch (``inf`` when none set)."""
        deadlines = [r.deadline for r in self.requests if r.deadline is not None]
        return min(deadlines) if deadlines else math.inf

    @property
    def priority_rank(self) -> int:
        """0 when any request is interactive, 1 otherwise.

        The primary dispatch key: under overload the queue in front of
        the pool is exactly where interactive latency is won or lost, so
        a batch carrying interactive traffic jumps every pure-batch one
        regardless of deadlines.
        """
        return 0 if any(r.priority == "interactive" for r in self.requests) else 1


def coalesce(
    requests: Sequence[ModExpRequest],
    backend: ModExpBackend,
    *,
    max_batch: int = 0,
    start_index: int = 0,
) -> List[Batch]:
    """Group ``requests`` into per-modulus batches, dispatch-ordered.

    One Montgomery pre-computation happens here per distinct
    ``(modulus, l)`` key, regardless of how many requests share it.
    Groups larger than ``max_batch`` (when positive) are split into
    chunks, which still share the single pre-computed context.  Returned
    batches are sorted by ``(deadline, estimated_cost)`` and re-indexed
    from ``start_index``.
    """
    groups: Dict[Tuple[int, int], List[ModExpRequest]] = {}
    for request in requests:
        groups.setdefault(request.coalesce_key, []).append(request)

    batches: List[Batch] = []
    for (modulus, l), members in groups.items():
        context = precompute_montgomery_constants(modulus, l)
        if OBS.enabled:
            OBS.count("serving.coalesced_precomputes")
            # Pre-chunk group size: how much sharing each distinct
            # (modulus, l) key actually yields on this traffic mix.
            OBS.record("serving.coalesce_group_size", len(members))
        chunk = max_batch if max_batch > 0 else len(members)
        for lo in range(0, len(members), chunk):
            part = members[lo : lo + chunk]
            batches.append(
                Batch(
                    index=0,  # assigned after sorting
                    modulus=modulus,
                    l=l,
                    context=context,
                    requests=part,
                    estimated_cost=sum(backend.estimate_cost(r) for r in part),
                )
            )

    batches.sort(key=lambda b: (b.priority_rank, b.deadline, b.estimated_cost))
    for offset, batch in enumerate(batches):
        batch.index = start_index + offset
        if OBS.enabled:
            OBS.count("serving.batches")
            OBS.record("serving.batch_size", batch.size)
    return batches


class BatchScheduler:
    """Bounded staging queue that drains into coalesced batches.

    ``submit`` applies admission control: once ``max_pending`` requests
    are staged, further submissions raise
    :class:`~repro.errors.QueueFull` instead of growing the queue — the
    serving loop turns that into an explicit rejection on the wire.
    ``take_batches`` drains everything staged so far.
    """

    def __init__(
        self,
        backend: ModExpBackend,
        *,
        max_pending: int = 1024,
        max_batch: int = 64,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.backend = backend
        self.max_pending = max_pending
        self.max_batch = max_batch
        self._pending: List[ModExpRequest] = []
        self._next_index = 0

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def submit(self, request: ModExpRequest) -> None:
        """Stage one request; raise :class:`QueueFull` past the bound."""
        if len(self._pending) >= self.max_pending:
            if OBS.enabled:
                OBS.count(
                    "serving.requests", status="rejected", backend=self.backend.name
                )
            raise QueueFull(
                f"scheduler queue full ({self.max_pending} pending); retry later"
            )
        self._pending.append(request)
        if OBS.enabled:
            OBS.gauge("serving.scheduler_depth", len(self._pending))

    def take_batches(self) -> List[Batch]:
        """Drain the staged requests into dispatch-ordered batches."""
        if not self._pending:
            return []
        staged, self._pending = self._pending, []
        if OBS.enabled:
            OBS.gauge("serving.scheduler_depth", 0)
        batches = coalesce(
            staged,
            self.backend,
            max_batch=self.max_batch,
            start_index=self._next_index,
        )
        self._next_index += len(batches)
        return batches
