"""Sharded serving data plane: warm, modulus-homed worker processes.

The process-pool data plane pays for its generality twice per request:
the task function and its arguments are pickled through a
``ProcessPoolExecutor``, and whichever worker happens to pick the task
up starts with cold caches — the compiled-kernel LRU and the
``precompute_montgomery_constants()`` table are per-process, so a
request's modulus is as likely as not to land on a worker that has
never seen it.  ``benchmarks/results/serving_throughput.txt`` recorded
the verdict: four process workers ran *slower* than sequential.

This module replaces that plane with three pieces:

* :class:`ShardMap` — a consistent-hash ring that assigns every
  ``(modulus, l)`` key a **home shard**.  Same key, same shard, every
  time — so each shard's caches stay hot for its home moduli, the way
  the quad-core RSA processor in the related work gives each core its
  own key material.  Virtual nodes smooth the key distribution; dead
  shards are skipped on the ring (their key ranges reassign to the next
  alive shard) and reclaim their ranges when respawned.
* the **batch frame** wire (see :mod:`repro.serving.wire`) — one
  coalesced batch travels to its shard as one length-prefixed binary
  message over a duplex pipe, big-int operands as raw bytes; the shard
  answers with one result frame carrying every outcome plus a metrics
  snapshot for the whole batch.  No pickling, no per-request IPC.
* :class:`ShardPool` — the dispatcher.  It exposes the same surface the
  service uses on :class:`~repro.serving.pool.WorkerPool` (``depth``,
  ``abandon``, ``wait_for_capacity``, ``shutdown``, the shared
  :class:`~repro.serving.pool.SlotWindow` backpressure), plus
  :meth:`~ShardPool.submit_batch`, which reserves one slot per request,
  ships the frame, and returns one future per request resolving to the
  same ``(value, cycles, wall_us, worker, telemetry)`` payload the
  pool tasks produce — so the service's collector, verifier, retry
  ladder and SLO accounting work unchanged.

**Failure semantics.**  A shard death (chaos kill, OOM, crash) surfaces
as EOF on its pipe.  The reader thread marks the shard dead on the ring,
respawns a fresh worker (counting ``serving.worker_restarts``), marks it
alive again, and requeues every batch the dead worker held — exactly
once, with the attempt index bumped so a deterministic chaos kill does
not simply re-fire.  A batch whose requeue *also* dies fails its futures
with :class:`~repro.errors.ShardFailure`, handing the requests to the
service's inline retry ladder.  A worker sends its result frame only
after finishing the whole batch, and the pipe delivers buffered frames
before EOF, so a batch is never both answered and requeued.

**Telemetry.**  Each worker wraps every batch in a fresh local
observation session and ships the registry snapshot home in the result
frame; the parent merges it with ``shard=N`` / ``worker=shardN`` labels.
The per-shard ``montgomery.precompute`` / ``montgomery.precompute_cache_hits``
counters that fall out are the homing proof: a warm shard serves its
home moduli from cache.  The pool additionally maintains
``serving.shard_queue_depth``, ``serving.shard_busy_fraction`` and
``serving.shard_cache_hit_rate`` gauges per shard for the dashboards.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import multiprocessing
import threading
import time
from contextlib import nullcontext
from concurrent.futures import Future, InvalidStateError
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    FaultDetected,
    InjectedFault,
    ParameterError,
    QueueFull,
    ServingError,
    ShardFailure,
    WireFormatError,
)
from repro.montgomery.params import precompute_montgomery_constants
from repro.observability import OBS, MetricsRegistry, observe
from repro.robustness.chaos import ChaosConfig
from repro.serving.pool import SlotWindow
from repro.serving.request import ModExpRequest
from repro.serving.scheduler import lane_groups
from repro.serving.wire import (
    decode_batch_frame,
    decode_result_frame,
    encode_batch_frame,
    encode_result_frame,
)

__all__ = ["placement_key", "ShardMap", "ShardPool", "RemoteWorkerError"]

#: Virtual nodes per shard on the consistent-hash ring.  More vnodes
#: smooth the key distribution at the cost of ring size; 64 keeps an
#: 8-moduli workload within one request of perfectly balanced on 4 shards.
DEFAULT_VNODES = 64


def placement_key(modulus: int, l: int = 0) -> int:
    """Stable 64-bit ring position for one ``(modulus, l)`` key."""
    digest = hashlib.blake2b(
        f"{modulus}|{l}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ShardMap:
    """Consistent-hash ring mapping placement keys to shard indices.

    Each shard owns :data:`DEFAULT_VNODES` pseudo-random ring positions;
    a key belongs to the first position at or after its own (wrapping).
    :meth:`owner` walks past positions of dead shards, so marking a
    shard dead reassigns exactly its key ranges — every other key keeps
    its home — and marking it alive again returns them.
    """

    def __init__(self, shards: int, *, vnodes: int = DEFAULT_VNODES) -> None:
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        if vnodes < 1:
            raise ParameterError(f"vnodes must be >= 1, got {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        self._alive = [True] * shards
        ring: List[Tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                point = int.from_bytes(
                    hashlib.blake2b(
                        f"shard{shard}/vnode{vnode}".encode("ascii"),
                        digest_size=8,
                    ).digest(),
                    "big",
                )
                ring.append((point, shard))
        ring.sort()
        self._ring = ring
        self._points = [point for point, _ in ring]

    @property
    def alive(self) -> Tuple[bool, ...]:
        return tuple(self._alive)

    def mark_dead(self, shard: int) -> None:
        self._alive[shard] = False

    def mark_alive(self, shard: int) -> None:
        self._alive[shard] = True

    def home(self, key: int) -> int:
        """The key's home shard, ignoring liveness (stable per key)."""
        start = bisect.bisect_right(self._points, key) % len(self._ring)
        return self._ring[start][1]

    def owner(self, key: int) -> int:
        """The alive shard currently owning ``key``.

        The home shard while it lives; the next alive shard clockwise on
        the ring while it is dead.  Raises :class:`ShardFailure` when
        every shard is dead.
        """
        start = bisect.bisect_right(self._points, key) % len(self._ring)
        for offset in range(len(self._ring)):
            shard = self._ring[(start + offset) % len(self._ring)][1]
            if self._alive[shard]:
                return shard
        raise ShardFailure("every shard in the map is marked dead")

    def assignments(self, keys: Sequence[int]) -> Dict[int, int]:
        """Convenience: ``{key: owner}`` for a set of placement keys."""
        return {key: self.owner(key) for key in keys}


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _error_row(request_id: str, exc: BaseException) -> Dict[str, Any]:
    return {
        "id": request_id,
        "error_type": type(exc).__name__,
        "check": str(getattr(exc, "check", "")),
        "error": str(exc) or type(exc).__name__,
    }


def _shard_worker_main(
    conn: Any, shard_index: int, backend_name: str, chaos: Optional[ChaosConfig]
) -> None:
    """Persistent shard worker loop: decode frame → execute batch → reply.

    Runs in a forked child.  The backend is resolved by name **once** —
    its compiled-kernel caches, and the process-wide Montgomery constant
    cache, then live for the worker's whole life; that persistence is the
    entire point of homing moduli onto shards.  Each batch executes under
    a fresh local observation session whose snapshot travels back in the
    result frame (telemetry per batch, not per request).

    An empty frame is the shutdown pill.  Any unexpected error (a frame
    this worker cannot decode, a closed pipe) ends the loop; the parent
    treats worker exit as a death and requeues whatever was in flight.
    """
    from repro.serving.service import _execute_with_chaos, _worker_registry

    backend = _worker_registry().get(backend_name)
    caps = backend.capabilities
    chaos = chaos if (chaos is not None and chaos.active) else None
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):
            return
        if not data:  # shutdown pill
            return
        batch_id, attempt, want_telemetry, requests = decode_batch_frame(data)
        # Metrics capture is opt-in per batch (frame flag, set when the
        # parent runs under an observation session): the engines' hook
        # sites on the multiply/exponentiate hot path are not free, and
        # an un-instrumented serving run must not pay for a snapshot
        # nobody will read.
        registry = MetricsRegistry() if want_telemetry else None
        results: List[Dict[str, Any]] = []
        started = time.perf_counter()
        with observe(metrics=registry) if registry is not None else nullcontext():
            ctx = precompute_montgomery_constants(
                requests[0].modulus, requests[0].l
            )
            # Lane packing is suspended under chaos, exactly as in the
            # parent's dispatcher: every request needs its own fault
            # decision, which a lock-step sweep cannot honour.
            if caps.lanes > 1 and chaos is None:
                groups = lane_groups(
                    requests, caps.lanes, mixed=caps.mixed_exponent_lanes
                )
            else:
                groups = [[request] for request in requests]
            for group in groups:
                if OBS.enabled:
                    OBS.count(
                        "serving.lane_groups",
                        packed="yes" if len(group) > 1 else "no",
                    )
                    OBS.record(
                        "serving.lane_group_size", len(group), backend=backend_name
                    )
                if len(group) == 1:
                    request = group[0]
                    t0 = time.perf_counter()
                    try:
                        out = _execute_with_chaos(
                            backend, ctx, request, chaos, attempt, True
                        )
                    except BaseException as exc:
                        results.append(_error_row(request.request_id, exc))
                        continue
                    wall_us = (time.perf_counter() - t0) * 1e6
                    row: Dict[str, Any] = {
                        "id": request.request_id,
                        "value": out.value,
                        "wall_us": wall_us,
                    }
                    if out.cycles is not None:
                        row["cycles"] = out.cycles
                    results.append(row)
                else:
                    t0 = time.perf_counter()
                    try:
                        outs = backend.execute_many(ctx, list(group))
                    except BaseException as exc:
                        results.extend(
                            _error_row(r.request_id, exc) for r in group
                        )
                        continue
                    # Wall time is amortized evenly over the lane sweep.
                    wall_us = (time.perf_counter() - t0) * 1e6 / len(group)
                    for request, out in zip(group, outs):
                        row = {
                            "id": request.request_id,
                            "value": out.value,
                            "wall_us": wall_us,
                        }
                        if out.cycles is not None:
                            row["cycles"] = out.cycles
                        results.append(row)
        batch_wall_us = (time.perf_counter() - started) * 1e6
        frame = encode_result_frame(
            batch_id,
            results,
            batch_wall_us=batch_wall_us,
            telemetry=registry.snapshot() if registry is not None else None,
        )
        try:
            conn.send_bytes(frame)
        except (OSError, ValueError, BrokenPipeError):
            return


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

class RemoteWorkerError(ServingError):
    """An unrecognised exception type crossed the shard wire.

    The original class name travels in the message; known serving-layer
    types are rebuilt as themselves instead.
    """


def _rebuild_error(row: Dict[str, Any]) -> BaseException:
    """Reconstruct a worker-side failure from its wire encoding."""
    name = row.get("error_type", "RuntimeError")
    message = row.get("error", "")
    if name == "FaultDetected":
        return FaultDetected(message, check=row.get("check") or "unknown")
    known: Dict[str, Any] = {
        "QueueFull": QueueFull,
        "WireFormatError": WireFormatError,
        "ParameterError": ParameterError,
        "InjectedFault": InjectedFault,
        "ShardFailure": ShardFailure,
        "TimeoutError": TimeoutError,
    }
    cls = known.get(name)
    if cls is not None:
        return cls(message)
    return RemoteWorkerError(f"{name}: {message}")


class _PendingBatch:
    """One batch frame in flight to a shard."""

    __slots__ = ("batch_id", "requests", "futures", "by_id", "attempt", "requeued")

    def __init__(
        self,
        batch_id: int,
        requests: List[ModExpRequest],
        futures: List[Future],
        attempt: int,
    ) -> None:
        self.batch_id = batch_id
        self.requests = requests
        self.futures = futures
        self.by_id = {r.request_id: f for r, f in zip(requests, futures)}
        self.attempt = attempt
        self.requeued = attempt > 0


class _Shard:
    """Parent-side handle for one worker process + its pipe and reader."""

    __slots__ = (
        "index",
        "process",
        "conn",
        "send_lock",
        "lock",
        "pending",
        "dead",
        "reader",
        "busy_us",
        "cache_hits",
        "cache_misses",
    )

    def __init__(self, index: int, process: Any, conn: Any) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.lock = threading.Lock()
        self.pending: Dict[int, _PendingBatch] = {}
        self.dead = False
        self.reader: Optional[threading.Thread] = None
        self.busy_us = 0.0
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def label(self) -> str:
        return f"shard{self.index}"

    def depth(self) -> int:
        with self.lock:
            return sum(len(p.futures) for p in self.pending.values())


def _mp_context():
    """Fork when the platform has it (fast starts, inherited imports);
    spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class ShardPool:
    """Front-end dispatcher over N pre-forked, modulus-homed workers.

    Presents the :class:`~repro.serving.pool.WorkerPool` surface the
    service relies on (``kind``/``workers``/``depth``/``restarts``,
    ``abandon``/``wait_for_capacity``/``shutdown``) with batch-frame
    dispatch instead of per-task submission.  One slot of the shared
    :class:`SlotWindow` is reserved per *request*; a batch larger than
    the whole window is admitted when the window is empty so ``wait``
    mode can never deadlock.

    Parameters
    ----------
    shards:
        Worker process count (also exposed as ``workers``).
    backend:
        Backend *name*, resolved from the default registry inside each
        worker — backend objects never cross the process boundary.
    queue_limit:
        Bounded in-flight window in requests (default ``32 × shards``,
        sized for whole batches rather than single tasks).
    chaos:
        Fault plan forwarded to every worker at spawn time.
    vnodes:
        Ring positions per shard for the :class:`ShardMap`.
    """

    kind = "shard"

    def __init__(
        self,
        *,
        shards: int,
        backend: str,
        queue_limit: Optional[int] = None,
        chaos: Optional[ChaosConfig] = None,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        self.workers = shards
        self.backend_name = backend
        self.chaos = chaos
        self.queue_limit = queue_limit if queue_limit is not None else 32 * shards
        self._window = SlotWindow(self.queue_limit)
        self.map = ShardMap(shards, vnodes=vnodes)
        self.restarts = 0
        self._closed = False
        self._mp = _mp_context()
        self._batch_seq = itertools.count(1)
        self._started_at = time.monotonic()
        self._lifecycle = threading.Lock()  # serializes respawn/shutdown
        self._shards: List[_Shard] = [self._spawn(i) for i in range(shards)]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> _Shard:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_shard_worker_main,
            args=(child_conn, index, self.backend_name, self.chaos),
            name=f"repro-shard{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        shard = _Shard(index, process, parent_conn)
        reader = threading.Thread(
            target=self._reader, args=(shard,), name=f"shard{index}-reader", daemon=True
        )
        shard.reader = reader
        reader.start()
        return shard

    @property
    def depth(self) -> int:
        """Total in-flight request count across every shard."""
        return self._window.depth

    @property
    def shard_pids(self) -> List[int]:
        """Worker PIDs by shard index (drills kill these directly)."""
        return [shard.process.pid for shard in self._shards]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def submit_batch(self, requests: Sequence[ModExpRequest]) -> List[Future]:
        """Ship one coalesced batch to its home shard as a single frame.

        Reserves one window slot per request (raising
        :class:`~repro.errors.QueueFull` past the bound, unless the
        window is empty) and returns one future per request, in request
        order.  Each future resolves to the standard pool payload
        ``(value, cycles, wall_us, worker, telemetry)`` — telemetry is
        always ``None`` here because the batch's worker snapshot is
        merged by the reader thread, once per batch — or raises the
        reconstructed worker-side error.
        """
        if self._closed:
            raise QueueFull("shard pool is shut down")
        if not requests:
            return []
        key = (requests[0].modulus, requests[0].l)
        for request in requests:
            if request.coalesce_key != key:
                raise ParameterError(
                    "a shard batch must share one (modulus, l); got "
                    f"{request.coalesce_key} and {key}"
                )
        self._window.reserve(len(requests), elastic=True)
        try:
            return self._dispatch_batch(list(requests), attempt=0)
        except BaseException:
            self._window.cancel_reservation(len(requests))
            raise

    def _dispatch_batch(
        self, requests: List[ModExpRequest], *, attempt: int
    ) -> List[Future]:
        batch_id = next(self._batch_seq)
        wire_requests = self._uniquify_ids(requests, batch_id)
        futures: List[Future] = [Future() for _ in wire_requests]
        pending = _PendingBatch(batch_id, wire_requests, futures, attempt)
        frame = encode_batch_frame(
            batch_id, wire_requests, attempt=attempt, want_telemetry=OBS.enabled
        )
        self._send(pending, frame)
        return futures

    @staticmethod
    def _uniquify_ids(
        requests: List[ModExpRequest], batch_id: int
    ) -> List[ModExpRequest]:
        """Ensure every request id in the frame is unique and non-empty.

        Results match futures by id, so empty or duplicated client ids
        (legal on the service API) get a positional suffix on the wire.
        The service assigns unique ids whenever chaos or verification is
        active, so deterministic fault plans never see rewritten ids.
        """
        from dataclasses import replace

        seen: set = set()
        out: List[ModExpRequest] = []
        for pos, request in enumerate(requests):
            rid = request.request_id
            if not rid or rid in seen:
                rid = f"{rid}#b{batch_id}p{pos}"
                request = replace(request, request_id=rid)
            seen.add(rid)
            out.append(request)
        return out

    def _send(self, pending: _PendingBatch, frame: bytes) -> None:
        """Register ``pending`` with the key's current owner and send.

        Registration happens *before* the write: if the worker dies
        mid-send, the reader's death handler finds the batch in
        ``pending`` and requeues it.  A shard flagged dead (respawn in
        progress) is retried against the ring until an alive owner
        accepts the batch.
        """
        key = placement_key(pending.requests[0].modulus, pending.requests[0].l)
        give_up = time.monotonic() + 30.0
        while True:
            try:
                owner = self.map.owner(key)
            except ShardFailure:
                # Every shard momentarily dead (e.g. the only shard is
                # mid-respawn): wait it out rather than failing the batch.
                if self._closed or time.monotonic() > give_up:
                    raise
                time.sleep(0.01)
                continue
            shard = self._shards[owner]
            with shard.lock:
                if shard.dead:
                    time.sleep(0.005)
                    continue
                shard.pending[pending.batch_id] = pending
            break
        if OBS.enabled:
            OBS.count("serving.shard_batches", shard=str(shard.index))
            OBS.count(
                "serving.shard_requests", len(pending.requests), shard=str(shard.index)
            )
            OBS.count("serving.frame_bytes", len(frame), direction="out")
            OBS.gauge(
                "serving.shard_queue_depth", shard.depth(), shard=str(shard.index)
            )
        try:
            with shard.send_lock:
                shard.conn.send_bytes(frame)
        except (OSError, ValueError, BrokenPipeError):
            # The worker died between registration and the write; the
            # reader thread's death handler requeues this batch.
            pass

    # ------------------------------------------------------------------
    # Collection (reader threads)
    # ------------------------------------------------------------------
    def _reader(self, shard: _Shard) -> None:
        while True:
            try:
                data = shard.conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                batch_id, batch_wall_us, rows, telemetry = decode_result_frame(data)
            except WireFormatError:
                break  # corrupt worker stream: treat as a death
            with shard.lock:
                pending = shard.pending.pop(batch_id, None)
            if pending is None:
                continue  # batch abandoned wholesale (shutdown race)
            self._account_batch(shard, pending, batch_wall_us, telemetry, len(data))
            for row in rows:
                future = pending.by_id.get(row.get("id", ""))
                if future is None:
                    continue
                self._resolve(shard, future, row)
            # Any future the worker failed to answer (should not happen)
            # still must not leak its slot.
            for future in pending.futures:
                if not future.done():
                    try:
                        future.set_exception(
                            RemoteWorkerError(
                                f"shard {shard.index} returned no result for request"
                            )
                        )
                    except InvalidStateError:
                        pass
                self._window.release(future)
        self._handle_death(shard)

    def _resolve(self, shard: _Shard, future: Future, row: Dict[str, Any]) -> None:
        try:
            if "value" in row:
                future.set_result(
                    (
                        row["value"],
                        row.get("cycles"),
                        row.get("wall_us", 0.0),
                        shard.label,
                        None,
                    )
                )
            else:
                future.set_exception(_rebuild_error(row))
        except InvalidStateError:
            pass  # abandoned (deadline) while the worker was computing

    def _account_batch(
        self,
        shard: _Shard,
        pending: _PendingBatch,
        batch_wall_us: float,
        telemetry: Optional[Dict[str, Any]],
        frame_bytes: int,
    ) -> None:
        """Fold one result frame's accounting into the parent registry."""
        shard.busy_us += batch_wall_us
        if telemetry is not None:
            for row in telemetry.get("counters", ()):
                if row["name"] == "montgomery.precompute_cache_hits":
                    shard.cache_hits += row["value"]
                elif row["name"] == "montgomery.precompute":
                    shard.cache_misses += row["value"]
        if not OBS.enabled:
            return
        OBS.count("serving.frame_bytes", frame_bytes, direction="in")
        OBS.record(
            "serving.shard_batch_wall_us", batch_wall_us, shard=str(shard.index)
        )
        if OBS.metrics is not None and telemetry is not None:
            OBS.metrics.merge(
                telemetry, worker=shard.label, shard=str(shard.index)
            )
        elapsed_us = max((time.monotonic() - self._started_at) * 1e6, 1.0)
        OBS.gauge(
            "serving.shard_busy_fraction",
            min(shard.busy_us / elapsed_us, 1.0),
            shard=str(shard.index),
        )
        OBS.gauge(
            "serving.shard_queue_depth", shard.depth(), shard=str(shard.index)
        )
        lookups = shard.cache_hits + shard.cache_misses
        if lookups:
            OBS.gauge(
                "serving.shard_cache_hit_rate",
                shard.cache_hits / lookups,
                shard=str(shard.index),
            )

    # ------------------------------------------------------------------
    # Death, respawn, requeue
    # ------------------------------------------------------------------
    def _handle_death(self, shard: _Shard) -> None:
        """Reader-thread epilogue: the shard's pipe reached EOF.

        On a live pool this is a worker death: mark the shard dead (its
        key ranges reassign to ring neighbours), respawn it, mark it
        alive (the ranges return home), then requeue the dead worker's
        batches — exactly once each, with the attempt index bumped so
        deterministic chaos kills do not loop.  A batch already requeued
        once fails over to :class:`ShardFailure`.  On a closed pool the
        remaining futures just fail.
        """
        with shard.lock:
            shard.dead = True
            drained = list(shard.pending.values())
            shard.pending.clear()
        if self._closed:
            self._fail_pending(shard, drained, "shard pool shut down")
            return
        self.map.mark_dead(shard.index)
        with self._lifecycle:
            if self._closed:
                self._fail_pending(shard, drained, "shard pool shut down")
                return
            self.restarts += 1
            if OBS.enabled:
                OBS.count("serving.worker_restarts")
                OBS.count("serving.shard_deaths", shard=str(shard.index))
            try:
                shard.conn.close()
            except OSError:
                pass
            if shard.process.is_alive():
                shard.process.terminate()
            shard.process.join(timeout=5)
            self._shards[shard.index] = self._spawn(shard.index)
        self.map.mark_alive(shard.index)
        for pending in drained:
            if pending.requeued:
                self._fail_pending(
                    shard,
                    [pending],
                    f"shard {shard.index} died twice on batch {pending.batch_id}",
                )
                continue
            if OBS.enabled:
                OBS.count(
                    "serving.requeued", len(pending.requests), shard=str(shard.index)
                )
            self._requeue(pending)

    def _requeue(self, pending: _PendingBatch) -> None:
        """Resend a dead shard's batch — same futures, bumped attempt."""
        pending.attempt += 1
        pending.requeued = True
        frame = encode_batch_frame(
            pending.batch_id,
            pending.requests,
            attempt=pending.attempt,
            want_telemetry=OBS.enabled,
        )
        try:
            self._send(pending, frame)
        except BaseException as exc:  # e.g. every shard dead
            self._fail_pending(None, [pending], str(exc))

    def _fail_pending(
        self, shard: Optional[_Shard], batches: List[_PendingBatch], reason: str
    ) -> None:
        where = f"shard {shard.index}" if shard is not None else "shard pool"
        for pending in batches:
            for future in pending.futures:
                try:
                    future.set_exception(
                        ShardFailure(f"{where}: {reason}")
                    )
                except InvalidStateError:
                    pass
                self._window.release(future)

    # ------------------------------------------------------------------
    # WorkerPool surface
    # ------------------------------------------------------------------
    def abandon(self, future: Future) -> bool:
        """Give up on one request (deadline blown): free its slot now.

        The worker may still answer later; the resolver then finds the
        future cancelled/abandoned and drops the result on the floor.
        """
        future.cancel()
        if self._window.release(future):
            if OBS.enabled:
                OBS.count("serving.abandoned")
            return True
        return False

    def wait_for_capacity(
        self, timeout: Optional[float] = None, *, slots: int = 1
    ) -> bool:
        return self._window.wait(timeout, slots=slots)

    def respawn(self) -> None:
        """No-op for API parity: shards respawn themselves on death."""

    def shutdown(self, *, wait: bool = True, cancel_pending: bool = False) -> None:
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            shards = list(self._shards)
        for shard in shards:
            try:
                with shard.send_lock:
                    shard.conn.send_bytes(b"")  # shutdown pill
            except (OSError, ValueError, BrokenPipeError):
                pass
        for shard in shards:
            shard.process.join(timeout=5 if wait else 0.1)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=1)
            try:
                shard.conn.close()
            except OSError:
                pass
        for shard in shards:
            if shard.reader is not None and wait:
                shard.reader.join(timeout=5)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
