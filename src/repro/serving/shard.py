"""Sharded serving data plane: warm, modulus-homed worker processes.

The process-pool data plane pays for its generality twice per request:
the task function and its arguments are pickled through a
``ProcessPoolExecutor``, and whichever worker happens to pick the task
up starts with cold caches — the compiled-kernel LRU and the
``precompute_montgomery_constants()`` table are per-process, so a
request's modulus is as likely as not to land on a worker that has
never seen it.  ``benchmarks/results/serving_throughput.txt`` recorded
the verdict: four process workers ran *slower* than sequential.

This module replaces that plane with three pieces:

* :class:`ShardMap` — a consistent-hash ring that assigns every
  ``(modulus, l)`` key a **home shard**.  Same key, same shard, every
  time — so each shard's caches stay hot for its home moduli, the way
  the quad-core RSA processor in the related work gives each core its
  own key material.  Virtual nodes smooth the key distribution; dead
  shards are skipped on the ring (their key ranges reassign to the next
  alive shard) and reclaim their ranges when respawned.
* the **batch frame** wire (see :mod:`repro.serving.wire`) — one
  coalesced batch travels to its shard as one length-prefixed binary
  message over a duplex pipe, big-int operands as raw bytes; the shard
  answers with one result frame carrying every outcome plus a metrics
  snapshot for the whole batch.  No pickling, no per-request IPC.
* :class:`ShardPool` — the dispatcher.  It exposes the same surface the
  service uses on :class:`~repro.serving.pool.WorkerPool` (``depth``,
  ``abandon``, ``wait_for_capacity``, ``shutdown``, the shared
  :class:`~repro.serving.pool.SlotWindow` backpressure), plus
  :meth:`~ShardPool.submit_batch`, which reserves one slot per request,
  ships the frame, and returns one future per request resolving to the
  same ``(value, cycles, wall_us, worker, telemetry)`` payload the
  pool tasks produce — so the service's collector, verifier, retry
  ladder and SLO accounting work unchanged.

**Failure semantics.**  Failures are graded, not binary.  Each shard
slot carries a :class:`~repro.serving.health.ShardHealth` machine
(healthy → degraded → draining → dead): slow batches and corrupt frames
are strikes that *degrade*; a stuck worker or persistent strikes start a
*graceful drain* (ring ranges rehome, in-flight work gets a grace
period, then the worker is recycled); only pipe EOF is *death*.  A
malformed frame in either direction — the worker NACKs a batch it
cannot decode; the parent catches a result frame that fails its crc —
requeues the affected batch exactly once without killing anything,
because the pipe's message boundaries keep the stream parseable past a
damaged payload.  A shard death (chaos kill, OOM, crash) surfaces
as EOF on its pipe.  The reader thread marks the shard dead on the ring,
respawns a fresh worker (counting ``serving.worker_restarts``), marks it
alive again, and requeues every batch the dead worker held — exactly
once, with the attempt index bumped so a deterministic chaos kill does
not simply re-fire.  A batch whose requeue *also* dies fails its futures
with :class:`~repro.errors.ShardFailure`, handing the requests to the
service's inline retry ladder.  A worker sends its result frame only
after finishing the whole batch, and the pipe delivers buffered frames
before EOF, so a batch is never both answered and requeued.

**Telemetry.**  Each worker wraps every batch in a fresh local
observation session and ships the registry snapshot home in the result
frame; the parent merges it with ``shard=N`` / ``worker=shardN`` labels.
The per-shard ``montgomery.precompute`` / ``montgomery.precompute_cache_hits``
counters that fall out are the homing proof: a warm shard serves its
home moduli from cache.  The pool additionally maintains
``serving.shard_queue_depth``, ``serving.shard_busy_fraction`` and
``serving.shard_cache_hit_rate`` gauges per shard for the dashboards.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import multiprocessing
import threading
import time
from contextlib import nullcontext
from concurrent.futures import Future, InvalidStateError
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    DeadlineExceeded,
    FaultDetected,
    InjectedFault,
    ParameterError,
    QueueFull,
    ServingError,
    ShardFailure,
    WireFormatError,
)
from repro.montgomery.params import precompute_montgomery_constants
from repro.observability import OBS, MetricsRegistry, observe
from repro.robustness.chaos import ChaosConfig, FaultPlan
from repro.serving.health import HealthConfig, ShardHealth
from repro.serving.pool import SlotWindow
from repro.serving.request import ModExpRequest
from repro.serving.scheduler import lane_groups
from repro.serving.wire import (
    BATCH_FRAME,
    NACK_FRAME,
    RESULT_FRAME,
    batch_frame_cheap_mode,
    decode_batch_frame,
    decode_nack_frame,
    encode_batch_frame,
    encode_nack_frame,
    decode_result_frame,
    encode_result_frame,
)

__all__ = ["placement_key", "ShardMap", "ShardPool", "RemoteWorkerError"]

#: Virtual nodes per shard on the consistent-hash ring.  More vnodes
#: smooth the key distribution at the cost of ring size; 64 keeps an
#: 8-moduli workload within one request of perfectly balanced on 4 shards.
DEFAULT_VNODES = 64


def placement_key(modulus: int, l: int = 0) -> int:
    """Stable 64-bit ring position for one ``(modulus, l)`` key."""
    digest = hashlib.blake2b(
        f"{modulus}|{l}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ShardMap:
    """Consistent-hash ring mapping placement keys to shard indices.

    Each shard owns :data:`DEFAULT_VNODES` pseudo-random ring positions;
    a key belongs to the first position at or after its own (wrapping).
    :meth:`owner` walks past positions of dead shards, so marking a
    shard dead reassigns exactly its key ranges — every other key keeps
    its home — and marking it alive again returns them.
    """

    def __init__(self, shards: int, *, vnodes: int = DEFAULT_VNODES) -> None:
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        if vnodes < 1:
            raise ParameterError(f"vnodes must be >= 1, got {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        self._alive = [True] * shards
        ring: List[Tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                point = int.from_bytes(
                    hashlib.blake2b(
                        f"shard{shard}/vnode{vnode}".encode("ascii"),
                        digest_size=8,
                    ).digest(),
                    "big",
                )
                ring.append((point, shard))
        ring.sort()
        self._ring = ring
        self._points = [point for point, _ in ring]

    @property
    def alive(self) -> Tuple[bool, ...]:
        return tuple(self._alive)

    def mark_dead(self, shard: int) -> None:
        self._alive[shard] = False

    def mark_alive(self, shard: int) -> None:
        self._alive[shard] = True

    def home(self, key: int) -> int:
        """The key's home shard, ignoring liveness (stable per key)."""
        start = bisect.bisect_right(self._points, key) % len(self._ring)
        return self._ring[start][1]

    def owner(self, key: int) -> int:
        """The alive shard currently owning ``key``.

        The home shard while it lives; the next alive shard clockwise on
        the ring while it is dead.  Raises :class:`ShardFailure` when
        every shard is dead.
        """
        start = bisect.bisect_right(self._points, key) % len(self._ring)
        for offset in range(len(self._ring)):
            shard = self._ring[(start + offset) % len(self._ring)][1]
            if self._alive[shard]:
                return shard
        raise ShardFailure("every shard in the map is marked dead")

    def next_owner(self, key: int, avoid: int) -> Optional[int]:
        """First alive shard clockwise from ``key`` other than ``avoid``.

        The hedging target: when the key's owner is slow, the re-dispatch
        goes to the shard that would inherit the key were the owner dead —
        so a hedged request warms exactly the caches a real failover
        would use.  ``None`` when no distinct alive shard exists.
        """
        start = bisect.bisect_right(self._points, key) % len(self._ring)
        for offset in range(len(self._ring)):
            shard = self._ring[(start + offset) % len(self._ring)][1]
            if shard != avoid and self._alive[shard]:
                return shard
        return None

    def assignments(self, keys: Sequence[int]) -> Dict[int, int]:
        """Convenience: ``{key: owner}`` for a set of placement keys."""
        return {key: self.owner(key) for key in keys}


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _error_row(request_id: str, exc: BaseException) -> Dict[str, Any]:
    return {
        "id": request_id,
        "error_type": type(exc).__name__,
        "check": str(getattr(exc, "check", "")),
        "error": str(exc) or type(exc).__name__,
    }


def _shard_worker_main(
    conn: Any, shard_index: int, backend_name: str, chaos: Optional[ChaosConfig]
) -> None:
    """Persistent shard worker loop: decode frame → execute batch → reply.

    Runs in a forked child.  The backend is resolved by name **once** —
    its compiled-kernel caches, and the process-wide Montgomery constant
    cache, then live for the worker's whole life; that persistence is the
    entire point of homing moduli onto shards.  Each batch executes under
    a fresh local observation session whose snapshot travels back in the
    result frame (telemetry per batch, not per request).

    An empty frame is the shutdown pill.  A batch frame this worker
    cannot decode is **not** fatal: the pipe preserves message
    boundaries, so the stream is intact — the worker answers with a NACK
    frame naming the batch (when the header was readable) and keeps
    serving; the parent degrades the shard and requeues the batch.  Only
    a closed pipe ends the loop.
    """
    from repro.serving.service import _execute_with_chaos, _worker_registry

    registry_obj = _worker_registry()
    backend = registry_obj.get(backend_name)
    chaos = chaos if (chaos is not None and chaos.active) else None
    frame_plan = (
        FaultPlan(chaos)
        if chaos is not None and chaos.frame_faults_active
        else None
    )
    cheap_backend = None  # resolved lazily on the first cheap-mode batch
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):
            return
        if not data:  # shutdown pill
            return
        try:
            batch_id, attempt, want_telemetry, requests = decode_batch_frame(data)
        except WireFormatError as exc:
            # Recover the batch id from the fixed header when possible so
            # the parent can requeue exactly that batch.
            nack_id = (
                int.from_bytes(data[1:9], "big")
                if len(data) >= 9 and data[0] == BATCH_FRAME
                else 0
            )
            try:
                conn.send_bytes(encode_nack_frame(nack_id, str(exc)[:512]))
            except (OSError, ValueError, BrokenPipeError):
                return
            continue
        if batch_frame_cheap_mode(data):
            # Brownout lever: execute on the registry's cheapest backend
            # still capable of this batch instead of the primary.
            if cheap_backend is None:
                cheap_backend = _cheapest_capable(
                    registry_obj, requests[0], fallback=backend
                )
            exec_backend = cheap_backend
        else:
            exec_backend = backend
        caps = exec_backend.capabilities
        # Metrics capture is opt-in per batch (frame flag, set when the
        # parent runs under an observation session): the engines' hook
        # sites on the multiply/exponentiate hot path are not free, and
        # an un-instrumented serving run must not pay for a snapshot
        # nobody will read.
        registry = MetricsRegistry() if want_telemetry else None
        results: List[Dict[str, Any]] = []
        started = time.perf_counter()
        with observe(metrics=registry) if registry is not None else nullcontext():
            ctx = precompute_montgomery_constants(
                requests[0].modulus, requests[0].l
            )
            # Pre-execute deadline check: a request that expired while
            # queued or in transit gets a typed failure instead of a
            # modexp nobody is waiting for.
            live: List[ModExpRequest] = []
            for request in requests:
                if request.expired():
                    if OBS.enabled:
                        OBS.count("serving.deadline_expired", where="worker")
                    results.append(
                        _error_row(
                            request.request_id,
                            DeadlineExceeded(
                                "deadline passed before execution",
                                where="worker",
                            ),
                        )
                    )
                else:
                    live.append(request)
            requests = live
            # Lane packing is suspended under chaos, exactly as in the
            # parent's dispatcher: every request needs its own fault
            # decision, which a lock-step sweep cannot honour.
            if caps.lanes > 1 and chaos is None:
                groups = lane_groups(
                    requests, caps.lanes, mixed=caps.mixed_exponent_lanes
                )
            else:
                groups = [[request] for request in requests]
            for group in groups:
                if OBS.enabled:
                    OBS.count(
                        "serving.lane_groups",
                        packed="yes" if len(group) > 1 else "no",
                    )
                    OBS.record(
                        "serving.lane_group_size",
                        len(group),
                        backend=exec_backend.name,
                    )
                if len(group) == 1:
                    request = group[0]
                    t0 = time.perf_counter()
                    try:
                        out = _execute_with_chaos(
                            exec_backend, ctx, request, chaos, attempt, True
                        )
                    except BaseException as exc:
                        results.append(_error_row(request.request_id, exc))
                        continue
                    wall_us = (time.perf_counter() - t0) * 1e6
                    row: Dict[str, Any] = {
                        "id": request.request_id,
                        "value": out.value,
                        "wall_us": wall_us,
                    }
                    if out.cycles is not None:
                        row["cycles"] = out.cycles
                    results.append(row)
                else:
                    t0 = time.perf_counter()
                    try:
                        outs = exec_backend.execute_many(ctx, list(group))
                    except BaseException as exc:
                        results.extend(
                            _error_row(r.request_id, exc) for r in group
                        )
                        continue
                    # Wall time is amortized evenly over the lane sweep.
                    wall_us = (time.perf_counter() - t0) * 1e6 / len(group)
                    for request, out in zip(group, outs):
                        row = {
                            "id": request.request_id,
                            "value": out.value,
                            "wall_us": wall_us,
                        }
                        if out.cycles is not None:
                            row["cycles"] = out.cycles
                        results.append(row)
        batch_wall_us = (time.perf_counter() - started) * 1e6
        frame = encode_result_frame(
            batch_id,
            results,
            batch_wall_us=batch_wall_us,
            telemetry=registry.snapshot() if registry is not None else None,
        )
        if frame_plan is not None:
            decision = frame_plan.decide_frame(batch_id, attempt)
            if decision:
                frame_plan.apply_pre(decision, f"batch-{batch_id}")
                frame = frame_plan.mangle_frame(decision, frame)
        try:
            conn.send_bytes(frame)
        except (OSError, ValueError, BrokenPipeError):
            return


def _cheapest_capable(registry: Any, probe: ModExpRequest, *, fallback: Any) -> Any:
    """The registry backend with the lowest estimated cost for ``probe``.

    The brownout controller's "cheap backends" level trades fidelity for
    throughput; the worker makes the trade locally because only it knows
    which backends its registry actually holds.
    """
    best, best_cost = fallback, None
    for candidate in registry:
        if candidate.reject_reason(probe) is not None:
            continue
        cost = candidate.estimate_cost(probe)
        if best_cost is None or cost < best_cost:
            best, best_cost = candidate, cost
    return best


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

class RemoteWorkerError(ServingError):
    """An unrecognised exception type crossed the shard wire.

    The original class name travels in the message; known serving-layer
    types are rebuilt as themselves instead.
    """


def _rebuild_error(row: Dict[str, Any]) -> BaseException:
    """Reconstruct a worker-side failure from its wire encoding."""
    name = row.get("error_type", "RuntimeError")
    message = row.get("error", "")
    if name == "FaultDetected":
        return FaultDetected(message, check=row.get("check") or "unknown")
    if name == "DeadlineExceeded":
        return DeadlineExceeded(message, where="worker")
    known: Dict[str, Any] = {
        "QueueFull": QueueFull,
        "WireFormatError": WireFormatError,
        "ParameterError": ParameterError,
        "InjectedFault": InjectedFault,
        "ShardFailure": ShardFailure,
        "TimeoutError": TimeoutError,
    }
    cls = known.get(name)
    if cls is not None:
        return cls(message)
    return RemoteWorkerError(f"{name}: {message}")


class _PendingBatch:
    """One batch frame in flight to a shard."""

    __slots__ = (
        "batch_id",
        "requests",
        "futures",
        "by_id",
        "attempt",
        "requeued",
        "sent_at",
    )

    def __init__(
        self,
        batch_id: int,
        requests: List[ModExpRequest],
        futures: List[Future],
        attempt: int,
    ) -> None:
        self.batch_id = batch_id
        self.requests = requests
        self.futures = futures
        self.by_id = {r.request_id: f for r, f in zip(requests, futures)}
        self.attempt = attempt
        self.requeued = attempt > 0
        self.sent_at = time.monotonic()  # refreshed on every (re)send


class _Shard:
    """Parent-side handle for one worker process + its pipe and reader."""

    __slots__ = (
        "index",
        "process",
        "conn",
        "send_lock",
        "lock",
        "pending",
        "dead",
        "reader",
        "busy_us",
        "cache_hits",
        "cache_misses",
    )

    def __init__(self, index: int, process: Any, conn: Any) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.lock = threading.Lock()
        self.pending: Dict[int, _PendingBatch] = {}
        self.dead = False
        self.reader: Optional[threading.Thread] = None
        self.busy_us = 0.0
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def label(self) -> str:
        return f"shard{self.index}"

    def depth(self) -> int:
        with self.lock:
            return sum(len(p.futures) for p in self.pending.values())


def _mp_context():
    """Fork when the platform has it (fast starts, inherited imports);
    spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class ShardPool:
    """Front-end dispatcher over N pre-forked, modulus-homed workers.

    Presents the :class:`~repro.serving.pool.WorkerPool` surface the
    service relies on (``kind``/``workers``/``depth``/``restarts``,
    ``abandon``/``wait_for_capacity``/``shutdown``) with batch-frame
    dispatch instead of per-task submission.  One slot of the shared
    :class:`SlotWindow` is reserved per *request*; a batch larger than
    the whole window is admitted when the window is empty so ``wait``
    mode can never deadlock.

    Parameters
    ----------
    shards:
        Worker process count (also exposed as ``workers``).
    backend:
        Backend *name*, resolved from the default registry inside each
        worker — backend objects never cross the process boundary.
    queue_limit:
        Bounded in-flight window in requests (default ``32 × shards``,
        sized for whole batches rather than single tasks).
    chaos:
        Fault plan forwarded to every worker at spawn time.
    vnodes:
        Ring positions per shard for the :class:`ShardMap`.
    health:
        Thresholds for the per-shard
        :class:`~repro.serving.health.ShardHealth` machines (latency
        strikes, corrupt-frame strikes, stuck/drain timeouts).
    """

    kind = "shard"

    def __init__(
        self,
        *,
        shards: int,
        backend: str,
        queue_limit: Optional[int] = None,
        chaos: Optional[ChaosConfig] = None,
        vnodes: int = DEFAULT_VNODES,
        health: Optional[HealthConfig] = None,
    ) -> None:
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        self.workers = shards
        self.backend_name = backend
        self.chaos = chaos
        self.queue_limit = queue_limit if queue_limit is not None else 32 * shards
        self._window = SlotWindow(self.queue_limit)
        self.map = ShardMap(shards, vnodes=vnodes)
        self.restarts = 0
        self._closed = False
        self._mp = _mp_context()
        self._batch_seq = itertools.count(1)
        self._started_at = time.monotonic()
        self._lifecycle = threading.Lock()  # serializes respawn/shutdown
        self.health_config = health or HealthConfig()
        # Health machines outlive worker respawns so strike history and
        # transition counters stay per shard *slot*, not per process.
        self._health: List[ShardHealth] = [
            ShardHealth(
                i,
                self.health_config,
                on_transition=(
                    lambda came_from, to, index=i: self._on_health_transition(
                        index, came_from, to
                    )
                ),
            )
            for i in range(shards)
        ]
        self._shards: List[_Shard] = [self._spawn(i) for i in range(shards)]
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="shard-monitor", daemon=True
        )
        self._monitor_thread.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> _Shard:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_shard_worker_main,
            args=(child_conn, index, self.backend_name, self.chaos),
            name=f"repro-shard{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        shard = _Shard(index, process, parent_conn)
        reader = threading.Thread(
            target=self._reader, args=(shard,), name=f"shard{index}-reader", daemon=True
        )
        shard.reader = reader
        reader.start()
        return shard

    @property
    def depth(self) -> int:
        """Total in-flight request count across every shard."""
        return self._window.depth

    @property
    def load(self) -> float:
        """Window occupancy in ``[0, 1]`` — the brownout pressure signal."""
        return min(self._window.depth / max(self.queue_limit, 1), 1.0)

    @property
    def shard_pids(self) -> List[int]:
        """Worker PIDs by shard index (drills kill these directly)."""
        return [shard.process.pid for shard in self._shards]

    def health_states(self) -> Dict[int, str]:
        """Current health state per shard index (dashboards, drills)."""
        return {i: h.state for i, h in enumerate(self._health)}

    # ------------------------------------------------------------------
    # Health reactions
    # ------------------------------------------------------------------
    def _on_health_transition(self, index: int, came_from: str, to: str) -> None:
        """React to one shard's health edge (called from event threads).

        ``draining`` is the one edge with a routing side effect: the
        shard's ring ranges rehome immediately (stop admitting) while a
        background thread gives in-flight work its grace period and then
        recycles the worker.  ``dead``/``healthy`` routing flips are
        owned by the death/respawn path itself.
        """
        if to == "draining" and not self._closed:
            self.map.mark_dead(index)
            threading.Thread(
                target=self._drain,
                args=(index,),
                name=f"shard{index}-drain",
                daemon=True,
            ).start()

    def _drain(self, index: int) -> None:
        """Graceful drain: finish in-flight work, then recycle the worker.

        The pipe is FIFO and the worker answers strictly in order, so a
        shutdown pill sent after the last admitted batch lets a *slow*
        worker finish everything before exiting; a *wedged* worker never
        reads the pill and is terminated when the grace period lapses.
        Either way the reader thread's death handler respawns the shard,
        returns its ring ranges, and requeues whatever did not finish —
        the same exactly-once path a crash takes.
        """
        shard = self._shards[index]
        give_up = time.monotonic() + self.health_config.drain_timeout_s
        while time.monotonic() < give_up and not self._closed:
            if shard.depth() == 0:
                break
            time.sleep(0.005)
        # The worker may have crashed outright while we waited; the death
        # path already recycled it and this drain is moot.
        if self._closed or self._health[index].state != "draining":
            return
        if OBS.enabled:
            OBS.count("serving.shard_drains", shard=str(index))
        try:
            with shard.send_lock:
                shard.conn.send_bytes(b"")  # pill: exit after current work
        except (OSError, ValueError, BrokenPipeError):
            pass
        shard.process.join(timeout=max(self.health_config.drain_timeout_s, 0.1))
        if shard.process.is_alive():
            shard.process.terminate()
        # EOF now reaches the reader, whose death handler does the rest.

    def _monitor(self) -> None:
        """Stuck-worker detector: pending work older than the timeout.

        A wedged worker holds the pipe open — no EOF, no result frames —
        so it is invisible to both the reader and the latency EWMA.  The
        monitor ages each shard's oldest in-flight batch instead, and
        promotes the shard to draining when it exceeds
        ``stuck_timeout_s``.
        """
        cfg = self.health_config
        interval = max(min(cfg.stuck_timeout_s / 4.0, 0.25), 0.005)
        while not self._closed:
            time.sleep(interval)
            now = time.monotonic()
            for shard in list(self._shards):
                health = self._health[shard.index]
                if health.state not in ("healthy", "degraded"):
                    continue
                with shard.lock:
                    if shard.dead or not shard.pending:
                        continue
                    oldest = min(p.sent_at for p in shard.pending.values())
                if now - oldest > cfg.stuck_timeout_s:
                    if OBS.enabled:
                        OBS.count("serving.stuck_shards", shard=str(shard.index))
                    health.on_stuck()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def submit_batch(
        self, requests: Sequence[ModExpRequest], *, cheap_mode: bool = False
    ) -> List[Future]:
        """Ship one coalesced batch to its home shard as a single frame.

        Reserves one window slot per request (raising
        :class:`~repro.errors.QueueFull` past the bound, unless the
        window is empty) and returns one future per request, in request
        order.  Each future resolves to the standard pool payload
        ``(value, cycles, wall_us, worker, telemetry)`` — telemetry is
        always ``None`` here because the batch's worker snapshot is
        merged by the reader thread, once per batch — or raises the
        reconstructed worker-side error.
        """
        if self._closed:
            raise QueueFull("shard pool is shut down")
        if not requests:
            return []
        key = (requests[0].modulus, requests[0].l)
        for request in requests:
            if request.coalesce_key != key:
                raise ParameterError(
                    "a shard batch must share one (modulus, l); got "
                    f"{request.coalesce_key} and {key}"
                )
        self._window.reserve(len(requests), elastic=True)
        try:
            return self._dispatch_batch(
                list(requests), attempt=0, cheap_mode=cheap_mode
            )
        except BaseException:
            self._window.cancel_reservation(len(requests))
            raise

    def submit_hedge(self, request: ModExpRequest) -> Optional[Future]:
        """Re-dispatch one straggler to the ring's next alive shard.

        Hedging is strictly best-effort: no distinct alive shard, a full
        window, or a shutdown all return ``None`` rather than raising —
        the primary dispatch is still in flight and remains the source
        of truth.  The caller owns first-result-wins arbitration and
        must :meth:`abandon` the loser.
        """
        if self._closed:
            return None
        key = placement_key(request.modulus, request.l)
        try:
            owner = self.map.owner(key)
        except ShardFailure:
            return None
        target = self.map.next_owner(key, avoid=owner)
        if target is None:
            return None
        try:
            self._window.reserve(1)
        except QueueFull:
            return None  # never let a hedge steal admission capacity
        try:
            # attempt=1, same as a death-requeue: a deterministic chaos
            # fault keyed on (request, attempt) must not simply re-fire
            # on the hedge copy, or a stuck primary begets a stuck hedge.
            futures = self._dispatch_batch([request], attempt=1, target=target)
        except BaseException:
            self._window.cancel_reservation(1)
            return None
        if OBS.enabled:
            OBS.count("serving.hedges_dispatched", shard=str(target))
        return futures[0]

    def _dispatch_batch(
        self,
        requests: List[ModExpRequest],
        *,
        attempt: int,
        target: Optional[int] = None,
        cheap_mode: bool = False,
    ) -> List[Future]:
        batch_id = next(self._batch_seq)
        wire_requests = self._uniquify_ids(requests, batch_id)
        futures: List[Future] = [Future() for _ in wire_requests]
        pending = _PendingBatch(batch_id, wire_requests, futures, attempt)
        frame = encode_batch_frame(
            batch_id,
            wire_requests,
            attempt=attempt,
            want_telemetry=OBS.enabled,
            cheap_mode=cheap_mode,
        )
        self._send(pending, frame, target=target)
        return futures

    @staticmethod
    def _uniquify_ids(
        requests: List[ModExpRequest], batch_id: int
    ) -> List[ModExpRequest]:
        """Ensure every request id in the frame is unique and non-empty.

        Results match futures by id, so empty or duplicated client ids
        (legal on the service API) get a positional suffix on the wire.
        The service assigns unique ids whenever chaos or verification is
        active, so deterministic fault plans never see rewritten ids.
        """
        from dataclasses import replace

        seen: set = set()
        out: List[ModExpRequest] = []
        for pos, request in enumerate(requests):
            rid = request.request_id
            if not rid or rid in seen:
                rid = f"{rid}#b{batch_id}p{pos}"
                request = replace(request, request_id=rid)
            seen.add(rid)
            out.append(request)
        return out

    def _send(
        self,
        pending: _PendingBatch,
        frame: bytes,
        *,
        target: Optional[int] = None,
    ) -> None:
        """Register ``pending`` with the key's current owner and send.

        Registration happens *before* the write: if the worker dies
        mid-send, the reader's death handler finds the batch in
        ``pending`` and requeues it.  A shard flagged dead (respawn in
        progress) is retried against the ring until an alive owner
        accepts the batch.  ``target`` pins the batch to an explicit
        shard (hedging) instead of the ring owner.
        """
        key = placement_key(pending.requests[0].modulus, pending.requests[0].l)
        give_up = time.monotonic() + 30.0
        while True:
            if target is not None:
                owner = target
            else:
                try:
                    owner = self.map.owner(key)
                except ShardFailure:
                    # Every shard momentarily dead (e.g. the only shard is
                    # mid-respawn): wait it out rather than failing the batch.
                    if self._closed or time.monotonic() > give_up:
                        raise
                    time.sleep(0.01)
                    continue
            shard = self._shards[owner]
            with shard.lock:
                if shard.dead:
                    if self._closed or time.monotonic() > give_up:
                        raise ShardFailure(
                            f"shard {owner} stayed dead past the send grace period"
                        )
                    time.sleep(0.005)
                    continue
                shard.pending[pending.batch_id] = pending
                pending.sent_at = time.monotonic()
            break
        if OBS.enabled:
            OBS.count("serving.shard_batches", shard=str(shard.index))
            OBS.count(
                "serving.shard_requests", len(pending.requests), shard=str(shard.index)
            )
            OBS.count("serving.frame_bytes", len(frame), direction="out")
            OBS.gauge(
                "serving.shard_queue_depth", shard.depth(), shard=str(shard.index)
            )
        try:
            with shard.send_lock:
                shard.conn.send_bytes(frame)
        except (OSError, ValueError, BrokenPipeError):
            # The worker died between registration and the write; the
            # reader thread's death handler requeues this batch.
            pass

    # ------------------------------------------------------------------
    # Collection (reader threads)
    # ------------------------------------------------------------------
    def _reader(self, shard: _Shard) -> None:
        while True:
            try:
                data = shard.conn.recv_bytes()
            except (EOFError, OSError):
                break
            if data[:1] and data[0] == NACK_FRAME:
                # The worker could not decode a batch frame we sent.
                try:
                    nack_id, message = decode_nack_frame(data)
                except WireFormatError as exc:
                    self._frame_corruption(shard, None, f"undecodable nack: {exc}")
                    continue
                self._frame_corruption(
                    shard, nack_id or None, f"worker nack: {message}"
                )
                continue
            try:
                batch_id, batch_wall_us, rows, telemetry = decode_result_frame(data)
            except WireFormatError as exc:
                # A corrupt result frame is shard *degradation*, not death:
                # the pipe preserves message boundaries, so the stream
                # stays parseable.  Recover the batch id from the fixed
                # header when the corruption landed past it.
                peeked = (
                    int.from_bytes(data[1:9], "big")
                    if len(data) >= 9 and data[0] == RESULT_FRAME
                    else None
                )
                self._frame_corruption(shard, peeked, str(exc))
                continue
            self._health[shard.index].on_batch_done(batch_wall_us)
            with shard.lock:
                pending = shard.pending.pop(batch_id, None)
            if pending is None:
                continue  # batch abandoned wholesale (shutdown race)
            self._account_batch(shard, pending, batch_wall_us, telemetry, len(data))
            for row in rows:
                future = pending.by_id.get(row.get("id", ""))
                if future is None:
                    continue
                self._resolve(shard, future, row)
            # Any future the worker failed to answer (should not happen)
            # still must not leak its slot.
            for future in pending.futures:
                if not future.done():
                    try:
                        future.set_exception(
                            RemoteWorkerError(
                                f"shard {shard.index} returned no result for request"
                            )
                        )
                    except InvalidStateError:
                        pass
                self._window.release(future)
        self._handle_death(shard)

    def _frame_corruption(
        self, shard: _Shard, batch_id: Optional[int], reason: str
    ) -> None:
        """One malformed frame crossed this shard's wire (either way).

        Degrade — never kill: the worker process and its warm caches are
        fine; only one message was damaged.  When the batch is
        identifiable it is requeued exactly once (the same budget a
        death-requeue spends); a second corruption fails its futures
        over to the service's retry ladder.  An unidentifiable batch is
        left pending for the stuck monitor to recover via draining.
        """
        if OBS.enabled:
            OBS.count("serving.corrupt_frames", shard=str(shard.index))
        self._health[shard.index].on_corrupt_frame()
        if batch_id is None:
            return
        with shard.lock:
            pending = shard.pending.pop(batch_id, None)
        if pending is None:
            return
        if pending.requeued:
            self._fail_pending(
                shard,
                [pending],
                f"batch {batch_id} lost twice to frame corruption: {reason}",
            )
            return
        if OBS.enabled:
            OBS.count(
                "serving.requeued", len(pending.requests), shard=str(shard.index)
            )
        self._requeue(pending)

    def _resolve(self, shard: _Shard, future: Future, row: Dict[str, Any]) -> None:
        try:
            if "value" in row:
                future.set_result(
                    (
                        row["value"],
                        row.get("cycles"),
                        row.get("wall_us", 0.0),
                        shard.label,
                        None,
                    )
                )
            else:
                future.set_exception(_rebuild_error(row))
        except InvalidStateError:
            pass  # abandoned (deadline) while the worker was computing

    def _account_batch(
        self,
        shard: _Shard,
        pending: _PendingBatch,
        batch_wall_us: float,
        telemetry: Optional[Dict[str, Any]],
        frame_bytes: int,
    ) -> None:
        """Fold one result frame's accounting into the parent registry."""
        shard.busy_us += batch_wall_us
        if telemetry is not None:
            for row in telemetry.get("counters", ()):
                if row["name"] == "montgomery.precompute_cache_hits":
                    shard.cache_hits += row["value"]
                elif row["name"] == "montgomery.precompute":
                    shard.cache_misses += row["value"]
        if not OBS.enabled:
            return
        OBS.count("serving.frame_bytes", frame_bytes, direction="in")
        OBS.record(
            "serving.shard_batch_wall_us", batch_wall_us, shard=str(shard.index)
        )
        if OBS.metrics is not None and telemetry is not None:
            OBS.metrics.merge(
                telemetry, worker=shard.label, shard=str(shard.index)
            )
        elapsed_us = max((time.monotonic() - self._started_at) * 1e6, 1.0)
        OBS.gauge(
            "serving.shard_busy_fraction",
            min(shard.busy_us / elapsed_us, 1.0),
            shard=str(shard.index),
        )
        OBS.gauge(
            "serving.shard_queue_depth", shard.depth(), shard=str(shard.index)
        )
        lookups = shard.cache_hits + shard.cache_misses
        if lookups:
            OBS.gauge(
                "serving.shard_cache_hit_rate",
                shard.cache_hits / lookups,
                shard=str(shard.index),
            )

    # ------------------------------------------------------------------
    # Death, respawn, requeue
    # ------------------------------------------------------------------
    def _handle_death(self, shard: _Shard) -> None:
        """Reader-thread epilogue: the shard's pipe reached EOF.

        On a live pool this is a worker death: mark the shard dead (its
        key ranges reassign to ring neighbours), respawn it, mark it
        alive (the ranges return home), then requeue the dead worker's
        batches — exactly once each, with the attempt index bumped so
        deterministic chaos kills do not loop.  A batch already requeued
        once fails over to :class:`ShardFailure`.  On a closed pool the
        remaining futures just fail.
        """
        with shard.lock:
            shard.dead = True
            drained = list(shard.pending.values())
            shard.pending.clear()
        if self._closed:
            self._fail_pending(shard, drained, "shard pool shut down")
            return
        self.map.mark_dead(shard.index)
        self._health[shard.index].on_death()
        with self._lifecycle:
            if self._closed:
                self._fail_pending(shard, drained, "shard pool shut down")
                return
            self.restarts += 1
            if OBS.enabled:
                OBS.count("serving.worker_restarts")
                OBS.count("serving.shard_deaths", shard=str(shard.index))
            try:
                shard.conn.close()
            except OSError:
                pass
            if shard.process.is_alive():
                shard.process.terminate()
            shard.process.join(timeout=5)
            self._shards[shard.index] = self._spawn(shard.index)
        self._health[shard.index].on_respawn()
        self.map.mark_alive(shard.index)
        for pending in drained:
            if pending.requeued:
                self._fail_pending(
                    shard,
                    [pending],
                    f"shard {shard.index} died twice on batch {pending.batch_id}",
                )
                continue
            if OBS.enabled:
                OBS.count(
                    "serving.requeued", len(pending.requests), shard=str(shard.index)
                )
            self._requeue(pending)

    def _requeue(self, pending: _PendingBatch) -> None:
        """Resend a dead shard's batch — same futures, bumped attempt."""
        pending.attempt += 1
        pending.requeued = True
        frame = encode_batch_frame(
            pending.batch_id,
            pending.requests,
            attempt=pending.attempt,
            want_telemetry=OBS.enabled,
        )
        try:
            self._send(pending, frame)
        except BaseException as exc:  # e.g. every shard dead
            self._fail_pending(None, [pending], str(exc))

    def _fail_pending(
        self, shard: Optional[_Shard], batches: List[_PendingBatch], reason: str
    ) -> None:
        where = f"shard {shard.index}" if shard is not None else "shard pool"
        for pending in batches:
            for future in pending.futures:
                try:
                    future.set_exception(
                        ShardFailure(f"{where}: {reason}")
                    )
                except InvalidStateError:
                    pass
                self._window.release(future)

    # ------------------------------------------------------------------
    # WorkerPool surface
    # ------------------------------------------------------------------
    def abandon(self, future: Future) -> bool:
        """Give up on one request (deadline blown): free its slot now.

        The worker may still answer later; the resolver then finds the
        future cancelled/abandoned and drops the result on the floor.
        """
        future.cancel()
        if self._window.release(future):
            if OBS.enabled:
                OBS.count("serving.abandoned")
            return True
        return False

    def wait_for_capacity(
        self, timeout: Optional[float] = None, *, slots: int = 1
    ) -> bool:
        return self._window.wait(timeout, slots=slots)

    def respawn(self) -> None:
        """No-op for API parity: shards respawn themselves on death."""

    def shutdown(self, *, wait: bool = True, cancel_pending: bool = False) -> None:
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            shards = list(self._shards)
        for shard in shards:
            try:
                with shard.send_lock:
                    shard.conn.send_bytes(b"")  # shutdown pill
            except (OSError, ValueError, BrokenPipeError):
                pass
        for shard in shards:
            shard.process.join(timeout=5 if wait else 0.1)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=1)
            try:
                shard.conn.close()
            except OSError:
                pass
        for shard in shards:
            if shard.reader is not None and wait:
                shard.reader.join(timeout=5)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
