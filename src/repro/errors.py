"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.  The
subclasses partition failures by subsystem:

* :class:`ParameterError` — invalid Montgomery / RSA / ECC parameters
  (even modulus, operand out of the ``[0, 2N)`` window, bad radix, ...).
* :class:`HardwareModelError` — structural problems in a gate netlist
  (dangling wire, combinational loop, port width mismatch).
* :class:`SimulationError` — a simulation ran but violated an invariant the
  architecture guarantees (e.g. the leftmost-cell XOR saw both inputs high).
* :class:`ProtocolError` — misuse of a circuit's handshake (reading RESULT
  before DONE, starting a multiplication while one is in flight).
* :class:`ServingError` — failures of the serving layer
  (:mod:`repro.serving`): a saturated bounded queue (:class:`QueueFull`),
  a malformed JSON-lines request (:class:`WireFormatError`), a response
  that failed online verification (:class:`FaultDetected`) or a failure
  deliberately injected by the chaos layer (:class:`InjectedFault`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "HardwareModelError",
    "SimulationError",
    "ProtocolError",
    "ServingError",
    "QueueFull",
    "RequestShed",
    "DeadlineExceeded",
    "WireFormatError",
    "ShardFailure",
    "FaultDetected",
    "InjectedFault",
]


class ReproError(Exception):
    """Base class for all exceptions raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """Invalid algorithm parameters (modulus, operand range, radix, ...)."""


class HardwareModelError(ReproError):
    """A netlist or hardware model is structurally invalid."""


class SimulationError(ReproError):
    """A simulation violated an invariant guaranteed by the architecture."""


class ProtocolError(ReproError):
    """A circuit's control handshake was used incorrectly."""


class ServingError(ReproError):
    """Base class for failures raised by the :mod:`repro.serving` layer."""


class QueueFull(ServingError):
    """A bounded serving queue rejected a submission (backpressure).

    Raised instead of letting the queue grow without bound; callers
    (and the JSON-lines wire) surface the rejection to the client so it
    can retry with backoff.
    """


class RequestShed(QueueFull):
    """The overload layer refused a request to protect the ones it kept.

    A subclass of :class:`QueueFull` so every existing "rejected"
    handling path (the serving loop's ``ok: false`` /
    ``error_type: "QueueFull"`` responses, retry-with-backoff clients)
    applies unchanged.  ``reason`` says which gate fired: ``"admission"``
    (token bucket empty), ``"codel"`` (queue sojourn over target) or
    ``"brownout"`` (batch traffic suspended under sustained pressure).
    """

    def __init__(self, message: str, *, reason: str = "admission") -> None:
        super().__init__(message)
        self.reason = reason


class DeadlineExceeded(ServingError, TimeoutError):
    """A request's absolute deadline passed before it could complete.

    Raised (or returned as a failure result) wherever the deadline is
    checked — admission, dequeue, pre-execute in the worker, and the
    retry ladder.  ``where`` names the checkpoint so the
    ``serving.deadline_expired{where=}`` counter can tell a request that
    died waiting from one that died mid-retry.
    """

    def __init__(self, message: str, *, where: str = "unknown") -> None:
        super().__init__(message)
        self.where = where


class WireFormatError(ServingError, ValueError):
    """A JSON-lines request could not be parsed into a ModExpRequest."""


class ShardFailure(ServingError):
    """A sharded batch could not be completed by its worker process.

    Raised into a request's future when the shard owning its batch died
    and the exactly-once requeue was already spent (the respawned shard
    died again on the same batch), or when every shard in the map is
    marked dead.  The serving layer's retry ladder treats it like any
    other transient failure: the request re-executes inline under the
    retry policy.
    """


class FaultDetected(ServingError):
    """A backend response failed an online verification check.

    Raised by :class:`repro.robustness.verify.ResultVerifier` (and the
    MMM-level Walter-bound invariant checks) when a returned value is
    inconsistent with ``base^exponent mod N``.  ``check`` names the
    specific check that fired (``"range"``, ``"residue"``,
    ``"walter-bound"``, ...), so the ``serving.faults_detected`` counter
    can be labelled by detection mechanism.

    ``bundle_path``, when set by the serving layer, points at the
    flight-recorder post-mortem bundle captured for the faulting
    execution (see :mod:`repro.observability.flightrec`) — the
    signal-level evidence that goes with this detection.
    """

    def __init__(
        self, message: str, *, check: str = "unknown", bundle_path: str | None = None
    ) -> None:
        super().__init__(message)
        self.check = check
        self.bundle_path = bundle_path


class InjectedFault(ServingError):
    """A failure deliberately injected by the chaos middleware.

    Distinct from real backend failures so tests and dashboards can tell
    "the chaos plan fired" from "something actually broke".
    """
