"""Experiment harness: table rendering, the experiment registry,
parameter sweeps and the side-channel trace analysis."""

from repro.analysis.tables import render_table
from repro.analysis.experiments import EXPERIMENTS, Experiment, get_experiment
from repro.analysis.sweep import sweep
from repro.analysis.sidechannel import (
    subtraction_trace,
    timing_histogram,
    leakage_summary,
)

__all__ = [
    "render_table",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "sweep",
    "subtraction_trace",
    "timing_histogram",
    "leakage_summary",
]
