"""Simulation-engine throughput measurement (PR 4's perf claim).

One measurement core shared by ``repro bench-sim`` and
``benchmarks/bench_compiled_sim.py``: time the gate-level MMMC through
the interpreted simulator, the compiled single-lane kernel, and the
compiled K-lane bit-sliced sweep, all on identical netlists and seeded
operands, and report per-multiplication latency, MMM/s and gate-evals/s
for each engine.

Every timed engine first runs one untimed warmup multiplication (the
compiled path additionally reports its one-off netlist-build + codegen
cost separately), then the best of ``repeat`` runs is kept — these are
microbenchmarks of a deterministic simulator, so min is the right
estimator.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["SimBenchResult", "measure_engines", "result_rows"]


@dataclass
class SimBenchResult:
    """Engine comparison at one operand width."""

    l: int
    gates: int
    dffs: int
    cycles_per_mult: int
    lanes: int
    repeat: int
    #: per-multiplication wall milliseconds, keyed by engine name
    #: ("interpreted", "compiled", "compiled+lanes" = amortized per lane)
    ms_per_mult: Dict[str, float] = field(default_factory=dict)
    #: one-off cost of building + compiling the netlist twin, seconds
    compile_s: Optional[float] = None
    #: wall milliseconds of one whole K-lane batch
    lane_batch_ms: Optional[float] = None
    #: the same K-lane batch with the flight recorder armed, milliseconds
    flightrec_batch_ms: Optional[float] = None
    #: relative capture cost of the armed recorder on the lane batch, %
    flightrec_overhead_pct: Optional[float] = None

    def speedup(self, engine: str) -> Optional[float]:
        """Throughput multiple of ``engine`` over the interpreted baseline."""
        base = self.ms_per_mult.get("interpreted")
        other = self.ms_per_mult.get(engine)
        if not base or not other:
            return None
        return base / other

    def gate_evals_per_s(self, engine: str) -> Optional[float]:
        """Gate evaluations per second (lanes count as parallel evals)."""
        ms = self.ms_per_mult.get(engine)
        if not ms:
            return None
        return self.gates * self.cycles_per_mult / (ms / 1e3)

    def mmm_per_s(self, engine: str) -> Optional[float]:
        ms = self.ms_per_mult.get(engine)
        return None if not ms else 1e3 / ms

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "SimBenchResult":
        """Rebuild a result from :meth:`as_json` output (derived fields —
        speedups, rates — are recomputed, not trusted)."""
        return cls(
            l=int(data["l"]),
            gates=int(data["gates"]),
            dffs=int(data["dffs"]),
            cycles_per_mult=int(data["cycles_per_mult"]),
            lanes=int(data["lanes"]),
            repeat=int(data["repeat"]),
            ms_per_mult={k: float(v) for k, v in data["ms_per_mult"].items()},
            compile_s=data.get("compile_s"),
            lane_batch_ms=data.get("lane_batch_ms"),
            flightrec_batch_ms=data.get("flightrec_batch_ms"),
            flightrec_overhead_pct=data.get("flightrec_overhead_pct"),
        )

    def as_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "l": self.l,
            "gates": self.gates,
            "dffs": self.dffs,
            "cycles_per_mult": self.cycles_per_mult,
            "lanes": self.lanes,
            "repeat": self.repeat,
            "compile_s": self.compile_s,
            "lane_batch_ms": self.lane_batch_ms,
            "flightrec_batch_ms": self.flightrec_batch_ms,
            "flightrec_overhead_pct": self.flightrec_overhead_pct,
            "ms_per_mult": dict(self.ms_per_mult),
            "speedups": {
                name: self.speedup(name)
                for name in self.ms_per_mult
                if name != "interpreted" and self.speedup(name) is not None
            },
            "gate_evals_per_s": {
                name: self.gate_evals_per_s(name) for name in self.ms_per_mult
            },
        }
        return out


def _operands(l: int, count: int, seed: object):
    from repro.utils.rng import random_odd_modulus

    rng = random.Random(seed)
    n = random_odd_modulus(l, rng)
    return n, [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


def _best_of(repeat: int, fn) -> float:
    best = float("inf")
    for _ in range(max(repeat, 1)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_engines(
    l: int,
    *,
    lanes: int = 64,
    repeat: int = 3,
    engines: Sequence[str] = ("interpreted", "compiled"),
    seed: object = "simbench",
    flightrec: bool = False,
) -> SimBenchResult:
    """Compare simulator engines on the full MMMC netlist at width ``l``.

    ``engines`` picks the scalar engines to time; the ``lanes``-wide
    bit-sliced sweep is additionally timed whenever ``"compiled"`` is
    selected and ``lanes > 1``.  Identical seeded operands drive every
    engine, and the results are cross-checked against each other and the
    cycle formula as they are produced.

    ``flightrec=True`` re-times the lane batch with an armed (but never
    triggered) flight-recorder hub — the black box samples every probe
    every cycle — and reports the capture cost as
    ``flightrec_overhead_pct`` relative to the disarmed batch.
    """
    from repro.systolic.mmmc_netlist import GateLevelMMMC

    n, ops = _operands(l, max(lanes, 2), seed)
    x0, y0 = ops[0]

    result = SimBenchResult(
        l=l, gates=0, dffs=0, cycles_per_mult=0, lanes=lanes, repeat=repeat
    )
    values: Dict[str, int] = {}

    for engine in engines:
        t0 = time.perf_counter()
        sim = GateLevelMMMC(l, simulator=engine)
        build_s = time.perf_counter() - t0
        circuit = sim.ports.circuit
        result.gates = len(circuit.gates)
        result.dffs = len(circuit.dffs)
        if engine == "compiled":
            result.compile_s = build_s
        rec = sim.multiply(x0, y0, n)  # warmup (and the correctness probe)
        values[engine] = rec.result
        result.cycles_per_mult = rec.cycles
        result.ms_per_mult[engine] = (
            _best_of(repeat, lambda: sim.multiply(x0, y0, n)) * 1e3
        )

    if "compiled" in engines and lanes > 1:
        vec = GateLevelMMMC(l, simulator="compiled", lanes=lanes)
        xs = [x for x, _ in ops[:lanes]]
        ys = [y for _, y in ops[:lanes]]
        ns = [n] * lanes
        runs = vec.multiply_lanes(xs, ys, ns)  # warmup + correctness probe
        scalar = values.get("compiled")
        if scalar is not None and runs[0].result != scalar:
            raise AssertionError(
                f"lane 0 disagrees with scalar compiled run at l={l}"
            )
        batch_s = _best_of(repeat, lambda: vec.multiply_lanes(xs, ys, ns))
        result.lane_batch_ms = batch_s * 1e3
        result.ms_per_mult["compiled+lanes"] = batch_s * 1e3 / lanes

        if flightrec:
            from repro.observability.flightrec import FlightRecorderHub, armed

            # No dump dir and no triggers: the recorder runs its hot path
            # (one capture + ring append per cycle) but never freezes, so
            # this isolates the per-cycle sampling cost.
            # ring_stride=4 mirrors the serving black-box config
            # (ChaosConfig.flightrec_stride): decimated pre-trigger
            # ring, dense post-trigger window.
            hub = FlightRecorderHub(
                dump_dir=None, fire_on_fault=True, ring_stride=4
            )
            with armed(hub):
                vec.multiply_lanes(xs, ys, ns)  # warmup with taps live
                armed_s = _best_of(
                    repeat, lambda: vec.multiply_lanes(xs, ys, ns)
                )
            result.flightrec_batch_ms = armed_s * 1e3
            result.flightrec_overhead_pct = (
                (armed_s - batch_s) / batch_s * 100.0
            )

    if len(values) > 1 and len(set(values.values())) != 1:
        raise AssertionError(f"engines disagree at l={l}: {values}")
    return result


def result_rows(result: SimBenchResult) -> List[List[object]]:
    """Table rows (engine, ms/MMM, MMM/s, gate-evals/s, speedup)."""
    rows: List[List[object]] = []
    for engine in ("interpreted", "compiled", "compiled+lanes"):
        if engine not in result.ms_per_mult:
            continue
        speedup = result.speedup(engine)
        rows.append(
            [
                engine if engine != "compiled+lanes"
                else f"compiled, {result.lanes} lanes",
                round(result.ms_per_mult[engine], 4),
                round(result.mmm_per_s(engine), 1),
                f"{result.gate_evals_per_s(engine):.3g}",
                "-" if speedup is None else f"{speedup:.1f}x",
            ]
        )
    return rows
