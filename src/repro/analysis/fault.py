"""Single-bit fault injection into the cycle-accurate array.

Two purposes:

1. **Dependability study** — transient upsets (SEUs) are the classic FPGA
   concern; this harness measures which fraction of single-bit register
   flips corrupt a Montgomery product, per register class and cycle.
2. **Microarchitecture validation** — the RTL model's correctness rests
   on the *shadow-lattice* argument: every register alternates between a
   productive value and a harmless interleaved one.  If the argument is
   right, flipping a register during its shadow phase must NEVER change
   the result, while flipping a live value that is still to be consumed
   almost always must.  :func:`fault_campaign` measures exactly that, and
   the tests pin the prediction down.

Injection model: after the clock edge of the chosen cycle, one register
bit is inverted; the multiplication then runs to completion and the
result is compared against the fault-free value.

Three engines share the same :class:`FaultSite` addressing:

* ``"rtl"`` — the vectorized behavioral model (:class:`SystolicArrayRTL`),
  registers flipped directly in its Python state;
* ``"gate"`` — the full Fig. 3 netlist through the interpreted
  simulator (:class:`~repro.systolic.mmmc_netlist.GateLevelMMMC`),
  flipping real DFF outputs via :meth:`GateLevelMMMC.schedule_fault`;
* ``"compiled"`` — the same netlist through the codegen'd bit-sliced
  engine, proving the closure-cell register state is as injectable as
  the interpreted value array.

The gate engines count cycles from the first post-load clock edge, so a
site's ``cycle`` lands in the MMMC's ``3l+4`` (corrected) datapath
window rather than the bare array's; corruption statistics per register
class remain directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import random

from repro.errors import ParameterError, SimulationError
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext
from repro.systolic.array import SystolicArrayRTL
from repro.systolic.mmmc_netlist import GateLevelMMMC

__all__ = [
    "FaultSite",
    "FaultOutcome",
    "inject_fault",
    "fault_campaign",
    "campaign_summary",
    "REGISTER_CLASSES",
    "FAULT_ENGINES",
]

#: Register classes addressable by the injector.
REGISTER_CLASSES = ("t", "c0", "c1", "x_pipe", "m_pipe", "result", "x_shift")

#: Simulation engines a campaign can target.
FAULT_ENGINES = ("rtl", "gate", "compiled")


@dataclass(frozen=True)
class FaultSite:
    """One injection point: flip ``register[index]`` after ``cycle``'s edge."""

    cycle: int
    register: str
    index: int


@dataclass(frozen=True)
class FaultOutcome:
    """Result of injecting one fault into one multiplication."""

    site: FaultSite
    corrupted: bool
    detected: bool  # the leftmost-cell invariant check fired
    fault_free: int
    observed: Optional[int]


def _flip(arr: SystolicArrayRTL, site: FaultSite) -> None:
    reg = site.register
    if reg == "t":
        arr.t_reg[site.index] ^= 1
    elif reg == "c0":
        arr.c0_reg[site.index] ^= 1
    elif reg == "c1":
        arr.c1_reg[site.index] ^= 1
    elif reg == "x_pipe":
        arr.x_pipe[site.index] ^= 1
    elif reg == "m_pipe":
        arr.m_pipe[site.index] ^= 1
    elif reg == "result":
        arr.result_reg[site.index] ^= 1
    elif reg == "x_shift":
        arr.x_shift ^= 1 << site.index
    else:
        raise ParameterError(
            f"unknown register {reg!r}; choose from {REGISTER_CLASSES}"
        )


def _register_width(arr: SystolicArrayRTL, reg: str) -> int:
    widths = {
        "t": len(arr.t_reg),
        "c0": len(arr.c0_reg),
        "c1": len(arr.c1_reg),
        "x_pipe": len(arr.x_pipe),
        "m_pipe": len(arr.m_pipe),
        "result": len(arr.result_reg),
        "x_shift": arr.l + 1,
    }
    if reg not in widths:
        raise ParameterError(
            f"unknown register {reg!r}; choose from {REGISTER_CLASSES}"
        )
    return widths[reg]


def _mmmc_cycle_window(l: int, mode: str) -> int:
    """Cycles from first post-load edge to DONE in the gate-level MMMC."""
    return 3 * l + 5 if mode == "corrected" else 3 * l + 4


def _inject_fault_mmmc(
    mmmc: GateLevelMMMC, x: int, y: int, n: int, site: FaultSite, fault_free: int
) -> FaultOutcome:
    """Inject one fault through a (reused) gate-level MMMC instance."""
    widths = {reg: len(ws) for reg, ws in mmmc.fault_sites().items()}
    if site.register not in widths:
        raise ParameterError(
            f"unknown register {site.register!r}; choose from {REGISTER_CLASSES}"
        )
    window = _mmmc_cycle_window(mmmc.l, mmmc.mode)
    if not 0 <= site.cycle < window:
        raise ParameterError(
            f"cycle {site.cycle} outside MMMC datapath [0, {window})"
        )
    if not 0 <= site.index < widths[site.register]:
        raise ParameterError(f"index {site.index} out of range for {site.register}")
    mmmc._validate(x, y, n)  # surface operand errors before the try below
    detected = False
    observed: Optional[int] = None
    mmmc.schedule_fault(site)
    try:
        observed = mmmc.multiply(x, y, n).result
    except SimulationError:
        detected = True  # the top-cell overflow tap fired
    except ParameterError:
        detected = True  # DONE never rose — fail-stop, not silent
        mmmc.sim.reset()
    return FaultOutcome(
        site=site,
        corrupted=(observed != fault_free),
        detected=detected,
        fault_free=fault_free,
        observed=observed,
    )


def inject_fault(
    l: int,
    x: int,
    y: int,
    n: int,
    site: FaultSite,
    *,
    mode: str = "corrected",
    engine: str = "rtl",
    _mmmc: Optional[GateLevelMMMC] = None,
) -> FaultOutcome:
    """Run one multiplication with one injected bit flip.

    ``engine`` picks the simulation substrate (see :data:`FAULT_ENGINES`).
    ``_mmmc`` lets :func:`fault_campaign` reuse one elaborated netlist
    across hundreds of injections instead of re-elaborating per site.
    """
    if engine not in FAULT_ENGINES:
        raise ParameterError(f"engine must be one of {FAULT_ENGINES}, got {engine!r}")
    ctx = MontgomeryContext(n)
    fault_free = montgomery_no_subtraction(ctx, x, y)
    if engine != "rtl":
        mmmc = _mmmc
        if mmmc is None:
            mmmc = GateLevelMMMC(
                l, mode=mode, simulator="interpreted" if engine == "gate" else "compiled"
            )
        return _inject_fault_mmmc(mmmc, x, y, n, site, fault_free)
    arr = SystolicArrayRTL(l, mode=mode)
    arr.load(x, y, n)
    if not 0 <= site.cycle < arr.datapath_cycles:
        raise ParameterError(
            f"cycle {site.cycle} outside datapath [0, {arr.datapath_cycles})"
        )
    if not 0 <= site.index < _register_width(arr, site.register):
        raise ParameterError(f"index {site.index} out of range for {site.register}")
    detected = False
    observed: Optional[int] = None
    try:
        for tau in range(arr.datapath_cycles):
            arr.step()
            if tau == site.cycle:
                _flip(arr, site)
        observed = arr.result_value()
    except SimulationError:
        detected = True
    return FaultOutcome(
        site=site,
        corrupted=(observed != fault_free),
        detected=detected,
        fault_free=fault_free,
        observed=observed,
    )


def fault_campaign(
    l: int,
    x: int,
    y: int,
    n: int,
    *,
    sites: Optional[Iterable[FaultSite]] = None,
    samples: int = 200,
    seed: int = 0,
    registers: Tuple[str, ...] = ("t", "c0", "c1", "x_pipe", "m_pipe"),
    mode: str = "corrected",
    engine: str = "rtl",
) -> List[FaultOutcome]:
    """Inject many faults into the same multiplication.

    With ``sites=None``, samples ``samples`` random (cycle, register,
    index) sites from ``registers`` uniformly.  ``engine`` selects the
    simulation substrate (:data:`FAULT_ENGINES`); gate-level engines
    elaborate the netlist once and reuse it for every injection.
    """
    if engine not in FAULT_ENGINES:
        raise ParameterError(f"engine must be one of {FAULT_ENGINES}, got {engine!r}")
    mmmc: Optional[GateLevelMMMC] = None
    if engine != "rtl":
        mmmc = GateLevelMMMC(
            l, mode=mode, simulator="interpreted" if engine == "gate" else "compiled"
        )
    if sites is None:
        rng = random.Random(seed)
        if mmmc is not None:
            widths = {reg: len(ws) for reg, ws in mmmc.fault_sites().items()}
            cycle_window = _mmmc_cycle_window(l, mode)
            width_of = widths.__getitem__
        else:
            probe = SystolicArrayRTL(l, mode=mode)
            cycle_window = probe.datapath_cycles

            def width_of(reg: str) -> int:
                return _register_width(probe, reg)

        gen: List[FaultSite] = []
        for _ in range(samples):
            reg = rng.choice(registers)
            gen.append(
                FaultSite(
                    cycle=rng.randrange(cycle_window),
                    register=reg,
                    index=rng.randrange(width_of(reg)),
                )
            )
        sites = gen
    return [
        inject_fault(l, x, y, n, s, mode=mode, engine=engine, _mmmc=mmmc)
        for s in sites
    ]


def campaign_summary(outcomes: List[FaultOutcome]) -> Dict[str, Dict[str, float]]:
    """Per-register-class corruption statistics."""
    if not outcomes:
        raise ParameterError("no outcomes to summarize")
    by_reg: Dict[str, List[FaultOutcome]] = {}
    for o in outcomes:
        by_reg.setdefault(o.site.register, []).append(o)
    summary: Dict[str, Dict[str, float]] = {}
    for reg, outs in sorted(by_reg.items()):
        summary[reg] = {
            "injections": float(len(outs)),
            "corruption_rate": sum(o.corrupted for o in outs) / len(outs),
            "detection_rate": sum(o.detected for o in outs) / len(outs),
        }
    total = [o for o in outcomes]
    summary["ALL"] = {
        "injections": float(len(total)),
        "corruption_rate": sum(o.corrupted for o in total) / len(total),
        "detection_rate": sum(o.detected for o in total) / len(total),
    }
    return summary
