"""Single-bit fault injection into the cycle-accurate array.

Two purposes:

1. **Dependability study** — transient upsets (SEUs) are the classic FPGA
   concern; this harness measures which fraction of single-bit register
   flips corrupt a Montgomery product, per register class and cycle.
2. **Microarchitecture validation** — the RTL model's correctness rests
   on the *shadow-lattice* argument: every register alternates between a
   productive value and a harmless interleaved one.  If the argument is
   right, flipping a register during its shadow phase must NEVER change
   the result, while flipping a live value that is still to be consumed
   almost always must.  :func:`fault_campaign` measures exactly that, and
   the tests pin the prediction down.

Injection model: after the clock edge of the chosen cycle, one register
bit is inverted; the multiplication then runs to completion and the
result is compared against the fault-free value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import random

from repro.errors import ParameterError, SimulationError
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext
from repro.systolic.array import SystolicArrayRTL

__all__ = [
    "FaultSite",
    "FaultOutcome",
    "inject_fault",
    "fault_campaign",
    "campaign_summary",
    "REGISTER_CLASSES",
]

#: Register classes addressable by the injector.
REGISTER_CLASSES = ("t", "c0", "c1", "x_pipe", "m_pipe", "result", "x_shift")


@dataclass(frozen=True)
class FaultSite:
    """One injection point: flip ``register[index]`` after ``cycle``'s edge."""

    cycle: int
    register: str
    index: int


@dataclass(frozen=True)
class FaultOutcome:
    """Result of injecting one fault into one multiplication."""

    site: FaultSite
    corrupted: bool
    detected: bool  # the leftmost-cell invariant check fired
    fault_free: int
    observed: Optional[int]


def _flip(arr: SystolicArrayRTL, site: FaultSite) -> None:
    reg = site.register
    if reg == "t":
        arr.t_reg[site.index] ^= 1
    elif reg == "c0":
        arr.c0_reg[site.index] ^= 1
    elif reg == "c1":
        arr.c1_reg[site.index] ^= 1
    elif reg == "x_pipe":
        arr.x_pipe[site.index] ^= 1
    elif reg == "m_pipe":
        arr.m_pipe[site.index] ^= 1
    elif reg == "result":
        arr.result_reg[site.index] ^= 1
    elif reg == "x_shift":
        arr.x_shift ^= 1 << site.index
    else:
        raise ParameterError(
            f"unknown register {reg!r}; choose from {REGISTER_CLASSES}"
        )


def _register_width(arr: SystolicArrayRTL, reg: str) -> int:
    widths = {
        "t": len(arr.t_reg),
        "c0": len(arr.c0_reg),
        "c1": len(arr.c1_reg),
        "x_pipe": len(arr.x_pipe),
        "m_pipe": len(arr.m_pipe),
        "result": len(arr.result_reg),
        "x_shift": arr.l + 1,
    }
    if reg not in widths:
        raise ParameterError(
            f"unknown register {reg!r}; choose from {REGISTER_CLASSES}"
        )
    return widths[reg]


def inject_fault(
    l: int, x: int, y: int, n: int, site: FaultSite, *, mode: str = "corrected"
) -> FaultOutcome:
    """Run one multiplication with one injected bit flip."""
    ctx = MontgomeryContext(n)
    fault_free = montgomery_no_subtraction(ctx, x, y)
    arr = SystolicArrayRTL(l, mode=mode)
    arr.load(x, y, n)
    if not 0 <= site.cycle < arr.datapath_cycles:
        raise ParameterError(
            f"cycle {site.cycle} outside datapath [0, {arr.datapath_cycles})"
        )
    if not 0 <= site.index < _register_width(arr, site.register):
        raise ParameterError(f"index {site.index} out of range for {site.register}")
    detected = False
    observed: Optional[int] = None
    try:
        for tau in range(arr.datapath_cycles):
            arr.step()
            if tau == site.cycle:
                _flip(arr, site)
        observed = arr.result_value()
    except SimulationError:
        detected = True
    return FaultOutcome(
        site=site,
        corrupted=(observed != fault_free),
        detected=detected,
        fault_free=fault_free,
        observed=observed,
    )


def fault_campaign(
    l: int,
    x: int,
    y: int,
    n: int,
    *,
    sites: Optional[Iterable[FaultSite]] = None,
    samples: int = 200,
    seed: int = 0,
    registers: Tuple[str, ...] = ("t", "c0", "c1", "x_pipe", "m_pipe"),
    mode: str = "corrected",
) -> List[FaultOutcome]:
    """Inject many faults into the same multiplication.

    With ``sites=None``, samples ``samples`` random (cycle, register,
    index) sites from ``registers`` uniformly.
    """
    if sites is None:
        rng = random.Random(seed)
        probe = SystolicArrayRTL(l, mode=mode)
        gen: List[FaultSite] = []
        for _ in range(samples):
            reg = rng.choice(registers)
            gen.append(
                FaultSite(
                    cycle=rng.randrange(probe.datapath_cycles),
                    register=reg,
                    index=rng.randrange(_register_width(probe, reg)),
                )
            )
        sites = gen
    return [inject_fault(l, x, y, n, s, mode=mode) for s in sites]


def campaign_summary(outcomes: List[FaultOutcome]) -> Dict[str, Dict[str, float]]:
    """Per-register-class corruption statistics."""
    if not outcomes:
        raise ParameterError("no outcomes to summarize")
    by_reg: Dict[str, List[FaultOutcome]] = {}
    for o in outcomes:
        by_reg.setdefault(o.site.register, []).append(o)
    summary: Dict[str, Dict[str, float]] = {}
    for reg, outs in sorted(by_reg.items()):
        summary[reg] = {
            "injections": float(len(outs)),
            "corruption_rate": sum(o.corrupted for o in outs) / len(outs),
            "detection_rate": sum(o.detected for o in outs) / len(outs),
        }
    total = [o for o in outcomes]
    summary["ALL"] = {
        "injections": float(len(total)),
        "corruption_rate": sum(o.corrupted for o in total) / len(total),
        "detection_rate": sum(o.detected for o in total) / len(total),
    }
    return summary
