"""Side-channel trace analysis: the value of removing the subtraction.

Section 5 claims the no-subtraction design "omits completely all reduction
steps that are presumed to be vulnerable to side-channel attacks."  This
module makes that claim measurable:

* :func:`subtraction_trace` runs an exponentiation through **Algorithm 1**
  (classical Montgomery, conditional final subtraction) and records, per
  multiplication, whether the subtraction fired — the data-dependent event
  a timing/SPA attacker observes.
* :func:`timing_histogram` turns per-operation costs into a latency
  histogram: Algorithm 1 produces two timing classes, Algorithm 2 exactly
  one (every multiplication is ``3l+4`` cycles).
* :func:`leakage_summary` quantifies the difference: the fraction of
  operations leaking, and the exponent-correlation of Algorithm 1's
  subtraction pattern versus the (empty) variation of Algorithm 2.

The benchmark ``bench_sidechannel`` reproduces the qualitative claim:
Algorithm 1's per-operation latency varies with secret-dependent data;
Algorithm 2's trace is perfectly flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ParameterError
from repro.montgomery.params import MontgomeryContext
from repro.systolic.timing import mmm_cycles

__all__ = [
    "SubtractionTrace",
    "subtraction_trace",
    "timing_histogram",
    "leakage_summary",
]


@dataclass
class SubtractionTrace:
    """Record of one Algorithm-1 exponentiation's conditional subtractions."""

    modulus: int
    exponent: int
    #: one flag per Montgomery multiplication, True = subtraction fired.
    subtractions: List[bool]
    result: int

    @property
    def leak_count(self) -> int:
        return sum(self.subtractions)

    @property
    def leak_fraction(self) -> float:
        return self.leak_count / len(self.subtractions) if self.subtractions else 0.0


def _mont_with_flag(ctx: MontgomeryContext, x: int, y: int) -> Tuple[int, bool]:
    """Classical radix-2 Montgomery (R = 2^l) with the subtraction flag."""
    n = ctx.modulus
    t = 0
    y0 = y & 1
    for i in range(ctx.l):
        x_i = (x >> i) & 1
        m_i = (t ^ (x_i & y0)) & 1
        t = (t + x_i * y + m_i * n) >> 1
    subtracted = t >= n
    if subtracted:
        t -= n
    return t, subtracted


def subtraction_trace(
    modulus: int, message: int, exponent: int
) -> SubtractionTrace:
    """Exponentiation via Algorithm 1, recording every subtraction event.

    Classical Montgomery with ``R1 = 2^l`` and operands kept in ``[0, N)``
    by the conditional subtraction — the design point the paper replaces.
    """
    ctx = MontgomeryContext(modulus)
    if not 0 <= message < modulus:
        raise ParameterError("message must be in [0, N)")
    if exponent <= 0:
        raise ParameterError("exponent must be >= 1")
    r1_sq = pow(1 << ctx.l, 2, modulus)
    flags: List[bool] = []

    def mont(x: int, y: int) -> int:
        v, f = _mont_with_flag(ctx, x, y)
        flags.append(f)
        return v

    a = m_bar = mont(message, r1_sq)
    for i in reversed(range(exponent.bit_length() - 1)):
        a = mont(a, a)
        if (exponent >> i) & 1:
            a = mont(a, m_bar)
    result = mont(a, 1)
    return SubtractionTrace(
        modulus=modulus, exponent=exponent, subtractions=flags, result=result
    )


def timing_histogram(
    trace: SubtractionTrace, *, subtraction_penalty: int = None
) -> Dict[int, int]:
    """Per-multiplication latency histogram for an Algorithm-1 trace.

    Each multiplication costs the base ``3l+4`` cycles plus, when its
    subtraction fired, a full-width subtraction pass (default penalty:
    one cycle per word on a 32-bit datapath, at least 1).  Algorithm 2's
    histogram is by construction a single bar at ``3l+4``.
    """
    l = trace.modulus.bit_length()
    base = mmm_cycles(l)
    penalty = (
        subtraction_penalty
        if subtraction_penalty is not None
        else max(-(-l // 32), 1)
    )
    hist: Dict[int, int] = {}
    for fired in trace.subtractions:
        cost = base + (penalty if fired else 0)
        hist[cost] = hist.get(cost, 0) + 1
    return hist


def leakage_summary(traces: List[SubtractionTrace]) -> Dict[str, float]:
    """Aggregate leak statistics over many traces.

    Returns the mean leak fraction, the variance of per-trace leak counts
    (nonzero variance = distinguishable traces = exploitable), and the
    number of distinct timing classes.
    """
    if not traces:
        raise ParameterError("need at least one trace")
    fractions = [t.leak_fraction for t in traces]
    counts = [t.leak_count for t in traces]
    mean_frac = sum(fractions) / len(fractions)
    mean_count = sum(counts) / len(counts)
    var_count = sum((c - mean_count) ** 2 for c in counts) / len(counts)
    classes = set()
    for t in traces:
        classes.update(timing_histogram(t).keys())
    return {
        "mean_leak_fraction": mean_frac,
        "leak_count_variance": var_count,
        "timing_classes": float(len(classes)),
    }
