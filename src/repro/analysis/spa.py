"""Simple-power-analysis (SPA) attack simulation on the exponentiators.

Even with the paper's constant-time multiplier, plain square-and-multiply
leaks the exponent through the *operation sequence*: an SPA observer who
can distinguish squarings from multiplications (different operand-bus
activity) reads the 1-bits directly — a multiply event follows the square
of every set bit.  The Montgomery powering ladder executes the same
two-operation rhythm for every bit and leaks only the bit length.

:func:`recover_exponent_sqm` implements the attacker against a
square/multiply trace; :func:`spa_resistance_report` runs both
exponentiation styles and scores the attacker's recovery rate — 100% vs
0 recovered bits — the quantitative form of the paper's Section 5
side-channel discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ParameterError
from repro.montgomery.exponent import (
    montgomery_modexp,
    montgomery_powering_ladder,
)
from repro.montgomery.params import MontgomeryContext

__all__ = ["recover_exponent_sqm", "SPAOutcome", "spa_resistance_report"]


def recover_exponent_sqm(op_kinds: List[str]) -> int:
    """Reconstruct the exponent from a square/multiply operation trace.

    The attacker model: each loop operation is classified as ``square`` or
    ``multiply`` (pre/post excluded).  Left-to-right square-and-multiply
    emits, for each exponent bit below the leading 1: ``square`` then,
    iff the bit is 1, ``multiply``.  Recovery is therefore a linear scan.
    """
    loop = [k for k in op_kinds if k in ("square", "multiply")]
    bits = [1]  # the implicit leading bit
    i = 0
    while i < len(loop):
        if loop[i] != "square":
            raise ParameterError("malformed trace: expected a square")
        if i + 1 < len(loop) and loop[i + 1] == "multiply":
            bits.append(1)
            i += 2
        else:
            bits.append(0)
            i += 1
    acc = 0
    for b in bits:
        acc = (acc << 1) | b
    return acc


@dataclass(frozen=True)
class SPAOutcome:
    """Result of one simulated SPA attack."""

    style: str
    recovered: Optional[int]
    exact: bool
    leaked_bits: int  # how many exponent bits the trace determines


def spa_resistance_report(
    modulus: int, message: int, exponent: int
) -> Dict[str, SPAOutcome]:
    """Attack both exponentiation styles; return per-style outcomes.

    * ``square-multiply``: full exponent recovery expected;
    * ``ladder``: the trace determines only the bit length.
    """
    ctx = MontgomeryContext(modulus)
    _, sqm_trace = montgomery_modexp(ctx, message, exponent)
    sqm_kinds = [op.kind for op in sqm_trace.operations]
    recovered = recover_exponent_sqm(sqm_kinds)
    sqm = SPAOutcome(
        style="square-multiply",
        recovered=recovered,
        exact=(recovered == exponent),
        leaked_bits=exponent.bit_length(),
    )

    _, lad_trace = montgomery_powering_ladder(ctx, message, exponent)
    lad_kinds = [op.kind for op in lad_trace.operations]
    # The ladder trace is ("ladder-mul", "ladder-sq") x bitlen: identical
    # for every exponent of that length, so the attacker determines the
    # bit length and nothing else (leaked_bits counts *value* bits).
    loop = [k for k in lad_kinds if k.startswith("ladder")]
    assert loop[::2] == ["ladder-mul"] * (len(loop) // 2)
    ladder = SPAOutcome(style="ladder", recovered=None, exact=False, leaked_bits=0)
    return {"square-multiply": sqm, "ladder": ladder}
