"""Fixed-width table rendering for paper-style output.

The benchmarks print their regenerated tables through
:func:`render_table` so every harness produces uniform, diff-friendly
text that EXPERIMENTS.md can quote directly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

__all__ = ["render_table"]

Cell = Union[str, int, float, None]


def _format(value: Cell, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    *,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render a fixed-width ASCII table.

    Column widths are computed from the content; numbers are right-
    aligned, text left-aligned.  Example output::

         l |    Tp
        ---+------
        32 | 9.256
    """
    cols = len(headers)
    text_rows: List[List[str]] = [
        [_format(row[i] if i < len(row) else None, precision) for i in range(cols)]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in text_rows), default=0))
        for i in range(cols)
    ]
    numeric = [
        all(_is_numeric(row[i] if i < len(row) else None) for row in rows)
        for i in range(cols)
    ]

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return " | ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_line(r) for r in text_rows)
    return "\n".join(lines)


def _is_numeric(v: Cell) -> bool:
    return v is None or (isinstance(v, (int, float)) and not isinstance(v, bool))
