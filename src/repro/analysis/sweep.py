"""Parameter-sweep driver.

A tiny declarative helper the benchmarks share: run a callable across a
parameter grid, collect per-point records, and hand back rows ready for
:func:`repro.analysis.tables.render_table`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Sequence

__all__ = ["SweepPoint", "sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the parameters and the measurement dict."""

    params: Dict[str, Any]
    result: Dict[str, Any]

    def row(self, columns: Sequence[str]) -> List[Any]:
        """Project onto ordered columns (params first, then results)."""
        merged = {**self.params, **self.result}
        return [merged.get(c) for c in columns]


def sweep(
    fn: Callable[..., Dict[str, Any]],
    grid: Dict[str, Iterable[Any]],
) -> List[SweepPoint]:
    """Run ``fn(**point)`` over the cartesian product of ``grid``.

    ``fn`` must return a dict of measurements.  Points run in
    deterministic (sorted-key, given-order) sequence so benchmark output
    is stable.
    """
    keys = list(grid)
    points: List[SweepPoint] = []

    def rec(i: int, current: Dict[str, Any]) -> None:
        if i == len(keys):
            points.append(SweepPoint(params=dict(current), result=fn(**current)))
            return
        for v in grid[keys[i]]:
            current[keys[i]] = v
            rec(i + 1, current)
            del current[keys[i]]

    rec(0, {})
    return points
