"""The experiment registry: every paper artifact, addressable by id.

Each :class:`Experiment` names one table/figure/claim of the paper, the
modules that implement it, and the benchmark that regenerates it.  The
registry is the machine-readable counterpart of DESIGN.md's experiment
index; ``examples/fpga_report.py`` iterates it to print the full
reproduction, and the tests assert the registry stays consistent with the
benchmark tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ParameterError

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact of the paper."""

    id: str
    paper_artifact: str
    description: str
    modules: Tuple[str, ...]
    benchmark: str


EXPERIMENTS: Dict[str, Experiment] = {
    e.id: e
    for e in (
        Experiment(
            id="table1",
            paper_artifact="Table 1",
            description=(
                "Clock period and average modular-exponentiation time for "
                "l in {32, 128, 256, 512, 1024} on the Virtex-E model"
            ),
            modules=(
                "repro.systolic.exponentiator",
                "repro.systolic.timing",
                "repro.fpga.report",
            ),
            benchmark="benchmarks/bench_table1_exponentiation.py",
        ),
        Experiment(
            id="table2",
            paper_artifact="Table 2",
            description=(
                "Slices, clock period, time-area product and T_MMM for "
                "l in {32..1024}: techmapped MMMC netlist + timing model"
            ),
            modules=(
                "repro.systolic.mmmc_netlist",
                "repro.fpga.techmap",
                "repro.fpga.timing_model",
                "repro.fpga.report",
            ),
            benchmark="benchmarks/bench_table2_mmm.py",
        ),
        Experiment(
            id="fig1",
            paper_artifact="Figure 1",
            description=(
                "Gate inventory of the four systolic cell types, measured "
                "on the elaborated cell netlists vs the paper's schematic"
            ),
            modules=("repro.systolic.cell_netlists", "repro.hdl.census"),
            benchmark="benchmarks/bench_fig1_cell_census.py",
        ),
        Experiment(
            id="fig2",
            paper_artifact="Figure 2 / Section 4.3 area formula",
            description=(
                "Complete-array census vs (5l-3) XOR + (7l-7) AND + "
                "(4l-5) OR + 4l FF, and the 2i+j schedule occupancy"
            ),
            modules=("repro.systolic.array_netlist", "repro.systolic.schedule"),
            benchmark="benchmarks/bench_fig2_array_census.py",
        ),
        Experiment(
            id="fig34",
            paper_artifact="Figures 3-4",
            description=(
                "MMMC controller state sequence (IDLE/MUL1/MUL2/OUT) and "
                "the measured 3l+4-cycle multiplication latency"
            ),
            modules=(
                "repro.systolic.controller",
                "repro.systolic.mmmc",
                "repro.systolic.mmmc_netlist",
            ),
            benchmark="benchmarks/bench_fig34_mmmc_timing.py",
        ),
        Experiment(
            id="eq10",
            paper_artifact="Equation 10",
            description=(
                "Measured exponentiation cycle counts against the bounds "
                "3l^2+10l+12 <= T <= 6l^2+14l+12"
            ),
            modules=("repro.systolic.exponentiator", "repro.systolic.timing"),
            benchmark="benchmarks/bench_eq10_bounds.py",
        ),
        Experiment(
            id="ablation-bound",
            paper_artifact="Section 2 comparison vs Blum-Paar [3]",
            description=(
                "R = 2^(l+2) (l+2 iterations) vs R = 2^(l+3) (l+3) and the "
                "window-stability probe showing why R >= 4N is needed"
            ),
            modules=("repro.montgomery.bounds", "repro.baselines.blum_paar"),
            benchmark="benchmarks/bench_ablation_bound.py",
        ),
        Experiment(
            id="ablation-radix",
            paper_artifact="Section 2 high-radix discussion",
            description=(
                "Radix-2 vs radix-2^a: ceil((l+2)/a) iterations against "
                "the cell-latency penalty; SOS/CIOS/FIOS software forms"
            ),
            modules=("repro.montgomery.radix", "repro.baselines.highradix"),
            benchmark="benchmarks/bench_ablation_radix.py",
        ),
        Experiment(
            id="sidechannel",
            paper_artifact="Section 5 side-channel claim",
            description=(
                "Algorithm 1's data-dependent final subtraction vs "
                "Algorithm 2's constant-time trace"
            ),
            modules=("repro.analysis.sidechannel",),
            benchmark="benchmarks/bench_sidechannel.py",
        ),
        Experiment(
            id="overflow-finding",
            paper_artifact="Fig. 1(d)/Eq. (9) (reproduction finding)",
            description=(
                "The printed leftmost cell drops a reachable carry for "
                "N > (2/3)*2^l; frequency measurement and the corrected "
                "architecture's cost (+1 cell, +1 cycle)"
            ),
            modules=("repro.systolic.array",),
            benchmark="benchmarks/bench_overflow_finding.py",
        ),
        Experiment(
            id="ext-window",
            paper_artifact="extension: exponent recoding",
            description=(
                "m-ary and sliding-window exponentiation vs the paper's "
                "binary square-and-multiply: multiplier passes per window"
            ),
            modules=("repro.montgomery.windowed",),
            benchmark="benchmarks/bench_ablation_window.py",
        ),
        Experiment(
            id="ext-overlap",
            paper_artifact="extension: pipelined issue (explains 5l+10)",
            description=(
                "Overlapped back-to-back multiplications: stream_x issue "
                "at 2l+3, independent at 2(l+2)+1 (the paper's own "
                "pre-computation constant), saving ~11% per exponentiation"
            ),
            modules=("repro.systolic.pipeline",),
            benchmark="benchmarks/bench_ablation_overlap.py",
        ),
        Experiment(
            id="ext-dualfield",
            paper_artifact="extension: dual-field GF(p)/GF(2^m) [24]",
            description=(
                "GF(2^m) Montgomery multiplication (carry-free Algorithm "
                "2) and the near-zero marginal cost of a dual-field cell"
            ),
            modules=("repro.montgomery.gf2",),
            benchmark="benchmarks/bench_dualfield.py",
        ),
        Experiment(
            id="ext-scalable",
            paper_artifact="extension: Tenca-Koç scalable unit [26]",
            description=(
                "Latency-vs-area Pareto: the paper's full bit-parallel "
                "array against word-serial scalable configurations"
            ),
            modules=("repro.baselines.scalable",),
            benchmark="benchmarks/bench_scalable.py",
        ),
        Experiment(
            id="ext-fault",
            paper_artifact="extension: SEU fault injection",
            description=(
                "Single-bit upset corruption rates per register class and "
                "the shadow-lattice validation of the RTL microarchitecture"
            ),
            modules=("repro.analysis.fault",),
            benchmark="benchmarks/bench_fault_injection.py",
        ),
        Experiment(
            id="ecc-outlook",
            paper_artifact="Section 5 ECC outlook",
            description=(
                "Point-multiplication latency from field-multiplication "
                "counts x (3l+4) cycles, for the ladders in repro.ecc"
            ),
            modules=("repro.ecc.scalarmul", "repro.systolic.timing"),
            benchmark="benchmarks/bench_ecc_pointmul.py",
        ),
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one experiment by id; raises with the known ids on miss."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ParameterError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
