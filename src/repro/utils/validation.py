"""Argument-validation helpers shared across the library.

These raise :class:`repro.errors.ParameterError` with messages that name the
offending argument, so every public entry point reports misuse uniformly.
"""

from __future__ import annotations

from repro.errors import ParameterError

__all__ = [
    "ensure_int",
    "ensure_nonnegative",
    "ensure_positive",
    "ensure_odd",
    "ensure_in_range",
]


def ensure_int(name: str, value) -> int:
    """Return ``value`` if it is an ``int`` (bool excluded), else raise."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ParameterError(f"{name} must be an int, got {type(value).__name__}")
    return value


def ensure_nonnegative(name: str, value) -> int:
    """Return ``value`` if it is an int >= 0, else raise."""
    ensure_int(name, value)
    if value < 0:
        raise ParameterError(f"{name} must be >= 0, got {value}")
    return value


def ensure_positive(name: str, value) -> int:
    """Return ``value`` if it is an int > 0, else raise."""
    ensure_int(name, value)
    if value <= 0:
        raise ParameterError(f"{name} must be > 0, got {value}")
    return value


def ensure_odd(name: str, value) -> int:
    """Return ``value`` if it is a positive odd int, else raise."""
    ensure_positive(name, value)
    if value % 2 == 0:
        raise ParameterError(f"{name} must be odd, got {value}")
    return value


def ensure_in_range(name: str, value, low: int, high: int) -> int:
    """Return ``value`` if ``low <= value < high``, else raise.

    The half-open convention matches the operand windows in the paper
    (``x, y ∈ [0, 2N)`` for Algorithm 2).
    """
    ensure_int(name, value)
    if not (low <= value < high):
        raise ParameterError(f"{name} must be in [{low}, {high}), got {value}")
    return value
