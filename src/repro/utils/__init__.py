"""Shared low-level helpers: bit manipulation, validation, seeded RNG."""

from repro.utils.bits import (
    bit_length_words,
    bits_to_int,
    int_to_bits,
    iter_bits_lsb_first,
    hamming_weight,
)
from repro.utils.validation import (
    ensure_int,
    ensure_nonnegative,
    ensure_odd,
    ensure_positive,
    ensure_in_range,
)

__all__ = [
    "bit_length_words",
    "bits_to_int",
    "int_to_bits",
    "iter_bits_lsb_first",
    "hamming_weight",
    "ensure_int",
    "ensure_nonnegative",
    "ensure_odd",
    "ensure_positive",
    "ensure_in_range",
]
