"""Bit-vector helpers used throughout the library.

The hardware models operate on little-endian bit vectors (index 0 is the
least-significant bit), matching the paper's digit indexing
``N = (n_{l-1} ... n_1 n_0)_2``.  The algorithm-level code operates on Python
integers.  These helpers convert between the two representations and provide
the small bit-twiddling utilities the schedulers and exponentiators need.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "int_to_bits",
    "bits_to_int",
    "int_to_bit_array",
    "bit_array_to_int",
    "iter_bits_lsb_first",
    "iter_bits_msb_first",
    "hamming_weight",
    "bit_length_words",
]


def int_to_bits(value: int, width: int) -> List[int]:
    """Return ``value`` as a little-endian list of ``width`` bits.

    Raises :class:`ParameterError` if ``value`` is negative or does not fit
    in ``width`` bits — hardware registers cannot silently truncate.

    >>> int_to_bits(6, 4)
    [0, 1, 1, 0]
    """
    if width < 0:
        raise ParameterError(f"width must be non-negative, got {width}")
    if value < 0:
        raise ParameterError(f"cannot encode negative value {value}")
    if value >> width:
        raise ParameterError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits` (little-endian bit sequence -> int).

    >>> bits_to_int([0, 1, 1, 0])
    6
    """
    acc = 0
    for i, b in enumerate(bits):
        if b not in (0, 1):
            raise ParameterError(f"bit {i} is {b!r}, expected 0 or 1")
        acc |= b << i
    return acc


def int_to_bit_array(value: int, width: int, dtype=np.uint8) -> np.ndarray:
    """Return ``value`` as a little-endian NumPy bit array of length ``width``.

    This is the vectorized-simulation counterpart of :func:`int_to_bits`.
    """
    return np.asarray(int_to_bits(value, width), dtype=dtype)


def bit_array_to_int(bits: np.ndarray) -> int:
    """Inverse of :func:`int_to_bit_array`.

    Accepts any integer array of 0/1 values; uses Python big integers so the
    result is exact at arbitrary width.
    """
    return bits_to_int([int(b) for b in np.asarray(bits).ravel()])


def iter_bits_lsb_first(value: int) -> Iterator[int]:
    """Yield the bits of ``value`` from least to most significant.

    Yields nothing for ``value == 0`` (a zero-bit number).
    """
    if value < 0:
        raise ParameterError(f"cannot iterate bits of negative value {value}")
    while value:
        yield value & 1
        value >>= 1


def iter_bits_msb_first(value: int) -> Iterator[int]:
    """Yield the bits of ``value`` from most to least significant."""
    if value < 0:
        raise ParameterError(f"cannot iterate bits of negative value {value}")
    for i in reversed(range(value.bit_length())):
        yield (value >> i) & 1


def hamming_weight(value: int) -> int:
    """Number of one-bits of a non-negative integer."""
    if value < 0:
        raise ParameterError(f"hamming_weight of negative value {value}")
    return bin(value).count("1")


def bit_length_words(bits: int, word_bits: int) -> int:
    """Number of ``word_bits``-wide digits needed to hold a ``bits``-bit value.

    This is the ceiling division the paper writes as ``d(n+2)/αe`` for the
    high-radix iteration count.
    """
    if word_bits <= 0:
        raise ParameterError(f"word_bits must be positive, got {word_bits}")
    if bits < 0:
        raise ParameterError(f"bits must be non-negative, got {bits}")
    return -(-bits // word_bits)
