"""Seeded operand generators for tests, examples and benchmarks.

Everything here is deterministic given a seed, so benchmark rows and test
failures are reproducible.  The generators produce the operand classes the
paper's algorithms care about: odd moduli of an exact bit length and
residues inside the ``[0, 2N)`` window of Algorithm 2.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.errors import ParameterError
from repro.utils.validation import ensure_positive

__all__ = [
    "random_odd_modulus",
    "random_residue",
    "random_operand_pair",
    "operand_batch",
]


def random_odd_modulus(bits: int, rng: random.Random) -> int:
    """Return a uniformly random odd integer with exactly ``bits`` bits.

    ``bits >= 2`` is required: a 1-bit odd modulus would be N = 1, for which
    modular arithmetic degenerates.
    """
    ensure_positive("bits", bits)
    if bits < 2:
        raise ParameterError(f"modulus must have at least 2 bits, got {bits}")
    n = rng.getrandbits(bits - 2) if bits > 2 else 0
    return (1 << (bits - 1)) | (n << 1) | 1


def random_residue(modulus: int, rng: random.Random, *, doubled: bool = False) -> int:
    """Return a random residue in ``[0, N)`` or, with ``doubled``, ``[0, 2N)``.

    The doubled window is the input domain of Algorithm 2 (no final
    subtraction), where intermediate values legitimately exceed N.
    """
    ensure_positive("modulus", modulus)
    upper = 2 * modulus if doubled else modulus
    return rng.randrange(upper)


def random_operand_pair(
    bits: int, rng: random.Random, *, doubled: bool = False
) -> Tuple[int, int, int]:
    """Return ``(N, x, y)`` with N an odd ``bits``-bit modulus and x, y residues."""
    n = random_odd_modulus(bits, rng)
    return n, random_residue(n, rng, doubled=doubled), random_residue(n, rng, doubled=doubled)


def operand_batch(
    bits: int, count: int, seed: int = 0, *, doubled: bool = False
) -> List[Tuple[int, int, int]]:
    """Return ``count`` deterministic ``(N, x, y)`` triples for bit length ``bits``."""
    ensure_positive("count", count)
    rng = random.Random(seed)
    return [random_operand_pair(bits, rng, doubled=doubled) for _ in range(count)]
