"""Netlist optimization passes.

Light, synthesis-style cleanups applied before census/technology mapping:

* **constant propagation** — gates with constant inputs fold
  (``AND(x, 0) → 0``, ``XOR(x, 1) → NOT x``, ...);
* **buffer sweeping** — BUF chains collapse into wire aliases;
* **double-inversion removal** — ``NOT(NOT x) → x``;
* **duplicate-gate sharing (CSE)** — structurally identical gates merge;
* **dead-gate elimination** — logic driving nothing visible disappears.

The passes rewrite into a **new** circuit (the original is never
mutated) and return a wire map so callers can re-locate their signals.
Correctness is enforced the same way as the technology mapper's: random
co-simulation of optimized vs original on all visible wires
(`tests/hdl/test_optimize.py`), plus idempotence and census checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import HardwareModelError
from repro.hdl.gates import GateKind
from repro.hdl.netlist import Circuit

__all__ = ["OptimizedCircuit", "optimize"]

# Constant-folding rules: (kind, which input is constant, value) ->
# "const0" | "const1" | "pass" (other input) | "invert" (other input).
_FOLD: Dict[Tuple[GateKind, int], str] = {
    (GateKind.AND, 0): "const0",
    (GateKind.AND, 1): "pass",
    (GateKind.OR, 0): "pass",
    (GateKind.OR, 1): "const1",
    (GateKind.XOR, 0): "pass",
    (GateKind.XOR, 1): "invert",
    (GateKind.NAND, 0): "const1",
    (GateKind.NAND, 1): "invert",
    (GateKind.NOR, 0): "invert",
    (GateKind.NOR, 1): "const0",
    (GateKind.XNOR, 0): "invert",
    (GateKind.XNOR, 1): "pass",
}

# Same-input rules: kind -> "pass" | "const0" | "const1".
_SAME = {
    GateKind.AND: "pass",
    GateKind.OR: "pass",
    GateKind.XOR: "const0",
    GateKind.XNOR: "const1",
    GateKind.NAND: "invert",
    GateKind.NOR: "invert",
}


@dataclass
class OptimizedCircuit:
    """Result of :func:`optimize`: the new circuit plus bookkeeping."""

    circuit: Circuit
    #: old wire index -> new wire index (only for wires that survive).
    wire_map: Dict[int, int]
    gates_removed: int
    gates_shared: int

    def map_wire(self, old_index: int) -> int:
        try:
            return self.wire_map[old_index]
        except KeyError:
            raise HardwareModelError(
                f"wire {old_index} was optimized away"
            ) from None


def optimize(circuit: Circuit) -> OptimizedCircuit:
    """Apply all passes; returns a fresh, functionally equal circuit."""
    circuit.validate()
    new = Circuit(circuit.name + "_opt")
    # old wire -> new Wire handle.
    wmap: Dict[int, "object"] = {
        circuit.const0.index: new.const0,
        circuit.const1.index: new.const1,
    }
    for name, idx in circuit.inputs.items():
        if idx in wmap:
            continue
        wmap[idx] = new.add_input(circuit.wire_names[idx])

    # FF outputs must exist before gate rewriting (feedback); create the
    # new DFFs on placeholder D wires, patch at the end.

    placeholders = []
    for f in circuit.dffs:
        d_ph = new.new_wire(f"{circuit.wire_names[f.q]}.d")
        q = new.dff(
            d_ph,
            name=circuit.wire_names[f.q].removesuffix(".q"),
            reset_value=f.reset_value,
        )
        placeholders.append((f, d_ph))
        wmap[f.q] = q

    # Gate rewriting in topological order with folding + CSE.
    order = _topo(circuit)
    cse: Dict[Tuple, "object"] = {}
    shared = 0
    inverter_of: Dict[int, "object"] = {}  # new-wire index -> NOT output

    def invert(w) -> "object":
        if w.index in inverter_of:
            return inverter_of[w.index]
        out = new.not_(w, name=f"opt.n{w.index}")
        inverter_of[w.index] = out
        return out

    for gi in order:
        g = circuit.gates[gi]
        ins = [wmap[w] for w in g.inputs]
        kind = g.kind
        result = None
        if kind is GateKind.BUF:
            result = ins[0]
        elif kind is GateKind.NOT:
            if ins[0] is new.const0:
                result = new.const1
            elif ins[0] is new.const1:
                result = new.const0
            else:
                # double inversion: NOT(NOT x) = x
                src = _producer_kind(new, ins[0])
                if src is not None and src[0] is GateKind.NOT:
                    result = src[1]
                else:
                    result = invert(ins[0])
        else:
            a, b = ins
            const_in = None
            if a is new.const0 or a is new.const1:
                const_in = (1 if a is new.const1 else 0, b)
            elif b is new.const0 or b is new.const1:
                const_in = (1 if b is new.const1 else 0, a)
            if const_in is not None:
                action = _FOLD[(kind, const_in[0])]
                other = const_in[1]
                if action == "const0":
                    result = new.const0
                elif action == "const1":
                    result = new.const1
                elif action == "pass":
                    result = other
                else:
                    result = invert(other)
            elif a.index == b.index:
                action = _SAME[kind]
                if action == "pass":
                    result = a
                elif action == "const0":
                    result = new.const0
                elif action == "const1":
                    result = new.const1
                else:
                    result = invert(a)
            else:
                key = (kind, *sorted((a.index, b.index)))
                if key in cse:
                    result = cse[key]
                    shared += 1
                else:
                    result = new._gate(kind, (a, b), circuit.wire_names[g.output])
                    cse[key] = result
                    if kind is GateKind.NOT:
                        pass
        wmap[g.output] = result

    # Patch FF D inputs and attach enables/clears.  Repointing the frozen
    # DFF's d field (instead of driving the placeholder through a BUF)
    # keeps the output BUF-free.
    for pos, (f, d_ph) in enumerate(placeholders):
        ff = new.dffs[pos]
        object.__setattr__(ff, "d", wmap[f.d].index)
        en = wmap[f.enable].index if f.enable is not None else None
        clr = wmap[f.clear].index if f.clear is not None else None
        object.__setattr__(ff, "enable", en)
        object.__setattr__(ff, "clear", clr)

    for name, idx in circuit.outputs.items():
        new.outputs[name] = wmap[idx].index

    # Dead-gate elimination: rebuild keeping only gates reachable from
    # visible wires.
    pruned, final_map = _prune(new)
    composed = {
        old: final_map[w.index]
        for old, w in wmap.items()
        if w.index in final_map
    }
    return OptimizedCircuit(
        circuit=pruned,
        wire_map=composed,
        gates_removed=len(circuit.gates) - len(pruned.gates),
        gates_shared=shared,
    )


def _producer_kind(c: Circuit, wire) -> Optional[Tuple[GateKind, "object"]]:
    """(kind, first input handle) of the gate driving ``wire``, if any."""
    for g in c.gates:
        if g.output == wire.index:
            from repro.hdl.netlist import Wire

            return g.kind, Wire(c, g.inputs[0])
    return None


def _topo(circuit: Circuit):
    from collections import deque

    producer = {g.output: i for i, g in enumerate(circuit.gates)}
    indeg = [0] * len(circuit.gates)
    deps = [[] for _ in circuit.gates]
    for i, g in enumerate(circuit.gates):
        for w in g.inputs:
            if w in producer:
                indeg[i] += 1
                deps[producer[w]].append(i)
    q = deque(i for i, d in enumerate(indeg) if d == 0)
    order = []
    while q:
        i = q.popleft()
        order.append(i)
        for d in deps[i]:
            indeg[d] -= 1
            if indeg[d] == 0:
                q.append(d)
    return order


def _prune(c: Circuit) -> Tuple[Circuit, Dict[int, int]]:
    """Copy ``c`` keeping only logic reachable from visible wires."""
    producer = {g.output: i for i, g in enumerate(c.gates)}
    keep_gates = set()
    stack = []
    for f in c.dffs:
        stack.append(f.d)
        if f.enable is not None:
            stack.append(f.enable)
        if f.clear is not None:
            stack.append(f.clear)
    stack.extend(c.outputs.values())
    seen = set()
    while stack:
        w = stack.pop()
        if w in seen:
            continue
        seen.add(w)
        gi = producer.get(w)
        if gi is not None:
            keep_gates.add(gi)
            stack.extend(c.gates[gi].inputs)

    out = Circuit(c.name)
    wmap: Dict[int, int] = {
        c.const0.index: out.const0.index,
        c.const1.index: out.const1.index,
    }
    from repro.hdl.netlist import Wire

    def lift(idx: int) -> Wire:
        return Wire(out, wmap[idx])

    for name, idx in c.inputs.items():
        if idx not in wmap:
            wmap[idx] = out.add_input(c.wire_names[idx]).index
    # FFs first (placeholder pattern again).

    ph = []
    for f in c.dffs:
        d_ph = out.new_wire(c.wire_names[f.d])
        q = out.dff(d_ph, name=c.wire_names[f.q].removesuffix(".q"),
                    reset_value=f.reset_value)
        ph.append((f, d_ph))
        wmap[f.q] = q.index
    for gi in _topo(c):
        if gi not in keep_gates:
            continue
        g = c.gates[gi]
        w = out._gate(g.kind, tuple(lift(i) for i in g.inputs), c.wire_names[g.output])
        wmap[g.output] = w.index
    for pos, (f, d_ph) in enumerate(ph):
        ff = out.dffs[pos]
        object.__setattr__(ff, "d", wmap[f.d])
        object.__setattr__(ff, "enable", wmap[f.enable] if f.enable is not None else None)
        object.__setattr__(ff, "clear", wmap[f.clear] if f.clear is not None else None)
    for name, idx in c.outputs.items():
        out.outputs[name] = wmap[idx]
    out.validate()
    return out, wmap
