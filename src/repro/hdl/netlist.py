"""Structural netlist container.

A :class:`Circuit` owns wires (single-bit nets), combinational gates and
D flip-flops.  Construction is purely structural — nothing is evaluated
until a :class:`repro.hdl.simulator.Simulator` is attached — so the same
object serves simulation, the gate census of Fig. 2's area formula, and
the Virtex-E technology mapper.

Wires are exposed to users as lightweight :class:`Wire` handles; buses are
plain Python lists of wires in little-endian order (index 0 = LSB), the
same convention as :mod:`repro.utils.bits`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HardwareModelError
from repro.hdl.gates import Gate, GateKind

__all__ = ["Wire", "DFF", "Circuit"]


@dataclass(frozen=True)
class Wire:
    """Handle to a single-bit net inside a specific circuit."""

    circuit: "Circuit"
    index: int

    @property
    def name(self) -> str:
        return self.circuit.wire_names[self.index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Wire({self.name}#{self.index})"


@dataclass(frozen=True)
class DFF:
    """A D flip-flop: ``q`` follows ``d`` at the clock edge.

    ``enable`` (optional wire index) gates the update; ``clear`` (optional
    wire index) synchronously zeroes the register, dominating the enable —
    this models the dedicated SR pin of a Virtex slice flip-flop, so a
    wire-driven clear costs no LUT fabric.  ``reset_value`` is loaded when
    the simulator's global synchronous reset is asserted.
    """

    d: int
    q: int
    enable: Optional[int]
    reset_value: int
    clear: Optional[int] = None


class Circuit:
    """A flat gate-level netlist.

    The circuit always provides two constant wires, ``const0`` and
    ``const1`` (indices 0 and 1), so constant inputs never need special
    cases in cell builders.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.wire_names: List[str] = []
        self.gates: List[Gate] = []
        self.dffs: List[DFF] = []
        self.inputs: Dict[str, int] = {}
        self.outputs: Dict[str, int] = {}
        self._driven: set = set()
        self.const0 = self.new_wire("const0")
        self.const1 = self.new_wire("const1")
        self._driven.add(self.const0.index)
        self._driven.add(self.const1.index)

    # ------------------------------------------------------------------
    # Wire management
    # ------------------------------------------------------------------
    def new_wire(self, name: str = "") -> Wire:
        """Create an undriven wire and return its handle."""
        idx = len(self.wire_names)
        self.wire_names.append(name or f"w{idx}")
        return Wire(self, idx)

    def new_bus(self, width: int, name: str = "bus") -> List[Wire]:
        """Create ``width`` wires named ``name[0..width)`` (LSB first)."""
        return [self.new_wire(f"{name}[{i}]") for i in range(width)]

    def add_input(self, name: str, width: int = 1):
        """Declare a primary input; returns a wire (width 1) or bus."""
        if width == 1:
            w = self.new_wire(name)
            self._mark_driven(w)
            self.inputs[name] = w.index
            return w
        bus = self.new_bus(width, name)
        for i, w in enumerate(bus):
            self._mark_driven(w)
            self.inputs[f"{name}[{i}]"] = w.index
        return bus

    def mark_output(self, name: str, wire_or_bus) -> None:
        """Declare a primary output (a wire or a little-endian bus)."""
        if isinstance(wire_or_bus, Wire):
            self.outputs[name] = wire_or_bus.index
        else:
            for i, w in enumerate(wire_or_bus):
                self.outputs[f"{name}[{i}]"] = w.index

    def _check_wire(self, w) -> int:
        if not isinstance(w, Wire) or w.circuit is not self:
            raise HardwareModelError(f"{w!r} is not a wire of circuit {self.name!r}")
        return w.index

    def _mark_driven(self, w: Wire) -> None:
        if w.index in self._driven:
            raise HardwareModelError(f"wire {w.name!r} driven twice")
        self._driven.add(w.index)

    # ------------------------------------------------------------------
    # Gate construction
    # ------------------------------------------------------------------
    def _gate(self, kind: GateKind, ins: Sequence[Wire], name: str) -> Wire:
        indices = tuple(self._check_wire(w) for w in ins)
        out = self.new_wire(name)
        self._mark_driven(out)
        self.gates.append(Gate(kind=kind, inputs=indices, output=out.index))
        return out

    def and_(self, a: Wire, b: Wire, name: str = "and") -> Wire:
        return self._gate(GateKind.AND, (a, b), name)

    def or_(self, a: Wire, b: Wire, name: str = "or") -> Wire:
        return self._gate(GateKind.OR, (a, b), name)

    def xor(self, a: Wire, b: Wire, name: str = "xor") -> Wire:
        return self._gate(GateKind.XOR, (a, b), name)

    def nand(self, a: Wire, b: Wire, name: str = "nand") -> Wire:
        return self._gate(GateKind.NAND, (a, b), name)

    def nor(self, a: Wire, b: Wire, name: str = "nor") -> Wire:
        return self._gate(GateKind.NOR, (a, b), name)

    def xnor(self, a: Wire, b: Wire, name: str = "xnor") -> Wire:
        return self._gate(GateKind.XNOR, (a, b), name)

    def not_(self, a: Wire, name: str = "not") -> Wire:
        return self._gate(GateKind.NOT, (a,), name)

    def buf(self, a: Wire, name: str = "buf") -> Wire:
        return self._gate(GateKind.BUF, (a,), name)

    # ------------------------------------------------------------------
    # Sequential construction
    # ------------------------------------------------------------------
    def dff(
        self,
        d: Wire,
        name: str = "dff",
        enable: Optional[Wire] = None,
        reset_value: int = 0,
        clear: Optional[Wire] = None,
    ) -> Wire:
        """Attach a D flip-flop driven by ``d``; returns the ``q`` wire.

        ``clear`` is a synchronous zero-strobe (the slice FF's SR pin); it
        dominates ``enable``.
        """
        if reset_value not in (0, 1):
            raise HardwareModelError(f"reset_value must be 0/1, got {reset_value}")
        d_idx = self._check_wire(d)
        en_idx = self._check_wire(enable) if enable is not None else None
        clr_idx = self._check_wire(clear) if clear is not None else None
        q = self.new_wire(f"{name}.q")
        self._mark_driven(q)
        self.dffs.append(
            DFF(d=d_idx, q=q.index, enable=en_idx, reset_value=reset_value, clear=clr_idx)
        )
        return q

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_wires(self) -> int:
        return len(self.wire_names)

    def undriven_wires(self) -> List[str]:
        """Names of wires that are read by a gate/DFF but never driven.

        An elaborated design should return an empty list; the structural
        tests assert this.
        """
        read: set = set()
        for g in self.gates:
            read.update(g.inputs)
        for f in self.dffs:
            read.add(f.d)
            if f.enable is not None:
                read.add(f.enable)
            if f.clear is not None:
                read.add(f.clear)
        missing = sorted(read - self._driven)
        return [self.wire_names[i] for i in missing]

    def validate(self) -> None:
        """Raise :class:`HardwareModelError` if the netlist is malformed."""
        missing = self.undriven_wires()
        if missing:
            raise HardwareModelError(
                f"circuit {self.name!r} has undriven wires: {missing[:10]}"
                + ("..." if len(missing) > 10 else "")
            )

    def structural_key(self) -> str:
        """Stable digest of the netlist *structure* (not the wire names).

        Two circuits with identical gate/flip-flop wiring and identical
        input/output index maps share a key, so the compiled-kernel cache
        (:mod:`repro.hdl.compiled`) recognizes a re-elaborated netlist —
        the exponentiator's ~2l multiplications at one ``l``, or every
        serving batch at the same width — and compiles it exactly once.
        The digest is memoized; appending wires, gates or flip-flops
        invalidates the memo.
        """
        shape = (self.num_wires, len(self.gates), len(self.dffs))
        cached = getattr(self, "_structural_key", None)
        if cached is not None and cached[0] == shape:
            return cached[1]
        h = hashlib.sha256()
        h.update(repr(shape).encode())
        for g in self.gates:
            h.update(f"g{g.kind.value}{g.inputs}{g.output};".encode())
        for f in self.dffs:
            h.update(f"f{f.d},{f.q},{f.enable},{f.reset_value},{f.clear};".encode())
        h.update(repr(sorted(self.inputs.values())).encode())
        h.update(repr(sorted(self.outputs.values())).encode())
        key = h.hexdigest()
        self._structural_key = (shape, key)
        return key

    def stats(self) -> Dict[str, int]:
        """Quick size summary: wires, gates, flip-flops."""
        return {
            "wires": self.num_wires,
            "gates": len(self.gates),
            "dffs": len(self.dffs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"Circuit({self.name!r}, wires={s['wires']}, "
            f"gates={s['gates']}, dffs={s['dffs']})"
        )
