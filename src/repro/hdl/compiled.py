"""Codegen'd bit-sliced simulation engine.

The interpreted :class:`~repro.hdl.simulator.Simulator` walks the levelized
gate list one dict/list access at a time, every cycle.  This module compiles
a :class:`~repro.hdl.netlist.Circuit` **once** into flat Python functions —
a combinational *settle* kernel, a flip-flop *clock* kernel and a fused
full-cycle *step* kernel — and then evaluates cycles by calling them, which
removes all per-gate interpreter dispatch:

* **Codegen.**  The combinational cloud is emitted in topological order as
  straight-line assignments over local variables.  Wires driven by
  ``const0``/``const1`` are folded at compile time, and single-fanout gates
  (NOT/AND/XOR chains — the bulk of the paper's half/full adders) are
  collapsed into their consumer's expression, so a full adder becomes one
  line of Python instead of five closure calls.

* **Register state in closure cells.**  The kernels are emitted as closures
  of a per-simulator factory.  Flip-flop Qs that nothing outside the kernel
  observes (not a primary output, not watched) live as closure variables —
  ``LOAD_DEREF``/``STORE_DEREF`` instead of a list subscript per read and
  write — and capture writes are topologically ordered so only genuine
  register cycles (FSM feedback, counters) need a pre-edge temporary.

* **Bit-sliced lanes.**  Every wire value is an arbitrary-width Python int
  holding K independent simulations, one per bit (``mask = (1 << K) - 1``).
  ``a & b`` then evaluates K AND gates at once, and ``NOT a`` becomes
  ``mask ^ a``.  The generated kernels take the mask at bind time, so the
  **same** compiled kernel source serves any lane count.

* **Kernel cache.**  Compiled kernels are cached in a small LRU keyed by
  :meth:`Circuit.structural_key` (plus the watch signature), so the
  exponentiator's ~2l multiplications at one ``l`` — and every serving batch
  at the same width — compile exactly once.

Because gates that are folded or inlined never hit the value array — and
unobserved registers never leave their closure cells — reading an arbitrary
internal wire requires declaring it up front via ``watch`` (``watch="all"``
materializes every gate output and register; the differential tests use
this to compare engines wire-for-wire).  Primary inputs, primary outputs
and watched wires are always readable.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.errors import SimulationError
from repro.hdl.gates import GateKind
from repro.hdl.netlist import Circuit, Wire
from repro.hdl.simulator import levelize
from repro.observability import OBS

__all__ = [
    "CompiledKernel",
    "CompiledSimulator",
    "compile_kernel",
    "pack_lanes",
    "unpack_lanes",
    "kernel_cache_info",
    "clear_kernel_cache",
]

# Expressions deeper than this (or longer than _MAX_INLINE_CHARS) are cut
# at a local variable even if single-fanout, to keep the generated source
# readable and the CPython compiler happy.
_MAX_INLINE_DEPTH = 24
_MAX_INLINE_CHARS = 640
_KERNEL_CACHE_MAX = 128

_CONST0 = 0  # wire index of const0 in every Circuit
_CONST1 = 1  # wire index of const1

_IND = "        "  # body indent of the factory's inner functions


class _Expr(NamedTuple):
    """A wire's compile-time value: expression text + inlining bookkeeping."""

    text: str
    depth: int
    atomic: bool  # single token; needs no parentheses when embedded


def _paren(e: _Expr) -> str:
    return e.text if e.atomic else f"({e.text})"


def _not_expr(a: _Expr) -> _Expr:
    if a.text == "0":
        return _Expr("m", 0, True)
    if a.text == "m":
        return _Expr("0", 0, True)
    return _Expr(f"m ^ {_paren(a)}", a.depth + 1, False)


def _and_expr(a: _Expr, b: _Expr) -> _Expr:
    if a.text == "0" or b.text == "0":
        return _Expr("0", 0, True)
    if a.text == "m":
        return b
    if b.text == "m":
        return a
    return _Expr(f"{_paren(a)} & {_paren(b)}", 1 + max(a.depth, b.depth), False)


def _or_expr(a: _Expr, b: _Expr) -> _Expr:
    if a.text == "m" or b.text == "m":
        return _Expr("m", 0, True)
    if a.text == "0":
        return b
    if b.text == "0":
        return a
    return _Expr(f"{_paren(a)} | {_paren(b)}", 1 + max(a.depth, b.depth), False)


def _xor_expr(a: _Expr, b: _Expr) -> _Expr:
    if a.text == "0":
        return b
    if b.text == "0":
        return a
    if a.text == "m":
        return _not_expr(b)
    if b.text == "m":
        return _not_expr(a)
    return _Expr(f"{_paren(a)} ^ {_paren(b)}", 1 + max(a.depth, b.depth), False)


def _gate_expr(kind: GateKind, a: _Expr, b: Optional[_Expr]) -> _Expr:
    if kind is GateKind.AND:
        return _and_expr(a, b)
    if kind is GateKind.OR:
        return _or_expr(a, b)
    if kind is GateKind.XOR:
        return _xor_expr(a, b)
    if kind is GateKind.NAND:
        return _not_expr(_and_expr(a, b))
    if kind is GateKind.NOR:
        return _not_expr(_or_expr(a, b))
    if kind is GateKind.XNOR:
        return _not_expr(_xor_expr(a, b))
    if kind is GateKind.NOT:
        return _not_expr(a)
    if kind is GateKind.BUF:
        return a
    raise SimulationError(f"cannot compile gate kind {kind!r}")  # pragma: no cover


class CompiledKernel:
    """One compiled netlist: the exec'd kernel factory + metadata.

    The factory binds a value array and lane mask, returning the
    ``(settle, clock, step, load, flush)`` closures for one simulator
    instance; hidden-register state lives in the closure, so one kernel
    serves every structurally-identical :class:`Circuit` (the cache relies
    on this) while instances stay independent.
    """

    __slots__ = (
        "key",
        "name",
        "factory",
        "src",
        "readable",
        "hidden",
        "probes",
        "num_gates",
        "num_wires",
    )

    def __init__(
        self,
        key: Tuple[str, object, Tuple[int, ...]],
        name: str,
        factory,
        src: str,
        readable: FrozenSet[int],
        hidden: FrozenSet[int],
        probes: Tuple[int, ...],
        num_gates: int,
        num_wires: int,
    ) -> None:
        self.key = key
        self.name = name
        self.factory = factory
        self.src = src
        self.readable = readable
        self.hidden = hidden
        self.probes = probes
        self.num_gates = num_gates
        self.num_wires = num_wires

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledKernel({self.name!r}, gates={self.num_gates}, "
            f"{len(self.src.splitlines())} lines, hidden={len(self.hidden)})"
        )


# ----------------------------------------------------------------------
# Codegen
# ----------------------------------------------------------------------
def _settle_body(
    circuit: Circuit,
    materialize: FrozenSet[int],
    hidden: FrozenSet[int],
    extra_fanout: Optional[Dict[int, int]] = None,
) -> Tuple[List[str], Dict[int, _Expr]]:
    """Emit the combinational cloud; return (lines, wire -> expression map).

    ``materialize`` lists the gate-output wire indices that must land in the
    value array ``v``; all other gate outputs live as locals or are inlined
    away.  Register Qs in ``hidden`` are read as closure cells (``q<i>``)
    rather than ``v`` subscripts.  ``extra_fanout`` adds consumer counts
    beyond gate inputs (the fused step kernel counts flip-flop reads here so
    a wire feeding several registers becomes a shared local instead of a
    re-evaluated expression).
    """
    order = levelize(circuit)
    gates = circuit.gates
    fanout: Dict[int, int] = dict(extra_fanout) if extra_fanout else {}
    for g in gates:
        for w in g.inputs:
            fanout[w] = fanout.get(w, 0) + 1

    expr: Dict[int, _Expr] = {
        _CONST0: _Expr("0", 0, True),
        _CONST1: _Expr("m", 0, True),
    }

    def wire_expr(w: int) -> _Expr:
        e = expr.get(w)
        if e is None:  # primary input / DFF q
            if w in hidden:
                return _Expr(f"q{w}", 0, True)
            return _Expr(f"v[{w}]", 0, True)
        return e

    lines: List[str] = []
    for gi in order:
        g = gates[gi]
        a = wire_expr(g.inputs[0])
        b = wire_expr(g.inputs[1]) if len(g.inputs) > 1 else None
        e = _gate_expr(g.kind, a, b)
        out = g.output
        mat = out in materialize
        if e.text in ("0", "m"):
            # Constant-folded: consumers embed the literal; only emit a
            # store if something outside the cloud reads this wire.
            if mat:
                lines.append(f"{_IND}v[{out}] = {e.text}")
            expr[out] = e
            continue
        uses = fanout.get(out, 0)
        if (
            not mat
            and uses <= 1
            and e.depth < _MAX_INLINE_DEPTH
            and len(e.text) < _MAX_INLINE_CHARS
        ):
            expr[out] = e  # inline into the single consumer
        elif mat and uses == 0:
            lines.append(f"{_IND}v[{out}] = {e.text}")
            expr[out] = _Expr(f"v[{out}]", 0, True)
        else:
            lines.append(f"{_IND}w{out} = {e.text}")
            if mat:
                lines.append(f"{_IND}v[{out}] = w{out}")
            expr[out] = _Expr(f"w{out}", 0, True)
    return lines, expr


def _dff_specs(circuit: Circuit) -> List[Tuple[int, Optional[int], Optional[int], Optional[int]]]:
    """Fold constant enables/clears out of the DFF list.

    Returns ``(q, d, enable, clear)`` tuples with ``None`` meaning "always
    enabled" / "never cleared"; registers that can never change (enable tied
    to const0, no clear) are dropped entirely.
    """
    specs: List[Tuple[int, Optional[int], Optional[int], Optional[int]]] = []
    for f in circuit.dffs:
        en: Optional[int] = f.enable
        clr: Optional[int] = f.clear
        if en == _CONST1:
            en = None  # always enabled
        if clr == _CONST0:
            clr = None  # never cleared
        if clr == _CONST1:
            specs.append((f.q, None, None, _CONST1))  # held clear
            continue
        if en == _CONST0:
            if clr is None:
                continue  # never captures, never clears: q holds
            specs.append((f.q, None, _CONST0, clr))
            continue
        specs.append((f.q, f.d, en, clr))
    return specs


def _capture_blocks(specs, ref, qtok) -> List[Tuple[int, List[str]]]:
    """Build the per-register capture blocks (one small line group each).

    ``clear`` dominates ``enable`` (the Virtex SR pin semantics the
    netlists rely on); per-lane masks keep both strobes independent across
    lanes.  The enable mux uses the xor form — one operation and two loads
    cheaper than the and/or mux::

        q' = q ^ ((q ^ d) & e)            then  & (m ^ c)  if cleared

    Strobed registers are emitted behind a runtime guard: when the enable
    (and clear) lane word is all-zero the register holds, so the whole mux
    — including any D expression inlined into it — is skipped.  Operand
    registers thus cost one truth test outside their load cycle, and the
    array's phase-alternating T/C registers skip every other cycle; lanes
    stay independent because a partially-set strobe word takes the masked
    path, which is a per-lane no-op wherever the strobe bit is 0.
    """

    def tok(e: _Expr, q: int, prefix: str, lines: List[str]) -> str:
        # Guard tests evaluate the strobe once; hoist non-atomic strobes.
        if e.atomic:
            return e.text
        lines.append(f"{_IND}{prefix}{q} = {e.text}")
        return f"{prefix}{q}"

    blocks: List[Tuple[int, List[str]]] = []
    for q, d, en, clr in specs:
        own = qtok(q)
        lines: List[str] = []
        if d is None and clr == _CONST1:
            lines.append(f"{_IND}{own} = 0")
        elif d is None and en == _CONST0:
            c = tok(ref(clr), q, "c", lines)
            lines.append(f"{_IND}if {c}:")
            lines.append(f"{_IND}    {own} = {own} & (m ^ {c})")
        elif en is None and clr is None:
            lines.append(f"{_IND}{own} = {_paren(ref(d))}")
        elif clr is None:
            e = tok(ref(en), q, "e", lines)
            lines.append(f"{_IND}if {e}:")
            lines.append(f"{_IND}    {own} = {own} ^ (({own} ^ {_paren(ref(d))}) & {e})")
        elif en is None:
            c = tok(ref(clr), q, "c", lines)
            dd = tok(ref(d), q, "d", lines)
            lines.append(f"{_IND}{own} = {dd} & (m ^ {c}) if {c} else {dd}")
        else:
            e = tok(ref(en), q, "e", lines)
            c = tok(ref(clr), q, "c", lines)
            dd = _paren(ref(d))
            lines.append(f"{_IND}if {c}:")
            lines.append(f"{_IND}    {own} = ({own} ^ (({own} ^ {dd}) & {e})) & (m ^ {c})")
            lines.append(f"{_IND}elif {e}:")
            lines.append(f"{_IND}    {own} = {own} ^ (({own} ^ {dd}) & {e})")
        blocks.append((q, lines))
    return blocks


_VTOK_RE = re.compile(r"v\[(\d+)\]")
_QTOK_RE = re.compile(r"\bq(\d+)\b")


def _order_writes(
    blocks: List[Tuple[int, List[str]]],
    qtok,
) -> Tuple[List[str], List[str]]:
    """Order capture blocks so reads observe pre-edge values.

    All flip-flops capture simultaneously, but the writes execute one at a
    time; a write must therefore run before any register it *reads* is
    overwritten.  Topologically ordering the writes handles every register
    chain (shift registers, pipelines, the token chain) with zero
    temporaries; only genuine cycles — FSM feedback, counter increments —
    fall back to latching the pre-edge value in an ``r<i>`` local emitted
    before the writes.  Q-references are found textually (``v[i]`` /
    ``q<i>`` tokens), so reads buried in inlined subexpressions count too.
    """
    targets = {q for q, _ in blocks}
    tq = [q for q, _ in blocks]
    texts = [list(lines) for _, lines in blocks]
    reads: List[set] = []
    for i, lines in enumerate(texts):
        joined = "\n".join(lines)
        rd = {int(mm.group(1)) for mm in _VTOK_RE.finditer(joined)}
        rd |= {int(mm.group(1)) for mm in _QTOK_RE.finditer(joined)}
        # Own-q reads are safe in place: the RHS evaluates before the store.
        reads.append({w for w in rd if w in targets and w != tq[i]})
    readers_of: Dict[int, set] = {q: set() for q in targets}
    for i, rd in enumerate(reads):
        for w in rd:
            readers_of[w].add(i)

    pending = set(range(len(blocks)))
    pre_lines: List[str] = []
    out_lines: List[str] = []
    while pending:
        ready = sorted(i for i in pending if not (readers_of[tq[i]] & pending))
        if ready:
            for i in ready:
                pending.discard(i)
                out_lines.extend(texts[i])
            continue
        # Every pending write sits on a register cycle: break the first one
        # by latching its pre-edge value and rewriting the pending readers.
        i = min(pending)
        qt = tq[i]
        name = f"r{qt}"
        pre_lines.append(f"{_IND}{name} = {qtok(qt)}")
        pat_v = re.compile(r"v\[%d\]" % qt)
        pat_q = re.compile(r"\bq%d\b" % qt)

        def repoint(line: str) -> str:
            # Rewrite reads only — assignment targets keep storing to the
            # real register; guard lines (`if e:`) have no target.
            lhs, sep, rhs = line.partition(" = ")
            if not sep:
                return pat_q.sub(name, pat_v.sub(name, line))
            return lhs + sep + pat_q.sub(name, pat_v.sub(name, rhs))

        for j in pending:
            if qt in reads[j] or qt == tq[j]:
                texts[j] = [repoint(ln) for ln in texts[j]]
                reads[j].discard(qt)
        readers_of[qt] = set()
    return pre_lines, out_lines


def _nonlocal_lines(names: List[str]) -> List[str]:
    lines = []
    for i in range(0, len(names), 16):
        lines.append(f"{_IND}nonlocal " + ", ".join(names[i : i + 16]))
    return lines


def _emit_factory(
    circuit: Circuit,
    mat_split: FrozenSet[int],
    mat_fused: FrozenSet[int],
    hidden: FrozenSet[int],
    probes: Tuple[int, ...] = (),
) -> str:
    """Generate the kernel-factory source.

    The factory takes the value array and lane mask and returns six
    closures: the split ``settle``/``clock`` phase pair, the fused ``step``
    (one full cycle, register inputs consumed straight from the
    combinational cloud's locals without a value-array round trip),
    ``load``/``flush`` to move hidden-register state between the closure
    cells and the value array (reset, pokes of internal state), and
    ``capture`` — the flight-recorder tap, returning the probed wires'
    current lane words as one flat tuple.  Hidden register Qs are read
    straight from their closure cells, so probing costs no materialization
    and nothing when ``capture`` is never called.
    """
    q_wires = frozenset(f.q for f in circuit.dffs)

    def qtok(w: int) -> str:
        return f"q{w}" if w in hidden else f"v[{w}]"

    specs = _dff_specs(circuit)

    # Fused-step fanout: strobes appear in the guard test and in the mux,
    # so giving them a count of 2 forces shared-gate enables into settle
    # locals instead of re-evaluated inline expressions.
    uses: Dict[int, int] = {}
    for _, d, en, clr in specs:
        for w, times in ((d, 1), (en, 2), (clr, 2)):
            if w is not None and w not in (_CONST0, _CONST1):
                uses[w] = uses.get(w, 0) + times

    settle_split, _ = _settle_body(circuit, mat_split, hidden)
    settle_fused, expr = _settle_body(circuit, mat_fused, hidden, extra_fanout=uses)

    def ref_split(w: int) -> _Expr:
        if w == _CONST0:
            return _Expr("0", 0, True)
        if w == _CONST1:
            return _Expr("m", 0, True)
        if w in q_wires:
            return _Expr(qtok(w), 0, True)
        return _Expr(f"v[{w}]", 0, True)  # materialized by mat_split

    def ref_fused(w: int) -> _Expr:
        e = expr.get(w)
        if e is not None:
            return e
        if w in hidden:
            return _Expr(f"q{w}", 0, True)
        return _Expr(f"v[{w}]", 0, True)

    clock_pre, clock_out = _order_writes(_capture_blocks(specs, ref_split, qtok), qtok)
    step_pre, step_out = _order_writes(_capture_blocks(specs, ref_fused, qtok), qtok)

    hid_sorted = sorted(hidden)
    hid_names = [f"q{w}" for w in hid_sorted]
    written_hidden = sorted({q for q, _, _, _ in specs if q in hidden})
    wh_names = [f"q{w}" for w in written_hidden]

    lines: List[str] = ["def __kernel_factory(v, m):"]
    for w in hid_sorted:
        lines.append(f"    q{w} = v[{w}]")

    lines.append("    def __load():")
    if hid_sorted:
        lines += _nonlocal_lines(hid_names)
        lines += [f"{_IND}q{w} = v[{w}]" for w in hid_sorted]
    else:
        lines.append(f"{_IND}pass")

    lines.append("    def __flush():")
    if hid_sorted:
        lines += [f"{_IND}v[{w}] = q{w}" for w in hid_sorted]
    else:
        lines.append(f"{_IND}pass")

    lines.append("    def __settle():")
    lines += settle_split or [f"{_IND}pass"]

    lines.append("    def __clock():")
    clock_body = clock_pre + clock_out
    if clock_body:
        lines += _nonlocal_lines(wh_names)
        lines += clock_body
    else:
        lines.append(f"{_IND}pass")

    lines.append("    def __step():")
    step_body = settle_fused + step_pre + step_out
    if step_body:
        lines += _nonlocal_lines(wh_names)
        lines += step_body
    else:
        lines.append(f"{_IND}pass")

    lines.append("    def __capture():")
    if probes:
        toks = ", ".join(qtok(w) for w in probes)
        lines.append(f"{_IND}return ({toks},)")
    else:
        lines.append(f"{_IND}return ()")

    lines.append("    return __settle, __clock, __step, __load, __flush, __capture")
    return "\n".join(lines) + "\n"


def _wire_index(w: Union[Wire, int]) -> int:
    return w.index if isinstance(w, Wire) else int(w)


def _compile(circuit: Circuit, key: Tuple[str, object, Tuple[int, ...]]) -> CompiledKernel:
    wkey = key[1]
    probes = key[2]
    gate_outputs = frozenset(g.output for g in circuit.gates)
    q_wires = frozenset(f.q for f in circuit.dffs)
    if wkey == "all":
        mat_fused = gate_outputs
        mat_split = gate_outputs
        hidden: FrozenSet[int] = frozenset()
    else:
        # The fused step kernel consumes register inputs as locals, so only
        # primary outputs and watched wires must reach the value array; the
        # split settle/clock pair additionally materializes every
        # D/enable/clear source (the clock kernel reads them from v).
        # Registers nobody outside observes stay in closure cells.
        want = set(wkey)
        want.update(circuit.outputs.values())
        # Probed combinational wires must land in v for __capture to read;
        # probed register Qs stay hidden (the capture closure reads their
        # closure cells directly), so probing never changes register layout.
        want.update(set(probes) - q_wires)
        mat_fused = frozenset(want & gate_outputs)
        hidden = frozenset(q_wires - want)
        for f in circuit.dffs:
            want.add(f.d)
            if f.enable is not None:
                want.add(f.enable)
            if f.clear is not None:
                want.add(f.clear)
        mat_split = frozenset(want & gate_outputs)

    src = _emit_factory(circuit, mat_split, mat_fused, hidden, probes)
    ns: Dict[str, object] = {}
    exec(compile(src, f"<compiled:{circuit.name}>", "exec"), ns)
    # Peekability is advertised for the fused kernel (the fast path); the
    # split kernels materialize strictly more combinational wires.
    readable = frozenset(range(circuit.num_wires)) - (gate_outputs - mat_fused) - hidden
    return CompiledKernel(
        key=key,
        name=circuit.name,
        factory=ns["__kernel_factory"],
        src=src,
        readable=readable,
        hidden=hidden,
        probes=probes,
        num_gates=len(circuit.gates),
        num_wires=circuit.num_wires,
    )


# ----------------------------------------------------------------------
# Kernel cache
# ----------------------------------------------------------------------
_CACHE_LOCK = threading.Lock()
_KERNEL_CACHE: "OrderedDict[Tuple[str, object], CompiledKernel]" = OrderedDict()


def compile_kernel(
    circuit: Circuit, watch: object = (), probes: Sequence[object] = ()
) -> CompiledKernel:
    """Fetch (or build) the compiled kernel for ``circuit``.

    ``watch`` is either the string ``"all"`` or an iterable of wires/indices
    that must stay peekable after each settle.  ``probes`` is an *ordered*
    sequence of wires/indices the kernel's ``capture`` closure returns each
    time it is called (the flight-recorder tap).  The cache key is
    ``(circuit.structural_key(), watch signature, probe signature)`` — the
    lane count is deliberately *not* part of the key, since kernels take
    the lane mask at bind time.
    """
    circuit.validate()
    if watch == "all":
        wkey: object = "all"
    else:
        wkey = frozenset(_wire_index(w) for w in watch)  # type: ignore[union-attr]
    pkey = tuple(_wire_index(w) for w in probes)
    key = (circuit.structural_key(), wkey, pkey)
    with _CACHE_LOCK:
        kern = _KERNEL_CACHE.get(key)
        if kern is not None:
            _KERNEL_CACHE.move_to_end(key)
            if OBS.enabled:
                OBS.count("hdl.compile_cache_hits")
            return kern
        if OBS.enabled:
            OBS.count("hdl.compile_cache_misses")
        kern = _compile(circuit, key)
        _KERNEL_CACHE[key] = kern
        while len(_KERNEL_CACHE) > _KERNEL_CACHE_MAX:
            _KERNEL_CACHE.popitem(last=False)
        return kern


def kernel_cache_info() -> Dict[str, int]:
    """Current kernel-cache occupancy (for tests and diagnostics)."""
    with _CACHE_LOCK:
        return {"size": len(_KERNEL_CACHE), "max_size": _KERNEL_CACHE_MAX}


def clear_kernel_cache() -> None:
    """Drop every cached kernel (tests use this to force recompiles)."""
    with _CACHE_LOCK:
        _KERNEL_CACHE.clear()


# ----------------------------------------------------------------------
# Lane packing helpers
# ----------------------------------------------------------------------
def pack_lanes(values: Sequence[int], width: int) -> List[int]:
    """Bit-slice per-lane integers into per-wire lane words.

    ``values[k]`` is lane k's little-endian bus value; the result's entry
    ``i`` holds bit ``i`` of every lane, lane k in bit position k —
    exactly the layout a ``width``-wide bus of packed wires uses.
    """
    words = [0] * width
    for k, val in enumerate(values):
        if val < 0 or (width < val.bit_length()):
            raise SimulationError(
                f"lane {k} value {val} does not fit bus of width {width}"
            )
        i = 0
        while val:
            if val & 1:
                words[i] |= 1 << k
            val >>= 1
            i += 1
    return words


def unpack_lanes(words: Sequence[int], lanes: int) -> List[int]:
    """Inverse of :func:`pack_lanes`: recover each lane's integer value."""
    out = []
    for k in range(lanes):
        acc = 0
        for i, w in enumerate(words):
            if (w >> k) & 1:
                acc |= 1 << i
        out.append(acc)
    return out


# ----------------------------------------------------------------------
# Simulator facade
# ----------------------------------------------------------------------
class CompiledSimulator:
    """Drop-in :class:`~repro.hdl.simulator.Simulator` twin over compiled kernels.

    Parameters
    ----------
    circuit:
        Netlist to simulate (validated + levelized at compile time).
    lanes:
        Number of independent simulations packed into each wire value.
        ``poke``/``peek`` keep the single-simulation interface (pokes
        broadcast to all lanes; peeks read lane 0 by default);
        ``poke_lanes``/``peek_lanes`` address lanes individually.
    watch:
        Extra wires to keep peekable (see :func:`compile_kernel`).
    probes:
        Ordered wires the codegenned ``capture()`` tap returns as lane
        words — the flight-recorder hook (see :func:`compile_kernel`).
    """

    def __init__(
        self,
        circuit: Circuit,
        lanes: int = 1,
        watch: object = (),
        probes: Sequence[object] = (),
    ) -> None:
        if lanes < 1:
            raise SimulationError(f"lanes must be >= 1, got {lanes}")
        self.circuit = circuit
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        self.kernel = compile_kernel(circuit, watch=watch, probes=probes)
        self.probe_wires: Tuple[int, ...] = self.kernel.probes
        self.values: List[int] = [0] * circuit.num_wires
        self.values[_CONST1] = self.mask
        # Bind this instance's value array and mask; hidden-register state
        # lives in the returned closures, so instances never share state
        # even though they share the cached kernel.
        (
            self._settle_k,
            self._clock_k,
            self._step_k,
            self._load,
            self._flush,
            self.capture,
        ) = self.kernel.factory(self.values, self.mask)
        self._hidden = self.kernel.hidden
        self.cycle = 0
        # Lanes carrying live work this sweep (lane-fill accounting); the
        # batch driver (GateLevelMMMC.multiply_lanes) narrows it while a
        # padded sweep is in flight.
        self.active_lanes = lanes

    # -- value access ---------------------------------------------------
    def _check_readable(self, index: int) -> None:
        if index not in self.kernel.readable:
            raise SimulationError(
                f"wire {self.circuit.wire_names[index]!r} is folded away by the "
                "compiled kernel (inlined gate or unobserved register); pass it "
                "in watch=[...] (or watch='all') to keep it peekable"
            )

    def poke(self, wire_or_bus, value: int) -> None:
        """Drive an input with one value, broadcast to every lane."""
        m = self.mask
        vals = self.values
        if isinstance(wire_or_bus, Wire):
            if value not in (0, 1):
                raise SimulationError(f"single wire takes 0/1, got {value}")
            idx = wire_or_bus.index
            if idx in self._hidden:
                self._flush()
                vals[idx] = m if value else 0
                self._load()
            else:
                vals[idx] = m if value else 0
            return
        bus: Sequence[Wire] = wire_or_bus
        if value < 0 or value >> len(bus):
            raise SimulationError(f"value {value} does not fit bus of width {len(bus)}")
        hid = bool(self._hidden) and not self._hidden.isdisjoint(w.index for w in bus)
        if hid:
            self._flush()
        for i, w in enumerate(bus):
            vals[w.index] = m if (value >> i) & 1 else 0
        if hid:
            self._load()

    def poke_lanes(self, wire_or_bus, lane_values: Sequence[int]) -> None:
        """Drive an input with one value per lane."""
        if len(lane_values) != self.lanes:
            raise SimulationError(
                f"expected {self.lanes} lane values, got {len(lane_values)}"
            )
        vals = self.values
        if isinstance(wire_or_bus, Wire):
            word = 0
            for k, v in enumerate(lane_values):
                if v not in (0, 1):
                    raise SimulationError(f"lane {k}: single wire takes 0/1, got {v}")
                if v:
                    word |= 1 << k
            idx = wire_or_bus.index
            if idx in self._hidden:
                self._flush()
                vals[idx] = word
                self._load()
            else:
                vals[idx] = word
            return
        bus: Sequence[Wire] = wire_or_bus
        hid = bool(self._hidden) and not self._hidden.isdisjoint(w.index for w in bus)
        if hid:
            self._flush()
        for w, word in zip(bus, pack_lanes(lane_values, len(bus))):
            vals[w.index] = word
        if hid:
            self._load()

    def peek(self, wire_or_bus, lane: int = 0) -> int:
        """Read one lane (default lane 0) of a wire or little-endian bus."""
        if not (0 <= lane < self.lanes):
            raise SimulationError(f"lane {lane} out of range [0, {self.lanes})")
        vals = self.values
        if isinstance(wire_or_bus, Wire):
            self._check_readable(wire_or_bus.index)
            return (vals[wire_or_bus.index] >> lane) & 1
        acc = 0
        for i, w in enumerate(wire_or_bus):
            self._check_readable(w.index)
            acc |= ((vals[w.index] >> lane) & 1) << i
        return acc

    def peek_lanes(self, wire_or_bus) -> List[int]:
        """Read every lane of a wire or bus as a list of integers."""
        vals = self.values
        if isinstance(wire_or_bus, Wire):
            self._check_readable(wire_or_bus.index)
            word = vals[wire_or_bus.index]
            return [(word >> k) & 1 for k in range(self.lanes)]
        words = []
        for w in wire_or_bus:
            self._check_readable(w.index)
            words.append(vals[w.index])
        return unpack_lanes(words, self.lanes)

    def flip(self, wire: Wire, lanes: Optional[Sequence[int]] = None) -> None:
        """Invert a wire's value (single-event-upset injection).

        ``lanes`` selects which packed simulations are hit (default: all
        of them).  Works on hidden registers too — their closure-cell
        state is flushed to the value array, XORed, and loaded back —
        so fault campaigns can target any DFF without a ``watch`` set.
        """
        if lanes is None:
            xor = self.mask
        else:
            xor = 0
            for k in lanes:
                if not (0 <= k < self.lanes):
                    raise SimulationError(
                        f"lane {k} out of range [0, {self.lanes})"
                    )
                xor |= 1 << k
        idx = wire.index
        if idx in self._hidden:
            self._flush()
            self.values[idx] ^= xor
            self._load()
        else:
            self.values[idx] ^= xor

    # -- phases ---------------------------------------------------------
    def settle(self) -> None:
        """Propagate through the compiled combinational cloud (phase 1)."""
        self._settle_k()
        if OBS.enabled:
            OBS.count("hdl.gate_evals", self.kernel.num_gates)
            OBS.record("hdl.gates_per_cycle", self.kernel.num_gates)

    def clock(self) -> None:
        """Capture every DFF via the compiled clock kernel (phase 2)."""
        self._clock_k()
        self.cycle += 1
        if OBS.enabled:
            OBS.count("hdl.cycles")
            OBS.count("hdl.compiled_cycles")
            if self.lanes > 1 and OBS.occupancy is not None:
                OBS.occupancy.activity("hdl.lanes", self.active_lanes, self.lanes)

    def step(self) -> None:
        """One full clock cycle through the fused settle+capture kernel.

        Equivalent to ``settle(); clock()`` but register inputs never
        round-trip through the value array.  After ``step()`` the value
        array holds this cycle's settled combinational values (pre-edge)
        and the freshly captured observable register values — the same
        observable state the split phases leave behind.
        """
        self._step_k()
        self.cycle += 1
        if OBS.enabled:
            OBS.count("hdl.gate_evals", self.kernel.num_gates)
            OBS.record("hdl.gates_per_cycle", self.kernel.num_gates)
            OBS.count("hdl.cycles")
            OBS.count("hdl.compiled_cycles")
            if self.lanes > 1 and OBS.occupancy is not None:
                OBS.occupancy.activity("hdl.lanes", self.active_lanes, self.lanes)

    def reset(self) -> None:
        """Synchronous reset: load every DFF's reset value; rewind the clock."""
        m = self.mask
        for f in self.circuit.dffs:
            self.values[f.q] = m if f.reset_value else 0
        if self._hidden:
            self._load()
        self.cycle = 0
        self.settle()

    def run(self, cycles: int) -> None:
        """Advance ``cycles`` full clock cycles."""
        for _ in range(cycles):
            self.step()
