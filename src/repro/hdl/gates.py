"""Gate primitives and adder macros.

Gates are 1- or 2-input boolean primitives.  The adder macros
(:func:`half_adder`, :func:`full_adder`) build the exact decompositions the
paper's cell inventory assumes:

* half adder  = 1 XOR + 1 AND
* full adder  = 2 XOR + 2 AND + 1 OR   (two chained half adders whose
  carries are ORed — the carries can never both be 1, so OR is exact)

so the gate census of an elaborated systolic array can be compared
meaningfully against the paper's ``(5l−3) XOR + (7l−7) AND + (4l−5) OR``
formula.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

__all__ = ["GateKind", "Gate", "GATE_EVAL", "half_adder", "full_adder"]


class GateKind(enum.Enum):
    """Supported combinational primitives."""

    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    NOT = "not"
    BUF = "buf"

    @property
    def arity(self) -> int:
        return 1 if self in (GateKind.NOT, GateKind.BUF) else 2


@dataclass(frozen=True)
class Gate:
    """One combinational gate instance inside a circuit.

    ``inputs`` and ``output`` are wire indices local to the owning circuit.
    """

    kind: GateKind
    inputs: Tuple[int, ...]
    output: int


# Evaluation table: kind -> function of the input bit tuple.
GATE_EVAL = {
    GateKind.AND: lambda a, b: a & b,
    GateKind.OR: lambda a, b: a | b,
    GateKind.XOR: lambda a, b: a ^ b,
    GateKind.NAND: lambda a, b: 1 - (a & b),
    GateKind.NOR: lambda a, b: 1 - (a | b),
    GateKind.XNOR: lambda a, b: 1 - (a ^ b),
    GateKind.NOT: lambda a: 1 - a,
    GateKind.BUF: lambda a: a,
}


def half_adder(circuit, a, b, name: str = "ha"):
    """Attach a half adder; returns ``(sum, carry)`` wires.

    sum = a XOR b, carry = a AND b — 1 XOR + 1 AND, the paper's HA.
    """
    s = circuit.xor(a, b, name=f"{name}.s")
    c = circuit.and_(a, b, name=f"{name}.c")
    return s, c


def full_adder(circuit, a, b, cin, name: str = "fa"):
    """Attach a full adder; returns ``(sum, carry)`` wires.

    Built as two half adders plus an OR on the carries:

        s1 = a ⊕ b          c1 = a·b
        s  = s1 ⊕ cin       c2 = s1·cin
        cout = c1 + c2      (c1 and c2 are never both 1)

    Total: 2 XOR + 2 AND + 1 OR.  The critical carry path
    cin → cout traverses one AND and one OR — the ``T_FA(cin→cout)``
    the paper's critical-path expression ``2·T_FA + T_HA`` refers to.
    """
    s1, c1 = half_adder(circuit, a, b, name=f"{name}.ha0")
    s, c2 = half_adder(circuit, s1, cin, name=f"{name}.ha1")
    cout = circuit.or_(c1, c2, name=f"{name}.cout")
    return s, cout
