"""Levelized two-phase simulator for :class:`repro.hdl.netlist.Circuit`.

The simulator evaluates a circuit the way synchronous hardware behaves:

1. **settle** — propagate primary inputs and flip-flop outputs through the
   combinational gates in topological order (computed once, reused every
   cycle);
2. **clock** — capture every flip-flop's D input into its Q output.

Combinational loops are detected at construction time and rejected; the
levelization also yields each gate's logic depth, which the Virtex-E timing
model uses to find the critical path.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HardwareModelError, SimulationError
from repro.hdl.gates import GateKind, GATE_EVAL
from repro.hdl.netlist import Circuit, Wire
from repro.observability import OBS

__all__ = ["Simulator", "levelize"]


def levelize(circuit: Circuit) -> List[int]:
    """Topologically order a circuit's gate indices (combinational order).

    Shared by the interpreted :class:`Simulator` and the codegen engine in
    :mod:`repro.hdl.compiled`.  A combinational cycle raises
    :class:`~repro.errors.HardwareModelError` naming the stuck wires.
    """
    producers: Dict[int, int] = {}  # wire -> gate index
    for gi, g in enumerate(circuit.gates):
        producers[g.output] = gi
    indegree = [0] * len(circuit.gates)
    dependents: Dict[int, List[int]] = {gi: [] for gi in range(len(circuit.gates))}
    for gi, g in enumerate(circuit.gates):
        for w in g.inputs:
            src = producers.get(w)
            if src is not None:
                indegree[gi] += 1
                dependents[src].append(gi)
    ready = deque(gi for gi, d in enumerate(indegree) if d == 0)
    order: List[int] = []
    while ready:
        gi = ready.popleft()
        order.append(gi)
        for dep in dependents[gi]:
            indegree[dep] -= 1
            if indegree[dep] == 0:
                ready.append(dep)
    if len(order) != len(circuit.gates):
        stuck = [
            circuit.wire_names[circuit.gates[gi].output]
            for gi, d in enumerate(indegree)
            if d > 0
        ]
        raise HardwareModelError(
            f"combinational loop through: {stuck[:8]}" + ("..." if len(stuck) > 8 else "")
        )
    return order


class Simulator:
    """Cycle-accurate simulator bound to one circuit.

    Parameters
    ----------
    circuit:
        The netlist to simulate.  It is validated (no undriven wires) and
        levelized; a combinational cycle raises
        :class:`~repro.errors.HardwareModelError`.
    """

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self.values: List[int] = [0] * circuit.num_wires
        self.values[circuit.const1.index] = 1
        self._order = levelize(circuit)
        self.cycle = 0
        # Gate logic depth (1 = directly fed by registers/inputs/constants).
        self.gate_depth: Dict[int, int] = {}
        self._compute_depths()
        # Per-cycle evaluation plan, prebuilt once: (eval_fn, a_index,
        # b_index_or_None, output_index) per gate in topological order, so
        # settle() runs without per-gate dict lookups or attribute chasing.
        self._plan: Tuple[Tuple[object, int, Optional[int], int], ...] = tuple(
            (
                GATE_EVAL[g.kind],
                g.inputs[0],
                g.inputs[1] if len(g.inputs) > 1 else None,
                g.output,
            )
            for g in (circuit.gates[gi] for gi in self._order)
        )
        # DFF capture plan: (d, q, enable_or_None, clear_or_None).
        self._dff_plan: Tuple[Tuple[int, int, Optional[int], Optional[int]], ...] = tuple(
            (f.d, f.q, f.enable, f.clear) for f in circuit.dffs
        )

    def _compute_depths(self) -> None:
        c = self.circuit
        wire_depth: Dict[int, int] = {}
        for gi in self._order:
            g = c.gates[gi]
            d = 1 + max((wire_depth.get(w, 0) for w in g.inputs), default=0)
            self.gate_depth[gi] = d
            wire_depth[g.output] = d

    @property
    def max_depth(self) -> int:
        """Deepest combinational level (gate count on the longest path)."""
        return max(self.gate_depth.values(), default=0)

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    def poke(self, wire_or_bus, value: int) -> None:
        """Drive a primary input wire (0/1) or bus (little-endian integer)."""
        if isinstance(wire_or_bus, Wire):
            if value not in (0, 1):
                raise SimulationError(f"single wire takes 0/1, got {value}")
            self.values[wire_or_bus.index] = value
            return
        bus: Sequence[Wire] = wire_or_bus
        if value < 0 or value >> len(bus):
            raise SimulationError(f"value {value} does not fit bus of width {len(bus)}")
        for i, w in enumerate(bus):
            self.values[w.index] = (value >> i) & 1

    def peek(self, wire_or_bus) -> int:
        """Read a wire (0/1) or a bus (little-endian integer)."""
        if isinstance(wire_or_bus, Wire):
            return self.values[wire_or_bus.index]
        acc = 0
        for i, w in enumerate(wire_or_bus):
            acc |= self.values[w.index] << i
        return acc

    def sampler(self, wire_indices: Sequence[int]):
        """Zero-argument tap returning the given wires' values as a tuple.

        The flight recorder's peek-based probe path: the closure captures
        the (in-place mutated) value array once, so sampling a cycle costs
        one list read per probed wire and no attribute lookups.  Every wire
        is peekable on the interpreted engine, so any index is a valid tap.
        """
        vals = self.values
        idx = tuple(wire_indices)
        return lambda: tuple(vals[i] for i in idx)

    def flip(self, wire: Wire) -> None:
        """Invert one wire's current value (single-event-upset injection).

        Meaningful on register Qs between clock edges: the flipped value
        propagates through the next ``settle`` exactly as a particle
        strike on the flip-flop would.  Used by the fault-injection
        campaigns in :mod:`repro.analysis.fault` and the chaos layer.
        """
        self.values[wire.index] ^= 1

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def settle(self) -> None:
        """Propagate through all combinational gates (phase 1)."""
        vals = self.values
        for fn, a, b, out in self._plan:
            if b is None:
                vals[out] = fn(vals[a])
            else:
                vals[out] = fn(vals[a], vals[b])
        if OBS.enabled:
            OBS.count("hdl.gate_evals", len(self._plan))
            OBS.record("hdl.gates_per_cycle", len(self._plan))

    def clock(self) -> None:
        """Capture every DFF (phase 2).  Captures are simultaneous.

        A DFF's ``clear`` strobe dominates its ``enable`` (the Virtex SR
        pin semantics the netlists rely on).
        """
        vals = self.values
        captures = []
        for d, q, en, clr in self._dff_plan:
            if clr is not None and vals[clr]:
                captures.append((q, 0))
                continue
            if en is not None and not vals[en]:
                continue
            captures.append((q, vals[d]))
        for q, v in captures:
            vals[q] = v
        self.cycle += 1
        if OBS.enabled:
            OBS.count("hdl.cycles")
            OBS.count("hdl.dff_captures", len(captures))
            if OBS.occupancy is not None:
                # Enable-gated capture fraction: how much of the register
                # file actually latched new state this cycle.
                OBS.occupancy.activity(
                    "hdl.dff_captures", len(captures), len(self._dff_plan)
                )

    def step(self) -> None:
        """One full clock cycle: settle, then capture."""
        self.settle()
        self.clock()

    def reset(self) -> None:
        """Synchronous reset: load every DFF's reset value; rewind the clock."""
        for f in self.circuit.dffs:
            self.values[f.q] = f.reset_value
        self.cycle = 0
        self.settle()

    def run(self, cycles: int) -> None:
        """Advance ``cycles`` full clock cycles."""
        for _ in range(cycles):
            self.step()
