"""Probe registry: named signal taps over netlist wires and model state.

A :class:`ProbeSet` names the signals a flight recorder samples every cycle
and knows how to decode the raw per-cycle samples back into named integer
values.  Two sample layouts exist, matching the two ways state is reachable:

* **wire probes** (``kind="wires"``) — each sample is a flat tuple with one
  entry per netlist wire, in layout order.  The interpreted
  :class:`~repro.hdl.simulator.Simulator` yields 0/1 entries read straight
  from its value array; the compiled engine yields *lane words* (bit ``k``
  of each entry is lane ``k``'s value) produced by the ``__capture`` closure
  codegenned into the kernel, so capture survives compilation and hidden
  closure-cell registers stay samplable.  :meth:`ProbeSet.decode` extracts
  one lane and reassembles the little-endian buses.

* **value probes** (``kind="values"``) — each sample is a flat tuple with
  one already-assembled integer per signal (the behavioral RTL array and
  the chip model expose state this way).  Decoding is a zip; the lane
  argument is ignored.

:func:`mmmc_probe_set` builds the standard probe set over a
:class:`~repro.systolic.mmmc_netlist.MMMCPorts` — controller state, cycle
counter, every fault-injectable register class, RESULT and DONE — chosen so
the compiled engine needs **no extra materialization**: every probed wire
is a register Q (read from its closure cell), a primary input/output, or an
already-watched tap.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.hdl.netlist import Wire

__all__ = ["ProbeSet", "mmmc_probe_set", "make_sampler"]


class ProbeSet:
    """An ordered mapping of signal names to their sample-tuple layout."""

    __slots__ = ("kind", "names", "_layout", "widths", "wire_indices")

    def __init__(self, kind: str, layout: Sequence[Tuple[str, Sequence[int]]]):
        if kind not in ("wires", "values"):
            raise SimulationError(f"probe kind must be 'wires' or 'values', got {kind!r}")
        self.kind = kind
        self.names: Tuple[str, ...] = tuple(name for name, _ in layout)
        if len(set(self.names)) != len(self.names):
            raise SimulationError("duplicate probe names in probe set")
        self._layout: Dict[str, Tuple[int, int]] = {}
        flat: List[int] = []
        for name, wires in layout:
            self._layout[name] = (len(flat), len(wires))
            flat.extend(wires)
        self.wire_indices: Tuple[int, ...] = tuple(flat)
        if kind == "wires":
            self.widths = {name: self._layout[name][1] for name in self.names}
        else:
            # value probes carry whole integers; width is per-signal metadata
            self.widths = {name: max(self._layout[name][1], 1) for name in self.names}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_wires(cls, signals: Sequence[Tuple[str, object]]) -> "ProbeSet":
        """Build a wire probe set from ``(name, Wire-or-bus)`` pairs."""
        layout: List[Tuple[str, List[int]]] = []
        for name, w in signals:
            if isinstance(w, Wire):
                layout.append((name, [w.index]))
            else:
                layout.append((name, [wire.index for wire in w]))
        return cls("wires", layout)

    @classmethod
    def from_values(cls, signals: Sequence[Tuple[str, int]]) -> "ProbeSet":
        """Build a value probe set from ``(name, bit_width)`` pairs.

        Samples are tuples of one integer per signal, in ``signals`` order;
        the width is display metadata for the VCD/ASCII renderers.
        """
        return cls("values", [(name, [0] * max(int(width), 1)) for name, width in signals])

    # ------------------------------------------------------------------
    def width(self, name: str) -> int:
        return self.widths[name]

    def decode(self, sample: Sequence[int], lane: int = 0) -> Dict[str, int]:
        """Named integer values of one sample (one lane for wire probes)."""
        out: Dict[str, int] = {}
        if self.kind == "values":
            for i, name in enumerate(self.names):
                out[name] = int(sample[i])
            return out
        for name in self.names:
            off, width = self._layout[name]
            acc = 0
            for b in range(width):
                acc |= ((sample[off + b] >> lane) & 1) << b
            out[name] = acc
        return out

    def decode_history(
        self, samples: Sequence[Sequence[int]], lane: int = 0
    ) -> Dict[str, List[int]]:
        """Per-signal value histories across a window of samples."""
        hist: Dict[str, List[int]] = {name: [] for name in self.names}
        for s in samples:
            vals = self.decode(s, lane)
            for name in self.names:
                hist[name].append(vals[name])
        return hist


def mmmc_probe_set(ports) -> ProbeSet:
    """The standard flight-recorder probe set over an elaborated MMMC.

    Covers the controller state bits, the MUL-cycle counter, every register
    class :meth:`GateLevelMMMC.fault_sites` can flip (``t``/``c0``/``c1``,
    both pipelines, ``x_shift``, ``RESULT``) and the DONE flag — so any
    injected SEU lands on a recorded signal.
    """
    core = ports.core
    s0, s1 = ports.state
    return ProbeSet.from_wires(
        [
            ("ctl.s0", s0),
            ("ctl.s1", s1),
            ("ctr", ports.counter),
            ("x_shift", ports.x_shift),
            ("t", core.t_regs),
            ("c0", core.c0_regs),
            ("c1", core.c1_regs),
            ("x_pipe", core.x_pipe_regs),
            ("m_pipe", core.m_pipe_regs),
            ("result", ports.result),
            ("done", ports.done),
        ]
    )


def make_sampler(sim, probes: ProbeSet) -> Callable[[], Tuple[int, ...]]:
    """Zero-argument sampler returning one flat wire sample from ``sim``.

    For the interpreted :class:`~repro.hdl.simulator.Simulator` this reads
    the value array directly (peek-based taps).  For a
    :class:`~repro.hdl.compiled.CompiledSimulator` it returns the kernel's
    codegenned ``capture`` closure — the only way to observe hidden
    closure-cell registers without flushing — and requires the simulator to
    have been built with the same probe layout.
    """
    if probes.kind != "wires":
        raise SimulationError("make_sampler needs a wire probe set")
    capture = getattr(sim, "capture", None)
    if capture is not None:  # CompiledSimulator
        if tuple(getattr(sim, "probe_wires", ())) != probes.wire_indices:
            raise SimulationError(
                "compiled simulator was not built with this probe set; pass "
                "probes=probe_set.wire_indices when constructing it"
            )
        return capture
    return sim.sampler(probes.wire_indices)
