"""Gate and flip-flop census of a netlist.

Section 4.3 of the paper gives a closed-form area inventory for the
systolic array:

    (5l − 3) XOR + (7l − 7) AND + (4l − 5) OR gates and 4l flip-flops.

:func:`census` counts what an elaborated circuit *actually* contains, so
the Fig. 2 benchmark can print the paper's formula next to the measured
inventory (they differ slightly — the paper's accounting assumes a
particular FA decomposition; see EXPERIMENTS.md).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.hdl.gates import GateKind
from repro.hdl.netlist import Circuit

__all__ = ["GateCensus", "census", "paper_array_formula"]


@dataclass(frozen=True)
class GateCensus:
    """Gate/FF counts of one circuit."""

    by_kind: Dict[str, int]
    flip_flops: int

    @property
    def total_gates(self) -> int:
        return sum(self.by_kind.values())

    def get(self, kind: GateKind) -> int:
        return self.by_kind.get(kind.value, 0)

    def as_row(self) -> Dict[str, int]:
        """Flat dict suitable for table rendering."""
        row = dict(self.by_kind)
        row["FF"] = self.flip_flops
        row["total_gates"] = self.total_gates
        return row


def census(circuit: Circuit) -> GateCensus:
    """Count gates by kind and flip-flops in ``circuit``."""
    counts = Counter(g.kind.value for g in circuit.gates)
    return GateCensus(by_kind=dict(counts), flip_flops=len(circuit.dffs))


def paper_array_formula(l: int) -> Dict[str, int]:
    """The paper's Section 4.3 area inventory for bit length ``l``.

    Returns the XOR/AND/OR/FF counts the paper states for the systolic
    array alone (registers of the surrounding MMMC excluded).
    """
    return {
        "xor": 5 * l - 3,
        "and": 7 * l - 7,
        "or": 4 * l - 5,
        "FF": 4 * l,
    }
