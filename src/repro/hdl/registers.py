"""Structural sequential building blocks.

These helpers elaborate the datapath/control elements of Fig. 3 — parallel
registers, the right-shifting X register, the iteration counter and the
comparator — entirely out of DFFs and 2-input gates, so the full MMMC can
exist as a single flat netlist for census, technology mapping and
gate-level simulation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import HardwareModelError
from repro.hdl.netlist import Circuit, Wire

__all__ = [
    "mux2",
    "mux2_bus",
    "register",
    "shift_register_right",
    "counter",
    "equality_comparator",
    "ripple_adder",
    "ripple_increment",
]


def mux2(circuit: Circuit, sel: Wire, a: Wire, b: Wire, name: str = "mux") -> Wire:
    """2:1 multiplexer: returns ``b`` when ``sel`` else ``a``.

    Built as ``(a AND NOT sel) OR (b AND sel)`` — 2 AND + 1 OR + 1 NOT.
    """
    nsel = circuit.not_(sel, name=f"{name}.nsel")
    pa = circuit.and_(a, nsel, name=f"{name}.a")
    pb = circuit.and_(b, sel, name=f"{name}.b")
    return circuit.or_(pa, pb, name=f"{name}.o")


def mux2_bus(
    circuit: Circuit, sel: Wire, a: List[Wire], b: List[Wire], name: str = "mux"
) -> List[Wire]:
    """Bitwise 2:1 multiplexer over equal-width buses."""
    if len(a) != len(b):
        raise HardwareModelError(f"mux bus widths differ: {len(a)} vs {len(b)}")
    return [mux2(circuit, sel, a[i], b[i], name=f"{name}[{i}]") for i in range(len(a))]


def register(
    circuit: Circuit,
    d: List[Wire],
    name: str = "reg",
    enable: Optional[Wire] = None,
    reset_value: int = 0,
    clear: Optional[Wire] = None,
) -> List[Wire]:
    """Parallel-load register; returns the Q bus (little-endian)."""
    return [
        circuit.dff(
            d[i],
            name=f"{name}[{i}]",
            enable=enable,
            reset_value=(reset_value >> i) & 1,
            clear=clear,
        )
        for i in range(len(d))
    ]


def shift_register_right(
    circuit: Circuit,
    load_data: List[Wire],
    load: Wire,
    shift: Wire,
    name: str = "shreg",
    fill: Optional[Wire] = None,
) -> List[Wire]:
    """Right-shifting register with parallel load (the X register of Fig. 3).

    Priority: ``load`` wins over ``shift``.  On shift, bit ``i`` takes bit
    ``i+1`` and the MSB takes ``fill`` (default constant 0 — the paper fills
    the MSB with 0 so the final iteration sees X(0) = 0).  Returns the Q bus;
    ``q[0]`` is the serial output X(0).
    """
    width = len(load_data)
    if fill is None:
        fill = circuit.const0
    # Placeholder D wires let the DFFs exist before their input logic (the
    # next-state muxes read the DFF outputs); _drive closes each placeholder
    # with a BUF once the logic is built.  The register breaks the cycle, so
    # levelization still sees a DAG.
    #
    # One mux per bit (load overrides the shifted-in value) plus a shared
    # clock enable keeps the per-bit D logic within a single LUT4 — how a
    # loadable shift register actually maps on a Virtex slice.
    en = circuit.or_(load, shift, name=f"{name}.en")
    d_wires = [circuit.new_wire(f"{name}.d{i}") for i in range(width)]
    q = [
        circuit.dff(d_wires[i], name=f"{name}[{i}]", enable=en) for i in range(width)
    ]
    for i in range(width):
        shifted_in = q[i + 1] if i + 1 < width else fill
        nxt = mux2(circuit, load, shifted_in, load_data[i], name=f"{name}.ld{i}")
        _drive(circuit, d_wires[i], nxt)
    return q


def _drive(circuit: Circuit, placeholder: Wire, source: Wire) -> None:
    """Drive a placeholder wire from ``source`` with a BUF gate.

    The placeholder was created undriven so DFFs could reference it before
    its logic existed; the BUF closes the loop structurally (the simulator's
    levelization still sees a pure DAG because the DFF breaks the cycle).
    """
    idx = circuit._check_wire(placeholder)
    circuit._mark_driven(placeholder)
    from repro.hdl.gates import Gate, GateKind

    circuit.gates.append(Gate(kind=GateKind.BUF, inputs=(source.index,), output=idx))


def ripple_adder(
    circuit: Circuit, a: List[Wire], b: List[Wire], name: str = "add"
) -> Tuple[List[Wire], Wire]:
    """Ripple-carry adder; returns ``(sum bus, carry out)``."""
    from repro.hdl.gates import full_adder, half_adder

    if len(a) != len(b):
        raise HardwareModelError(f"adder widths differ: {len(a)} vs {len(b)}")
    out: List[Wire] = []
    carry: Optional[Wire] = None
    for i in range(len(a)):
        if carry is None:
            s, carry = half_adder(circuit, a[i], b[i], name=f"{name}.ha{i}")
        else:
            s, carry = full_adder(circuit, a[i], b[i], carry, name=f"{name}.fa{i}")
        out.append(s)
    assert carry is not None
    return out, carry


def ripple_increment(
    circuit: Circuit, a: List[Wire], name: str = "inc"
) -> Tuple[List[Wire], Wire]:
    """Increment-by-one logic: a chain of half adders."""
    from repro.hdl.gates import half_adder

    out: List[Wire] = []
    carry = circuit.const1
    for i in range(len(a)):
        s, carry = half_adder(circuit, a[i], carry, name=f"{name}.ha{i}")
        out.append(s)
    return out, carry


def counter(
    circuit: Circuit,
    width: int,
    increment: Wire,
    reset_to_zero: Wire,
    name: str = "ctr",
) -> List[Wire]:
    """Synchronous counter with increment-enable and synchronous clear.

    This is the ``log2(l+2)``-bit iteration counter of Fig. 3.  Clear
    dominates increment, matching the ASM (IDLE resets, MUL2 increments);
    both ride the flip-flops' dedicated CE/SR pins, and the increment
    chain maps onto the slice carry logic.
    """
    d_wires = [circuit.new_wire(f"{name}.d{i}") for i in range(width)]
    q = [
        circuit.dff(
            d_wires[i], name=f"{name}[{i}]", enable=increment, clear=reset_to_zero
        )
        for i in range(width)
    ]
    inc, _ = ripple_increment(circuit, q, name=f"{name}.inc")
    for i in range(width):
        _drive(circuit, d_wires[i], inc[i])
    return q


def equality_comparator(
    circuit: Circuit, bus: List[Wire], constant: int, name: str = "cmp"
) -> Wire:
    """Wide equality test ``bus == constant`` as an XNOR/AND reduction tree."""
    if constant < 0 or constant >> len(bus):
        raise HardwareModelError(
            f"comparator constant {constant} does not fit width {len(bus)}"
        )
    terms = []
    for i, w in enumerate(bus):
        bit = (constant >> i) & 1
        terms.append(
            circuit.buf(w, name=f"{name}.t{i}") if bit else circuit.not_(w, name=f"{name}.t{i}")
        )
    # Balanced AND reduction keeps the comparator depth logarithmic.
    while len(terms) > 1:
        nxt = []
        for j in range(0, len(terms) - 1, 2):
            nxt.append(circuit.and_(terms[j], terms[j + 1], name=f"{name}.and"))
        if len(terms) % 2:
            nxt.append(terms[-1])
        terms = nxt
    return terms[0]
