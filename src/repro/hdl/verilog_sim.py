"""A tiny interpreter for the Verilog subset our exporter emits.

:mod:`repro.hdl.verilog` produces a restricted, regular dialect — one
``assign`` per gate (binary/unary ops, optional single negation), one
clocked statement per flip-flop in one ``always`` block, constant wires.
This module parses exactly that dialect back into an executable model and
:func:`cosimulate` drives it in lockstep with the native
:class:`~repro.hdl.Simulator` on random stimulus, asserting equal outputs
every cycle.

That closes the loop on the export path the same way
:mod:`repro.fpga.lutsim` closes it for the technology mapper: the emitted
text is proven to *mean* the circuit, not just resemble it.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import HardwareModelError
from repro.hdl.netlist import Circuit
from repro.hdl.simulator import Simulator
from repro.hdl.verilog import VerilogModule, export_verilog

__all__ = ["ParsedModule", "parse_verilog", "cosimulate"]

_ASSIGN = re.compile(
    r"^\s*assign\s+(\w+)\s*=\s*(.+?)\s*;\s*$"
)
_CONST_WIRE = re.compile(r"^\s*wire\s+(\w+)\s*=\s*1'b([01])\s*;\s*$")
_FF = re.compile(
    r"^\s*if \(rst\) (\w+) <= 1'b([01]); else "
    r"(?:if \((\w+)\) \1 <= 1'b0; else )?"
    r"(?:if \((\w+)\) )?\1 <= (\w+);\s*$"
)
_BINOP = re.compile(r"^(~?)\((\w+)\s*([&|^])\s*(\w+)\)$|^(\w+)\s*([&|^])\s*(\w+)$")
_UNOP = re.compile(r"^~(\w+)$")
_ID = re.compile(r"^\w+$")


@dataclass
class _FFDef:
    q: str
    d: str
    reset_value: int
    enable: Optional[str]
    clear: Optional[str]


@dataclass
class ParsedModule:
    """Executable model of one exported module."""

    name: str
    inputs: List[str]
    outputs: List[str]
    assigns: List[Tuple[str, "function"]] = field(repr=False, default_factory=list)
    ffs: List[_FFDef] = field(repr=False, default_factory=list)
    constants: Dict[str, int] = field(default_factory=dict)

    def simulator(self) -> "ParsedSimulator":
        return ParsedSimulator(self)


class ParsedSimulator:
    """Two-phase simulator over the parsed module (mirrors hdl.Simulator)."""

    def __init__(self, module: ParsedModule) -> None:
        self.m = module
        self.values: Dict[str, int] = {}
        for name, v in module.constants.items():
            self.values[name] = v
        for name in module.inputs:
            self.values.setdefault(name, 0)
        for ff in module.ffs:
            self.values[ff.q] = 0
        self.settle()

    def reset(self) -> None:
        for ff in self.m.ffs:
            self.values[ff.q] = ff.reset_value
        self.settle()

    def poke(self, name: str, value: int) -> None:
        if name not in self.m.inputs:
            raise HardwareModelError(f"{name!r} is not an input")
        self.values[name] = value & 1

    def peek(self, name: str) -> int:
        return self.values[name]

    def settle(self) -> None:
        for target, fn in self.m.assigns:
            self.values[target] = fn(self.values)

    def clock(self) -> None:
        updates = []
        v = self.values
        for ff in self.m.ffs:
            if ff.clear is not None and v[ff.clear]:
                updates.append((ff.q, 0))
                continue
            if ff.enable is not None and not v[ff.enable]:
                continue
            updates.append((ff.q, v[ff.d]))
        for q, val in updates:
            v[q] = val

    def step(self) -> None:
        self.settle()
        self.clock()


def _compile_expr(expr: str):
    """Compile the exporter's expression grammar to a closure."""
    expr = expr.strip()
    m = _UNOP.match(expr)
    if m:
        a = m.group(1)
        return lambda v, a=a: 1 - v[a]
    m = _BINOP.match(expr)
    if m:
        if m.group(2) is not None:
            neg, a, op, b = m.group(1) == "~", m.group(2), m.group(3), m.group(4)
        else:
            neg, a, op, b = False, m.group(5), m.group(6), m.group(7)
        if op == "&":
            fn = lambda v, a=a, b=b: v[a] & v[b]
        elif op == "|":
            fn = lambda v, a=a, b=b: v[a] | v[b]
        else:
            fn = lambda v, a=a, b=b: v[a] ^ v[b]
        if neg:
            inner = fn
            fn = lambda v, inner=inner: 1 - inner(v)
        return fn
    if _ID.match(expr):
        return lambda v, a=expr: v[a]
    raise HardwareModelError(f"unsupported expression {expr!r}")


def parse_verilog(text: str) -> ParsedModule:
    """Parse the exporter's dialect into an executable module."""
    lines = text.splitlines()
    name = None
    inputs: List[str] = []
    outputs: List[str] = []
    assigns: List[Tuple[str, object]] = []
    ffs: List[_FFDef] = []
    constants: Dict[str, int] = {}
    in_always = False
    for line in lines:
        s = line.strip()
        if s.startswith("module "):
            name = s.split()[1].rstrip("(").strip()
            continue
        if s.startswith("input wire "):
            ident = s[len("input wire "):].rstrip(";").strip()
            if ident not in ("clk", "rst"):
                inputs.append(ident)
            continue
        if s.startswith("output wire "):
            outputs.append(s[len("output wire "):].rstrip(";").strip())
            continue
        cm = _CONST_WIRE.match(line)
        if cm:
            constants[cm.group(1)] = int(cm.group(2))
            continue
        if s.startswith("always @(posedge clk)"):
            in_always = True
            continue
        if in_always:
            if s == "end":
                in_always = False
                continue
            fm = _FF.match(line)
            if not fm:
                raise HardwareModelError(f"unparseable FF line: {s!r}")
            ffs.append(
                _FFDef(
                    q=fm.group(1),
                    reset_value=int(fm.group(2)),
                    clear=fm.group(3),
                    enable=fm.group(4),
                    d=fm.group(5),
                )
            )
            continue
        am = _ASSIGN.match(line)
        if am:
            assigns.append((am.group(1), _compile_expr(am.group(2))))
            continue
    if name is None:
        raise HardwareModelError("no module declaration found")
    return ParsedModule(
        name=name,
        inputs=inputs,
        outputs=outputs,
        assigns=assigns,
        ffs=ffs,
        constants=constants,
    )


def cosimulate(
    circuit: Circuit,
    cycles: int = 30,
    seed: int = 0,
    module: Optional[VerilogModule] = None,
) -> int:
    """Run the native simulator and the parsed Verilog in lockstep.

    Random single-bit stimulus on every primary input each cycle; every
    primary output is compared after settling, every cycle.  Returns the
    number of comparisons made; raises on the first divergence.
    """
    vm = module or export_verilog(circuit)
    parsed = parse_verilog(vm.text)
    psim = parsed.simulator()
    psim.reset()
    nsim = Simulator(circuit)
    nsim.reset()
    rng = random.Random(seed)
    checked = 0
    out_pairs = []
    # Map output port names: the exporter emits them in circuit.outputs order.
    for (oname, widx), port in zip(circuit.outputs.items(), parsed.outputs):
        out_pairs.append((oname, widx, port))
    in_pairs = []
    for iname, widx in circuit.inputs.items():
        in_pairs.append((widx, vm.wire_names[widx]))
    for _ in range(cycles):
        for widx, port in in_pairs:
            bit = rng.getrandbits(1)
            nsim.values[widx] = bit
            psim.poke(port, bit)
        nsim.settle()
        psim.settle()
        for oname, widx, port in out_pairs:
            if nsim.values[widx] != psim.peek(port):
                raise HardwareModelError(
                    f"Verilog diverges on output {oname!r} "
                    f"({nsim.values[widx]} vs {psim.peek(port)})"
                )
            checked += 1
        nsim.clock()
        psim.clock()
    return checked
