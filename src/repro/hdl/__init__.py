"""Gate-level hardware substrate.

A small structural HDL: circuits are built from 1- and 2-input gates and
D flip-flops, then simulated with a levelized two-phase (combinational
settle / clock edge) simulator.  This substitutes for the FPGA in the
paper's evaluation: the systolic multiplier of Fig. 1/Fig. 2 is elaborated
gate-by-gate into a :class:`~repro.hdl.netlist.Circuit`, simulated for
bit-exactness against the algorithmic golden model, censused for the area
formula of Section 4.3, and technology-mapped by :mod:`repro.fpga`.
"""

from repro.hdl.netlist import Circuit, Wire
from repro.hdl.gates import GateKind
from repro.hdl.simulator import Simulator, levelize
from repro.hdl.compiled import (
    CompiledSimulator,
    compile_kernel,
    pack_lanes,
    unpack_lanes,
)
from repro.hdl.registers import (
    register,
    shift_register_right,
    counter,
    equality_comparator,
)
from repro.hdl.census import GateCensus, census
from repro.hdl.probes import ProbeSet, make_sampler, mmmc_probe_set
from repro.hdl.waveform import ParsedVCD, WaveformRecorder, parse_vcd, vcd_id

__all__ = [
    "Circuit",
    "Wire",
    "GateKind",
    "Simulator",
    "CompiledSimulator",
    "compile_kernel",
    "pack_lanes",
    "unpack_lanes",
    "levelize",
    "register",
    "shift_register_right",
    "counter",
    "equality_comparator",
    "GateCensus",
    "census",
    "ProbeSet",
    "make_sampler",
    "mmmc_probe_set",
    "ParsedVCD",
    "WaveformRecorder",
    "parse_vcd",
    "vcd_id",
]
