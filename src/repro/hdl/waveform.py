"""Waveform capture for gate-level and RTL simulations.

:class:`WaveformRecorder` snapshots named signals every cycle and can render
an ASCII timing diagram or a Value Change Dump (VCD) file readable by
GTKWave — the tooling an FPGA engineer would use to inspect the systolic
pipeline, exercised by ``examples/waveform_trace.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["WaveformRecorder", "parse_vcd", "vcd_id"]


def vcd_id(index: int) -> str:
    """Short VCD identifier code for the ``index``-th signal.

    VCD id codes are strings over the printable ASCII range ``!``..``~``
    (33..126, 94 symbols).  A single character only covers 94 signals, so
    indices beyond that roll over to multi-character codes (``!!``, ``"!``,
    ...) exactly like GTKWave's own writers do.
    """
    if index < 0:
        raise ValueError(f"signal index must be >= 0, got {index}")
    chars = []
    index += 1  # bijective base-94: no leading-zero ambiguity
    while index > 0:
        index, rem = divmod(index - 1, 94)
        chars.append(chr(33 + rem))
    return "".join(chars)


def parse_vcd(text: str) -> "ParsedVCD":
    """Parse a VCD document back into per-signal value histories.

    Inverse of :meth:`WaveformRecorder.to_vcd` (and of the flight
    recorder's capture-window export), used by tests and the post-mortem
    tooling to compare a dumped window against a clean re-run.  Handles
    the subset this package emits — ``$var wire``, scalar ``0id``/``1id``
    and vector ``b101 id`` changes, ``#time`` markers, ``$comment``
    blocks — which is also the subset every VCD writer produces.
    """
    names: Dict[str, str] = {}  # id code -> signal name
    widths: Dict[str, int] = {}
    comments: List[str] = []
    start_time: Optional[int] = None
    end_time = 0
    changes: Dict[str, List[Tuple[int, int]]] = {}
    now = 0
    tokens = text.split("\n")
    in_defs = True
    i = 0
    while i < len(tokens):
        line = tokens[i].strip()
        i += 1
        if not line:
            continue
        if line.startswith("$comment"):
            body = line[len("$comment"):]
            while "$end" not in body and i < len(tokens):
                body += "\n" + tokens[i]
                i += 1
            comments.append(body.replace("$end", "").strip())
            continue
        if in_defs:
            if line.startswith("$var"):
                parts = line.split()
                # $var wire <width> <id> <name> $end
                if len(parts) >= 5:
                    widths[parts[4]] = int(parts[2])
                    names[parts[3]] = parts[4]
            elif line.startswith("$enddefinitions"):
                in_defs = False
            continue
        if line.startswith("#"):
            now = int(line[1:])
            if start_time is None:
                start_time = now
            end_time = max(end_time, now)
            continue
        if line.startswith("b"):
            value_txt, _, code = line[1:].partition(" ")
            name = names.get(code.strip())
            if name is not None:
                changes.setdefault(name, []).append((now, int(value_txt, 2)))
            continue
        if line[0] in "01" and len(line) > 1:
            name = names.get(line[1:])
            if name is not None:
                changes.setdefault(name, []).append((now, int(line[0])))
    return ParsedVCD(
        signals=list(names.values()),
        widths=widths,
        changes=changes,
        start_time=start_time if start_time is not None else 0,
        end_time=end_time,
        comments=comments,
    )


class ParsedVCD:
    """Decoded VCD content: value-change lists plus a sampled view."""

    def __init__(
        self,
        signals: List[str],
        widths: Dict[str, int],
        changes: Dict[str, List[Tuple[int, int]]],
        start_time: int,
        end_time: int,
        comments: List[str],
    ) -> None:
        self.signals = signals
        self.widths = widths
        self.changes = changes
        self.start_time = start_time
        self.end_time = end_time
        self.comments = comments

    def value_at(self, name: str, time: int) -> Optional[int]:
        """The signal's value at ``time`` (last change at or before it)."""
        value = None
        for t, v in self.changes.get(name, []):
            if t > time:
                break
            value = v
        return value

    def history(self, name: str) -> List[int]:
        """Per-timestep values over ``[start_time, end_time)``."""
        out: List[int] = []
        value = 0
        pending = list(self.changes.get(name, []))
        j = 0
        for t in range(self.start_time, self.end_time):
            while j < len(pending) and pending[j][0] <= t:
                value = pending[j][1]
                j += 1
            out.append(value)
        return out


class WaveformRecorder:
    """Collects per-cycle samples of named integer-valued signals.

    Parameters
    ----------
    probes:
        Mapping of signal name -> zero-argument callable returning the
        signal's current integer value.  Using callables decouples the
        recorder from any particular simulator: gate-level simulations pass
        ``lambda: sim.peek(bus)``, RTL simulations pass attribute getters.
    widths:
        Optional bit width per signal (defaults to 1); used by the VCD
        export and the ASCII renderer's formatting.
    """

    def __init__(
        self,
        probes: Dict[str, Callable[[], int]],
        widths: Dict[str, int] = None,
    ) -> None:
        self._probes = dict(probes)
        self._widths = dict(widths or {})
        self.samples: Dict[str, List[int]] = {name: [] for name in self._probes}
        self.cycles = 0

    @classmethod
    def from_history(
        cls,
        samples: Dict[str, List[int]],
        widths: Dict[str, int] = None,
    ) -> "WaveformRecorder":
        """Build a recorder around already-collected per-signal histories.

        Used by the flight recorder to reuse the VCD/ASCII renderers on a
        frozen capture window without re-sampling anything.
        """
        rec = cls({name: (lambda: 0) for name in samples}, widths)
        rec.samples = {name: list(vals) for name, vals in samples.items()}
        lengths = {len(v) for v in rec.samples.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged signal histories: lengths {sorted(lengths)}")
        rec.cycles = lengths.pop() if lengths else 0
        return rec

    def width(self, name: str) -> int:
        return self._widths.get(name, 1)

    def sample(self) -> None:
        """Record the current value of every probe (call once per cycle)."""
        for name, fn in self._probes.items():
            self.samples[name].append(int(fn()))
        self.cycles += 1

    # ------------------------------------------------------------------
    def history(self, name: str) -> List[int]:
        """All recorded values of one signal."""
        return list(self.samples[name])

    def changes(self, name: str) -> List[Tuple[int, int]]:
        """(cycle, new_value) pairs at which the signal changed."""
        out: List[Tuple[int, int]] = []
        prev = None
        for cyc, v in enumerate(self.samples[name]):
            if v != prev:
                out.append((cyc, v))
                prev = v
        return out

    # ------------------------------------------------------------------
    def ascii_diagram(self, names: Sequence[str] = None, last: int = None) -> str:
        """Render single-bit signals as waveforms, buses as hex value lanes."""
        names = list(names or self._probes)
        span = range(self.cycles)
        if last is not None:
            span = range(max(0, self.cycles - last), self.cycles)
        lines = []
        label_w = max((len(n) for n in names), default=0) + 1
        for name in names:
            vals = self.samples[name]
            if self.width(name) == 1:
                body = "".join("▔" if vals[c] else "▁" for c in span)
            else:
                cells = []
                prev = None
                for c in span:
                    if vals[c] != prev:
                        cells.append(f"|{vals[c]:x}")
                        prev = vals[c]
                    else:
                        cells.append(".")
                body = "".join(cells)
            lines.append(f"{name:<{label_w}}{body}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_vcd(self, timescale: str = "1 ns") -> str:
        """Serialize the capture as a VCD document (GTKWave compatible)."""
        ids = {}
        # VCD short identifiers: multi-char codes over printable ASCII.
        for i, name in enumerate(self._probes):
            ids[name] = vcd_id(i)
        out = [
            "$date repro waveform $end",
            "$version repro.hdl.waveform $end",
            f"$timescale {timescale} $end",
            "$scope module repro $end",
        ]
        for name in self._probes:
            w = self.width(name)
            safe = name.replace(" ", "_")
            out.append(f"$var wire {w} {ids[name]} {safe} $end")
        out.append("$upscope $end")
        out.append("$enddefinitions $end")
        prev: Dict[str, int] = {}
        for cyc in range(self.cycles):
            emitted_time = False
            for name in self._probes:
                v = self.samples[name][cyc]
                if prev.get(name) == v:
                    continue
                if not emitted_time:
                    out.append(f"#{cyc}")
                    emitted_time = True
                if self.width(name) == 1:
                    out.append(f"{v}{ids[name]}")
                else:
                    out.append(f"b{v:b} {ids[name]}")
                prev[name] = v
        out.append(f"#{self.cycles}")
        return "\n".join(out) + "\n"
