"""Waveform capture for gate-level and RTL simulations.

:class:`WaveformRecorder` snapshots named signals every cycle and can render
an ASCII timing diagram or a Value Change Dump (VCD) file readable by
GTKWave — the tooling an FPGA engineer would use to inspect the systolic
pipeline, exercised by ``examples/waveform_trace.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

__all__ = ["WaveformRecorder"]


class WaveformRecorder:
    """Collects per-cycle samples of named integer-valued signals.

    Parameters
    ----------
    probes:
        Mapping of signal name -> zero-argument callable returning the
        signal's current integer value.  Using callables decouples the
        recorder from any particular simulator: gate-level simulations pass
        ``lambda: sim.peek(bus)``, RTL simulations pass attribute getters.
    widths:
        Optional bit width per signal (defaults to 1); used by the VCD
        export and the ASCII renderer's formatting.
    """

    def __init__(
        self,
        probes: Dict[str, Callable[[], int]],
        widths: Dict[str, int] = None,
    ) -> None:
        self._probes = dict(probes)
        self._widths = dict(widths or {})
        self.samples: Dict[str, List[int]] = {name: [] for name in self._probes}
        self.cycles = 0

    def width(self, name: str) -> int:
        return self._widths.get(name, 1)

    def sample(self) -> None:
        """Record the current value of every probe (call once per cycle)."""
        for name, fn in self._probes.items():
            self.samples[name].append(int(fn()))
        self.cycles += 1

    # ------------------------------------------------------------------
    def history(self, name: str) -> List[int]:
        """All recorded values of one signal."""
        return list(self.samples[name])

    def changes(self, name: str) -> List[Tuple[int, int]]:
        """(cycle, new_value) pairs at which the signal changed."""
        out: List[Tuple[int, int]] = []
        prev = None
        for cyc, v in enumerate(self.samples[name]):
            if v != prev:
                out.append((cyc, v))
                prev = v
        return out

    # ------------------------------------------------------------------
    def ascii_diagram(self, names: Sequence[str] = None, last: int = None) -> str:
        """Render single-bit signals as waveforms, buses as hex value lanes."""
        names = list(names or self._probes)
        span = range(self.cycles)
        if last is not None:
            span = range(max(0, self.cycles - last), self.cycles)
        lines = []
        label_w = max((len(n) for n in names), default=0) + 1
        for name in names:
            vals = self.samples[name]
            if self.width(name) == 1:
                body = "".join("▔" if vals[c] else "▁" for c in span)
            else:
                cells = []
                prev = None
                for c in span:
                    if vals[c] != prev:
                        cells.append(f"|{vals[c]:x}")
                        prev = vals[c]
                    else:
                        cells.append(".")
                body = "".join(cells)
            lines.append(f"{name:<{label_w}}{body}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_vcd(self, timescale: str = "1 ns") -> str:
        """Serialize the capture as a VCD document (GTKWave compatible)."""
        ids = {}
        # VCD short identifiers: printable ASCII starting at '!'.
        for i, name in enumerate(self._probes):
            ids[name] = chr(33 + i)
        out = [
            "$date repro waveform $end",
            "$version repro.hdl.waveform $end",
            f"$timescale {timescale} $end",
            "$scope module repro $end",
        ]
        for name in self._probes:
            w = self.width(name)
            safe = name.replace(" ", "_")
            out.append(f"$var wire {w} {ids[name]} {safe} $end")
        out.append("$upscope $end")
        out.append("$enddefinitions $end")
        prev: Dict[str, int] = {}
        for cyc in range(self.cycles):
            emitted_time = False
            for name in self._probes:
                v = self.samples[name][cyc]
                if prev.get(name) == v:
                    continue
                if not emitted_time:
                    out.append(f"#{cyc}")
                    emitted_time = True
                if self.width(name) == 1:
                    out.append(f"{v}{ids[name]}")
                else:
                    out.append(f"b{v:b} {ids[name]}")
                prev[name] = v
        out.append(f"#{self.cycles}")
        return "\n".join(out) + "\n"
