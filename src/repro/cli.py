"""Command-line interface: ``python -m repro <command>`` (or just ``repro``).

Commands
--------
``tables``      regenerate Tables 1 and 2 (model vs paper)
``multiply``    one Montgomery multiplication through a chosen model
``exponentiate``one modular exponentiation with cycle accounting
``observe``     run an instrumented workload, print the metrics snapshot
``serve``       long-running JSON-lines modexp service loop (stdin→stdout)
``batch``       file-in/file-out batch modexp run over the serving engine
``backends``    list the registered serving backends and capabilities
``experiments`` list the experiment registry
``census``      gate/FF census + Virtex-E mapping of the MMMC at a given l
``fault``       run a fault-injection campaign (alias: ``fault-campaign``;
                ``--engine rtl|gate|compiled`` picks the substrate)
``obs``         observability utilities (``obs diff``: snapshot vs baseline
                and/or ``--require`` constraint expressions)
``bench-sim``   compare netlist simulator engines (interpreted/compiled/lanes)
``profile``     profiled workload → unified utilization attribution report
                (array occupancy vs the 2i+j model, lane fill, queue wait;
                ``--chip-ops N`` adds a chip stage with per-tile tracks)
``chip``        run an MMM workload through the multi-array chip model
                (wave-interleaved tiles, FIFO queues, dispatch policies)
``loadgen``     seeded workload generator → JSON-lines for ``repro batch``
                (Zipf keyring traffic, mixed exponents, open-loop bursts)
``top``         terminal live-stats view over a running /metrics endpoint

``multiply``, ``exponentiate`` and ``observe`` accept the observability
flags ``--trace out.json`` (Chrome trace-event timeline for Perfetto /
``chrome://tracing``), ``--trace-detail op|state|cycle``, ``--metrics``
(print a snapshot), ``--metrics-out path`` and ``--format json|prom``
(snapshot format: registry JSON or Prometheus text exposition).

``serve`` additionally takes ``--http-port`` (run the ``/metrics`` +
``/healthz`` scrape endpoint next to the loop), ``--stats-interval``
(periodic stats line on stderr) and the SLO flags ``--slo-margin`` /
``--slo-mode`` / ``--slo-budget`` / ``--no-slo`` shared with ``batch``.

``serve`` and ``batch`` share the self-healing flags (docs/ROBUSTNESS.md):
``--verify off|sampled|full`` + ``--verify-rate`` (online result
verification), ``--retries`` + ``--retry-backoff``, ``--breaker`` +
``--breaker-failures`` / ``--breaker-cooldown``, ``--failover``, and the
chaos-drill switches ``--chaos`` / ``--chaos-seed`` /
``--chaos-kill-rate`` / ``--chaos-exception-rate`` /
``--chaos-latency-rate`` / ``--chaos-bitflip-rate`` /
``--chaos-target-prefix``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.tables import render_table

__all__ = ["main", "build_parser"]


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    """The shared ``--trace`` / ``--metrics`` flag group."""
    grp = parser.add_argument_group("observability")
    grp.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON timeline (open in Perfetto)",
    )
    grp.add_argument(
        "--trace-detail",
        choices=("op", "state", "cycle"),
        default="state",
        help="span granularity for --trace (default: state segments)",
    )
    grp.add_argument(
        "--metrics",
        action="store_true",
        help="print a metrics snapshot after the run",
    )
    grp.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the metrics snapshot (format per --format)",
    )
    grp.add_argument(
        "--format",
        dest="metrics_format",
        choices=("json", "prom"),
        default="json",
        help="snapshot format: registry JSON or Prometheus text exposition",
    )


def _observation(args):
    """Build (registry, tracer) from the flags; either may be ``None``."""
    from repro.observability import MetricsRegistry, SpanTracer

    registry = (
        MetricsRegistry() if (args.metrics or args.metrics_out) else None
    )
    tracer = SpanTracer(detail=args.trace_detail) if args.trace else None
    return registry, tracer


def _write_metrics(args, registry, out) -> None:
    """Write the registry to ``--metrics-out`` in the ``--format`` shape."""
    if args.metrics_format == "prom":
        registry.write_prometheus(args.metrics_out)
    else:
        registry.write_json(args.metrics_out)
    out.write(
        f"[metrics written to {args.metrics_out} ({args.metrics_format})]\n"
    )


def _finish_observation(args, registry, tracer, out) -> None:
    """Export whatever the flags asked for, after the observed run."""
    if tracer is not None:
        tracer.write(args.trace)
        out.write(
            f"[trace: {len(tracer.events)} events over {tracer.clock.now} "
            f"cycles written to {args.trace} — open at https://ui.perfetto.dev]\n"
        )
    if registry is not None:
        if args.metrics_out:
            _write_metrics(args, registry, out)
        if args.metrics:
            if args.metrics_format == "prom":
                out.write(registry.to_prometheus())
            else:
                out.write(registry.render_text() + "\n")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Systolic Montgomery multiplier reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="regenerate Tables 1 and 2")

    mul = sub.add_parser("multiply", help="one Montgomery multiplication")
    mul.add_argument("x", type=lambda s: int(s, 0))
    mul.add_argument("y", type=lambda s: int(s, 0))
    mul.add_argument("modulus", type=lambda s: int(s, 0))
    mul.add_argument(
        "--model",
        choices=("golden", "rtl", "mmmc", "gate"),
        default="mmmc",
        help="which implementation tier to run",
    )
    mul.add_argument(
        "--arch",
        choices=("corrected", "paper"),
        default="corrected",
        help="array architecture (see DESIGN.md findings)",
    )
    mul.add_argument(
        "--engine",
        choices=("compiled", "interpreted"),
        default="compiled",
        help="netlist simulator engine (used by --model gate)",
    )
    _add_observability_flags(mul)

    ex = sub.add_parser("exponentiate", help="modular exponentiation")
    ex.add_argument("base", type=lambda s: int(s, 0))
    ex.add_argument("exponent", type=lambda s: int(s, 0))
    ex.add_argument("modulus", type=lambda s: int(s, 0))
    ex.add_argument(
        "--engine",
        choices=("golden", "rtl", "gate"),
        default="golden",
        help="golden big-int, behavioral RTL, or compiled gate-level netlist",
    )
    _add_observability_flags(ex)

    obs = sub.add_parser(
        "observe",
        help="run an instrumented workload and print the metrics snapshot",
    )
    obs.add_argument("--l", type=int, default=8, help="operand bit length")
    obs.add_argument(
        "--exponent",
        type=lambda s: int(s, 0),
        default=None,
        help="exponent (default: random l-bit, seeded)",
    )
    obs.add_argument("--engine", choices=("golden", "rtl", "gate"), default="rtl")
    obs.add_argument("--arch", choices=("corrected", "paper"), default="corrected")
    obs.add_argument("--seed", type=int, default=0)
    obs.add_argument(
        "--gate",
        action="store_true",
        help="also run one gate-level multiplication (populates hdl.* metrics)",
    )
    obs.add_argument(
        "--json",
        action="store_true",
        help="print the snapshot as JSON instead of text",
    )
    _add_observability_flags(obs)

    def _add_serving_flags(parser: argparse.ArgumentParser) -> None:
        grp = parser.add_argument_group("serving")
        grp.add_argument(
            "--backend",
            default="integer",
            help="serving backend name (see `repro backends`; default: integer)",
        )
        grp.add_argument("--workers", type=int, default=1, help="worker count")
        grp.add_argument(
            "--worker-kind",
            choices=("auto", "process", "thread", "inline", "shard"),
            default="auto",
            help="worker pool kind (auto: processes when the backend allows; "
            "shard: modulus-homed warm workers over binary batch frames)",
        )
        grp.add_argument(
            "--max-batch",
            type=int,
            default=32,
            help="coalescing chunk size / serve-loop flush threshold",
        )
        grp.add_argument(
            "--queue-limit",
            type=int,
            default=None,
            help="bounded in-flight window (default: 4 x workers)",
        )
        grp.add_argument(
            "--timeout",
            type=float,
            default=None,
            help="default per-request timeout in seconds",
        )
        slo = parser.add_argument_group("latency SLO (cycle budget)")
        slo.add_argument(
            "--slo-margin",
            type=float,
            default=1.0,
            help="multiplier on the Eq. (10) cycle budget (default: 1.0)",
        )
        slo.add_argument(
            "--slo-mode",
            choices=("corrected", "paper"),
            default="corrected",
            help="per-multiplication cost: corrected 3l+5 or paper 3l+4",
        )
        slo.add_argument(
            "--slo-budget",
            type=int,
            default=None,
            help="absolute cycle budget per request (bypasses the formula)",
        )
        slo.add_argument(
            "--no-slo",
            action="store_true",
            help="disable SLO tracking",
        )
        rob = parser.add_argument_group("robustness (see docs/ROBUSTNESS.md)")
        rob.add_argument(
            "--verify",
            choices=("off", "sampled", "full"),
            default="off",
            help="online result verification policy (default: off)",
        )
        rob.add_argument(
            "--verify-rate",
            type=float,
            default=0.1,
            help="sampling rate for --verify sampled (default: 0.1)",
        )
        rob.add_argument(
            "--retries",
            type=int,
            default=0,
            help="max attempts per request (0/1 = fail on first error)",
        )
        rob.add_argument(
            "--retry-backoff",
            type=float,
            default=0.01,
            help="base backoff in seconds between attempts (default: 0.01)",
        )
        rob.add_argument(
            "--breaker",
            action="store_true",
            help="enable per-backend circuit breakers",
        )
        rob.add_argument(
            "--breaker-failures",
            type=int,
            default=5,
            help="consecutive failures that trip a breaker (default: 5)",
        )
        rob.add_argument(
            "--breaker-cooldown",
            type=float,
            default=5.0,
            help="seconds an open breaker sheds traffic (default: 5.0)",
        )
        rob.add_argument(
            "--failover",
            action="store_true",
            help="retry via the next-cheapest capable backend when the "
            "primary's breaker is open",
        )
        ovl = parser.add_argument_group(
            "overload & graceful degradation (see docs/ROBUSTNESS.md)"
        )
        ovl.add_argument(
            "--overload",
            action="store_true",
            help="enable the graceful-degradation ladder (deadline "
            "admission, CoDel shedding of batch traffic; add --admit-rate"
            "/--hedge/--brownout for the other rungs)",
        )
        ovl.add_argument(
            "--admit-rate",
            type=float,
            default=None,
            help="token-bucket admission rate in requests/s (implies "
            "--overload; interactive traffic keeps a reserve slice)",
        )
        ovl.add_argument(
            "--interactive-reserve",
            type=float,
            default=0.25,
            help="bucket fraction only interactive traffic may drain "
            "(default: 0.25)",
        )
        ovl.add_argument(
            "--shed-target",
            type=float,
            default=0.05,
            help="CoDel sojourn target in seconds for batch traffic "
            "(default: 0.05)",
        )
        ovl.add_argument(
            "--default-budget",
            type=float,
            default=None,
            help="relative deadline in seconds stamped on budget-less "
            "batch requests at admission",
        )
        ovl.add_argument(
            "--interactive-budget",
            type=float,
            default=None,
            help="relative deadline for budget-less interactive requests",
        )
        ovl.add_argument(
            "--hedge",
            action="store_true",
            help="re-issue stragglers past the observed p99 to the next "
            "ring shard, first result wins (shard pools; implies --overload)",
        )
        ovl.add_argument(
            "--brownout",
            action="store_true",
            help="under sustained pressure: thin verification, reroute to "
            "cheaper backends, then suspend batch admission "
            "(implies --overload)",
        )
        cha = parser.add_argument_group("chaos injection (drills only)")
        cha.add_argument(
            "--chaos",
            action="store_true",
            help="enable the seeded fault-injection plan",
        )
        cha.add_argument("--chaos-seed", type=int, default=0)
        cha.add_argument(
            "--chaos-kill-rate",
            type=float,
            default=0.0,
            help="per-request worker-kill probability (process pools only)",
        )
        cha.add_argument("--chaos-exception-rate", type=float, default=0.0)
        cha.add_argument("--chaos-latency-rate", type=float, default=0.0)
        cha.add_argument(
            "--chaos-bitflip-rate",
            type=float,
            default=0.0,
            help="per-request result/register bit-flip probability "
            "(silent — only --verify catches it)",
        )
        cha.add_argument(
            "--chaos-stuck-rate",
            type=float,
            default=0.0,
            help="per-request wedged-worker probability (the stuck monitor "
            "and drain path recover it)",
        )
        cha.add_argument(
            "--chaos-slow-frame-rate",
            type=float,
            default=0.0,
            help="per-batch slow shard-frame-write probability",
        )
        cha.add_argument(
            "--chaos-corrupt-frame-rate",
            type=float,
            default=0.0,
            help="per-batch shard-frame corruption probability (caught by "
            "the frame checksum; degrades the shard, never kills it)",
        )
        cha.add_argument(
            "--chaos-truncate-frame-rate",
            type=float,
            default=0.0,
            help="per-batch shard-frame truncation probability",
        )
        cha.add_argument(
            "--chaos-target-prefix",
            default="",
            help="request-id prefix that always faults on attempt 0 "
            "(deterministic breaker storms)",
        )

    srv = sub.add_parser(
        "serve",
        help="JSON-lines modexp service: one request per stdin line, "
        "one result per stdout line (blank line = flush)",
    )
    _add_serving_flags(srv)
    _add_observability_flags(srv)
    tel = srv.add_argument_group("telemetry endpoint")
    tel.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="serve /metrics (Prometheus) and /healthz on this port (0 = pick)",
    )
    tel.add_argument(
        "--http-host",
        default="127.0.0.1",
        help="bind address for --http-port (default: 127.0.0.1)",
    )
    tel.add_argument(
        "--stats-interval",
        type=float,
        default=None,
        help="print a stats line to stderr every N seconds while serving",
    )

    bat = sub.add_parser(
        "batch",
        help="batch modexp run: JSON-lines workload in, JSON-lines results out",
    )
    bat.add_argument("input", help="workload path, or '-' for stdin")
    bat.add_argument(
        "--out",
        default=None,
        help="results path (default: stdout; summary then goes to stderr)",
    )
    _add_serving_flags(bat)
    _add_observability_flags(bat)

    sub.add_parser(
        "backends", help="list registered serving backends and capabilities"
    )

    obs_cmd = sub.add_parser(
        "obs", help="observability utilities over metrics snapshots"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    diff = obs_sub.add_parser(
        "diff",
        help="regression-gate a metrics snapshot against a committed baseline",
    )
    diff.add_argument(
        "current",
        nargs="?",
        default="benchmarks/results/metrics/serving_baseline.json",
        help="snapshot to check (default: the benchmark run's output)",
    )
    diff.add_argument(
        "--baseline",
        default=None,
        help="committed baseline snapshot (benchmarks/baselines/*.json); "
        "optional when --require constraints are given",
    )
    diff.add_argument(
        "--require",
        action="append",
        default=None,
        metavar="EXPR",
        help="constraint on the current snapshot, e.g. "
        "'serving.faults_detected>0' or 'serving.silent_corruptions==0' "
        "(repeatable; metric value summed over label series, absent = 0)",
    )
    diff.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        help="allowed relative drift per series (0.15 = ±15%%; default 0.1)",
    )
    diff.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="GLOB",
        help="metric-name glob to skip (repeatable; default: '*wall*')",
    )

    sub.add_parser("experiments", help="list the experiment registry")

    cen = sub.add_parser("census", help="census + Virtex-E mapping of the MMMC")
    cen.add_argument("l", type=int, help="operand bit length")
    cen.add_argument("--arch", choices=("corrected", "paper"), default="paper")

    flt = sub.add_parser(
        "fault",
        aliases=["fault-campaign"],
        help="fault-injection campaign on the array",
    )
    flt.add_argument("--l", type=int, default=12)
    flt.add_argument("--samples", type=int, default=200)
    flt.add_argument("--seed", type=int, default=0)
    flt.add_argument(
        "--engine",
        choices=("rtl", "gate", "compiled"),
        default="rtl",
        help="simulation substrate: behavioral RTL, interpreted netlist, "
        "or the compiled bit-sliced engine",
    )
    flt.add_argument(
        "--arch", choices=("corrected", "paper"), default="corrected"
    )

    rep = sub.add_parser("report", help="generate a live reproduction report")
    rep.add_argument("--out", default=None, help="write markdown to this path")
    rep.add_argument("--seed", type=int, default=0)

    ver = sub.add_parser("verilog", help="export the MMMC as structural Verilog")
    ver.add_argument("l", type=int)
    ver.add_argument("--arch", choices=("corrected", "paper"), default="corrected")
    ver.add_argument("--out", default=None)

    bs = sub.add_parser(
        "bench-sim",
        help="compare the netlist simulator engines (interpreted vs "
        "compiled vs compiled+lanes) on the full MMMC",
    )
    bs.add_argument("--l", type=int, default=64, help="operand bit length")
    bs.add_argument(
        "--lanes",
        type=int,
        default=64,
        help="bit-sliced lane count for the batched run (0 = skip)",
    )
    bs.add_argument(
        "--engine",
        choices=("interpreted", "compiled", "both"),
        default="both",
        help="which scalar engines to time",
    )
    bs.add_argument(
        "--repeat", type=int, default=3, help="timed runs per engine (min kept)"
    )
    bs.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="PATH",
        help="also write the measurement as JSON ('-' = stdout instead of "
        "the table); benchmarks/bench_compiled_sim.py runs the timing "
        "through this in a clean interpreter",
    )
    bs.add_argument(
        "--flightrec",
        action="store_true",
        help="also time the lane batch with an armed flight-recorder "
        "black box and report the capture overhead",
    )
    bs.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot (hdl.flightrec_overhead_pct gauge "
        "etc.) for `repro obs diff --require` gating",
    )

    prof = sub.add_parser(
        "profile",
        help="run a profiled workload and emit the unified utilization "
        "attribution report (occupancy, lane fill, phase/queue breakdown)",
    )
    prof.add_argument(
        "--l", type=int, default=64, help="bit length of the occupancy stage"
    )
    prof.add_argument(
        "--arch", choices=("corrected", "paper"), default="corrected"
    )
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument(
        "--requests",
        type=int,
        default=48,
        help="serving-stage request count over the gate backend; the mix "
        "repeats 6 distinct (modulus, exponent) pairs, so 48 requests "
        "yield lane groups of 8 (0 = skip the serving stage)",
    )
    prof.add_argument(
        "--out", default=None, help="also write the report to this path"
    )
    prof.add_argument(
        "--csv",
        default=None,
        help="write the array occupancy matrix as CSV to this path",
    )
    chp = prof.add_argument_group("chip stage (multi-array model)")
    chp.add_argument(
        "--chip-ops",
        type=int,
        default=0,
        help="run N multiplications through the chip model so the report "
        "gains the chip-health section (0 = skip the stage)",
    )
    chp.add_argument(
        "--chip-tiles", type=int, default=2, help="tiles on the modelled chip"
    )
    chp.add_argument(
        "--chip-waves", type=int, default=2, help="interleaved waves per tile"
    )
    chp.add_argument(
        "--chip-l",
        type=int,
        default=16,
        help="operand bit length of the chip stage (kept small: the stage "
        "steps tiles x waves RTL arrays cycle by cycle)",
    )
    _add_observability_flags(prof)

    chip = sub.add_parser(
        "chip",
        help="run an MMM workload through the multi-array chip model and "
        "compare against a sequential single array",
    )
    chip.add_argument("--l", type=int, default=32, help="operand bit length")
    chip.add_argument(
        "--ops", type=int, default=24, help="number of multiplications"
    )
    chip.add_argument("--tiles", type=int, default=2)
    chip.add_argument(
        "--waves", type=int, default=2, help="interleaved waves per tile array"
    )
    chip.add_argument(
        "--fifo-depth", type=int, default=8, help="per-tile FIFO capacity"
    )
    chip.add_argument(
        "--dispatch",
        choices=("round-robin", "least-depth"),
        default="round-robin",
        help="tile dispatch policy",
    )
    chip.add_argument(
        "--engine",
        choices=("rtl", "gate"),
        default="rtl",
        help="per-tile array substrate (gate caps l at 10)",
    )
    chip.add_argument(
        "--arch", choices=("corrected", "paper"), default="corrected"
    )
    chip.add_argument("--seed", type=int, default=0)
    _add_observability_flags(chip)

    lg = sub.add_parser(
        "loadgen",
        help="seeded workload generator: JSON-lines requests for "
        "`repro batch` / `repro serve` (Zipf keyring, bursty arrivals)",
    )
    lg.add_argument(
        "--out",
        default="-",
        help="output path for the JSON-lines workload ('-' = stdout)",
    )
    lg.add_argument("--requests", type=int, default=200)
    lg.add_argument("--keys", type=int, default=8, help="keyring size")
    lg.add_argument(
        "--bits",
        default="16,24,32",
        help="comma-separated modulus widths, cycled over the keyring",
    )
    lg.add_argument(
        "--zipf-s",
        type=float,
        default=1.1,
        help="Zipf skew over key ranks (0 = uniform)",
    )
    lg.add_argument(
        "--exponent-bits",
        default="8,16",
        help="comma-separated exponent sizes for the random-exponent share",
    )
    lg.add_argument(
        "--f4-share",
        type=float,
        default=0.0,
        help="fraction of requests using the RSA exponent 65537",
    )
    lg.add_argument(
        "--rate", type=float, default=200.0, help="arrivals per second"
    )
    lg.add_argument(
        "--burst-factor",
        type=float,
        default=1.0,
        help="rate multiplier inside burst windows (1.0 = no bursts)",
    )
    lg.add_argument("--burst-every", type=float, default=1.0)
    lg.add_argument("--burst-len", type=float, default=0.25)
    lg.add_argument(
        "--interactive-share",
        type=float,
        default=0.0,
        help="fraction of requests tagged priority=interactive",
    )
    lg.add_argument(
        "--interactive-budget",
        type=float,
        default=None,
        help="relative deadline (s) carried by interactive requests",
    )
    lg.add_argument(
        "--batch-budget",
        type=float,
        default=None,
        help="relative deadline (s) carried by batch requests",
    )
    lg.add_argument("--seed", default="workload", help="workload seed string")
    lg.add_argument(
        "--summary",
        action="store_true",
        help="print the keyring popularity table (stderr when --out is '-')",
    )

    top = sub.add_parser(
        "top",
        help="terminal live-stats view over a /metrics endpoint "
        "(see `repro serve --http-port`)",
    )
    top.add_argument(
        "url",
        help="telemetry endpoint base URL or /metrics URL, "
        "e.g. http://127.0.0.1:9100",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh period in seconds (default: 2.0)",
    )
    top.add_argument(
        "--count",
        type=int,
        default=0,
        help="number of refreshes before exiting (0 = until interrupted)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (same as --count 1)",
    )
    top.add_argument(
        "--json",
        dest="json_out",
        action="store_true",
        help="one-shot mode: scrape once and print the dashboard stats "
        "as a JSON object (implies --once; for scripts and CI)",
    )

    prb = sub.add_parser(
        "probe",
        help="triggered logic-analyzer run: arm the flight recorder over "
        "one multiplication and dump the capture window",
    )
    prb.add_argument("--l", type=int, default=8, help="operand bit length")
    prb.add_argument(
        "--engine",
        choices=("interpreted", "compiled", "rtl"),
        default="interpreted",
        help="simulation substrate carrying the probes",
    )
    prb.add_argument(
        "--arch", choices=("corrected", "paper"), default="corrected"
    )
    prb.add_argument("--x", type=int, default=None, help="operand X (seeded if omitted)")
    prb.add_argument("--y", type=int, default=None, help="operand Y (seeded if omitted)")
    prb.add_argument("--n", type=int, default=None, help="odd modulus (seeded if omitted)")
    prb.add_argument("--seed", type=int, default=0)
    prb.add_argument(
        "--trigger",
        action="append",
        default=None,
        metavar="EXPR",
        help="trigger expression: 'fault', 'cycle==12', 'cycle in 8:20', "
        "'done==1', 't changed' (repeatable; default: 'done==1', which "
        "freezes the window at the end of the run)",
    )
    prb.add_argument(
        "--pre", type=int, default=64, help="pre-trigger window, cycles"
    )
    prb.add_argument(
        "--post", type=int, default=8, help="post-trigger window, cycles"
    )
    prb.add_argument(
        "--flip",
        default=None,
        metavar="REG:INDEX@CYCLE",
        help="inject an SEU, e.g. 't:3@11' flips T register bit 3 after "
        "cycle 11's edge (netlist engines only); faults fire the "
        "recorder, so combine with --trigger fault or rely on the default "
        "fire-on-fault behavior",
    )
    prb.add_argument(
        "--vcd", default=None, metavar="PATH", help="write the window as VCD"
    )
    prb.add_argument(
        "--dump-dir",
        default=None,
        metavar="DIR",
        help="also emit a full post-mortem bundle into this directory",
    )
    prb.add_argument(
        "--signals",
        default=None,
        help="comma-separated signal subset for the ASCII diagram",
    )

    pm = sub.add_parser(
        "postmortem",
        help="inspect a flight-recorder post-mortem bundle (meta, trigger, "
        "capture window)",
    )
    pm.add_argument(
        "path",
        help="bundle directory (or its meta.json), or a dump directory "
        "to search with --request-id / latest",
    )
    pm.add_argument(
        "--request-id",
        default=None,
        help="pick the newest bundle for this request id when PATH is a "
        "dump directory",
    )
    pm.add_argument(
        "--signals",
        default=None,
        help="comma-separated signal subset for the waveform diagram",
    )
    pm.add_argument(
        "--vcd", default=None, metavar="PATH", help="re-export the window VCD"
    )
    pm.add_argument(
        "--json",
        dest="json_out",
        action="store_true",
        help="print the bundle metadata as JSON instead of the report",
    )
    return p


def _cmd_tables(out) -> int:
    from repro.fpga.report import table1_rows, table2_rows

    rows2 = table2_rows()
    out.write(
        render_table(
            ["l", "S model", "S paper", "Tp model", "Tp paper", "TMMM model us", "TMMM paper us"],
            [
                [r.l, r.slices, r.paper_slices, round(r.tp_ns, 3), r.paper_tp_ns,
                 round(r.t_mmm_us, 3), r.paper_t_mmm_us]
                for r in rows2
            ],
            title="Table 2 (model vs paper)",
        )
        + "\n\n"
    )
    rows1 = table1_rows()
    out.write(
        render_table(
            ["l", "Tp model", "avg exp model ms", "avg exp paper ms"],
            [
                [r.l, round(r.tp_ns, 3), round(r.avg_exp_ms, 3), r.paper_avg_exp_ms]
                for r in rows1
            ],
            title="Table 1 (model vs paper)",
        )
        + "\n"
    )
    return 0


def _cmd_multiply(args, out) -> int:
    from repro.montgomery.algorithms import montgomery_no_subtraction
    from repro.montgomery.params import precompute_montgomery_constants
    from repro.observability import observe

    ctx = precompute_montgomery_constants(args.modulus)
    golden = montgomery_no_subtraction(ctx, args.x, args.y)
    registry, tracer = _observation(args)
    with observe(metrics=registry, tracer=tracer):
        if args.model == "golden":
            result, cycles = golden, None
        elif args.model == "rtl":
            from repro.systolic.array import SystolicArrayRTL

            r = SystolicArrayRTL(ctx.l, mode=args.arch).run_multiplication(
                args.x, args.y, args.modulus
            )
            result, cycles = r.value, r.total_cycles
        elif args.model == "mmmc":
            from repro.systolic.mmmc import MMMC

            r = MMMC(ctx.l, mode=args.arch).multiply(args.x, args.y, args.modulus)
            result, cycles = r.result, r.cycles
        else:
            from repro.systolic.mmmc_netlist import GateLevelMMMC

            r = GateLevelMMMC(ctx.l, args.arch, simulator=args.engine).multiply(
                args.x, args.y, args.modulus
            )
            result, cycles = r.result, r.cycles
    out.write(f"Mont({args.x}, {args.y}) mod {args.modulus} = {result}\n")
    out.write(f"  = x*y*2^-{ctx.r_exponent} mod N;  golden agrees: {result == golden}\n")
    if cycles is not None:
        out.write(f"  cycles: {cycles} (paper formula 3l+4 = {3 * ctx.l + 4})\n")
    _finish_observation(args, registry, tracer, out)
    return 0 if result == golden else 1


def _cmd_exponentiate(args, out) -> int:
    from repro.observability import observe
    from repro.systolic.exponentiator import ModularExponentiator

    exp = ModularExponentiator.for_modulus(args.modulus, engine=args.engine)
    ctx = exp.ctx
    registry, tracer = _observation(args)
    with observe(metrics=registry, tracer=tracer):
        run = exp.exponentiate(args.base % args.modulus, args.exponent)
    out.write(f"{args.base}^{args.exponent} mod {args.modulus} = {run.result}\n")
    out.write(
        f"  {run.num_multiplications} multiplications, {run.cycles} cycles "
        f"(engine: {args.engine})\n"
    )
    _finish_observation(args, registry, tracer, out)
    return 0


def _cmd_observe(args, out) -> int:
    import random

    from repro.montgomery.params import precompute_montgomery_constants
    from repro.observability import observe
    from repro.systolic.exponentiator import ModularExponentiator
    from repro.utils.rng import random_odd_modulus

    rng = random.Random(args.seed)
    n = random_odd_modulus(args.l, rng)
    ctx = precompute_montgomery_constants(n)
    message = rng.randrange(ctx.modulus)
    exponent = (
        args.exponent
        if args.exponent is not None
        else rng.randrange(1 << (args.l - 1), 1 << args.l)
    )
    registry, tracer = _observation(args)
    if registry is None:  # `observe` always collects metrics
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
    with observe(metrics=registry, tracer=tracer):
        exp = ModularExponentiator(ctx, engine=args.engine, mode=args.arch)
        run = exp.exponentiate(message, exponent)
        if args.gate:
            from repro.systolic.mmmc_netlist import GateLevelMMMC

            GateLevelMMMC(ctx.l, args.arch).multiply(
                message, message, ctx.modulus
            )
    out.write(
        f"observed: {message}^{exponent} mod {n} = {run.result}  "
        f"({run.num_multiplications} multiplications, {run.cycles} cycles, "
        f"engine={args.engine}, arch={args.arch})\n\n"
    )
    if args.metrics_format == "prom":
        out.write(registry.to_prometheus())
    elif args.json:
        out.write(registry.to_json() + "\n")
    else:
        out.write(registry.render_text() + "\n")
    if tracer is not None:
        tracer.write(args.trace)
        out.write(
            f"[trace: {len(tracer.events)} events over {tracer.clock.now} "
            f"cycles written to {args.trace} — open at https://ui.perfetto.dev]\n"
        )
    if args.metrics_out:
        _write_metrics(args, registry, out)
    return 0


def _make_service(args):
    from repro.robustness import (
        BreakerConfig,
        ChaosConfig,
        RetryPolicy,
        VerifyPolicy,
    )
    from repro.serving import ModExpService, SLOPolicy

    slo = (
        None
        if args.no_slo
        else SLOPolicy(
            margin=args.slo_margin,
            mode=args.slo_mode,
            fixed_budget=args.slo_budget,
        )
    )
    verify = (
        VerifyPolicy(mode=args.verify, sample_rate=args.verify_rate)
        if args.verify != "off"
        else None
    )
    chaos = (
        ChaosConfig(
            seed=args.chaos_seed,
            worker_kill_rate=args.chaos_kill_rate,
            exception_rate=args.chaos_exception_rate,
            latency_rate=args.chaos_latency_rate,
            bitflip_rate=args.chaos_bitflip_rate,
            stuck_rate=args.chaos_stuck_rate,
            slow_frame_rate=args.chaos_slow_frame_rate,
            corrupt_frame_rate=args.chaos_corrupt_frame_rate,
            truncate_frame_rate=args.chaos_truncate_frame_rate,
            target_prefix=args.chaos_target_prefix,
        )
        if args.chaos
        else None
    )
    retry = (
        RetryPolicy(max_attempts=args.retries, backoff_s=args.retry_backoff)
        if args.retries > 1
        else None
    )
    breaker = (
        BreakerConfig(
            failure_threshold=args.breaker_failures,
            cooldown_s=args.breaker_cooldown,
        )
        if (args.breaker or args.failover)
        else None
    )
    overload = None
    if args.overload or args.admit_rate is not None or args.hedge or args.brownout:
        from repro.serving import OverloadConfig

        overload = OverloadConfig(
            admit_rate=args.admit_rate,
            interactive_reserve=args.interactive_reserve,
            shed_target_s=args.shed_target,
            hedge=args.hedge,
            brownout=args.brownout,
            default_budget_s=args.default_budget,
            interactive_budget_s=args.interactive_budget,
        )
    return ModExpService(
        backend=args.backend,
        workers=args.workers,
        worker_kind=args.worker_kind,
        queue_limit=args.queue_limit,
        max_batch=args.max_batch,
        default_timeout=args.timeout,
        slo=slo,
        verify=verify,
        chaos=chaos,
        retry=retry,
        breaker=breaker,
        failover=args.failover,
        overload=overload,
    )


def _cmd_serve(args, out) -> int:
    import contextlib
    import threading

    from repro.observability import MetricsRegistry, observe

    registry, tracer = _observation(args)
    if registry is None and (
        args.http_port is not None or args.stats_interval is not None
    ):
        # The scrape endpoint and the stats line read the live registry.
        registry = MetricsRegistry()

    with contextlib.ExitStack() as stack:
        stack.enter_context(observe(metrics=registry, tracer=tracer))
        service = stack.enter_context(_make_service(args))

        if args.http_port is not None:
            from repro.serving import TelemetryServer

            server = TelemetryServer(
                registry,
                host=args.http_host,
                port=args.http_port,
                health=lambda: {
                    "backend": service.backend.name,
                    "workers": service.pool.workers,
                    "queue_depth": service.pool.depth,
                },
            )
            stack.callback(server.stop)
            server.start()
            sys.stderr.write(
                f"[telemetry: {server.url}/metrics and {server.url}/healthz]\n"
            )

        if args.stats_interval is not None:
            stop_stats = threading.Event()
            stack.callback(stop_stats.set)

            def _stats_loop() -> None:
                while not stop_stats.wait(args.stats_interval):
                    sys.stderr.write(_stats_line(registry, service) + "\n")

            threading.Thread(
                target=_stats_loop, name="repro-serve-stats", daemon=True
            ).start()

        stats = service.serve(sys.stdin, out)

    sys.stderr.write(
        f"[serve: {stats['served']} served, {stats['ok']} ok, "
        f"{stats['failed']} failed, {stats['rejected']} rejected, "
        f"{stats['parse_errors']} parse errors]\n"
    )
    _finish_observation(args, registry, tracer, sys.stderr)
    return 0


def _stats_line(registry, service) -> str:
    """One periodic stderr line summarizing the live registry."""
    requests = registry.counter("serving.requests")
    cycles = registry.histogram("serving.request_cycles")
    p95 = cycles.percentile(95)
    violations = registry.counter("serving.slo_violations").total()
    return (
        f"[stats: completed={requests.total(status='completed')} "
        f"failed={requests.total(status='failed')} "
        f"rejected={requests.total(status='rejected')} "
        f"depth={service.pool.depth} "
        f"p95_cycles={'-' if p95 is None else round(p95)} "
        f"slo_violations={violations}]"
    )


def _cmd_batch(args, out) -> int:
    import contextlib

    from repro.observability import observe
    from repro.serving import ModExpResult, read_requests
    from repro.serving.wire import result_to_json

    registry, tracer = _observation(args)

    with contextlib.ExitStack() as stack:
        if args.input == "-":
            in_lines = sys.stdin
        else:
            in_lines = stack.enter_context(open(args.input))
        if args.out:
            results_out = stack.enter_context(open(args.out, "w"))
            summary_out = out
        else:
            results_out = out
            summary_out = sys.stderr

        # Parse the whole workload first, keeping line positions so the
        # output stays aligned with the input even across bad lines.
        items = list(read_requests(in_lines))
        requests = [item for _, item in items if not isinstance(item, Exception)]

        with observe(metrics=registry, tracer=tracer):
            with _make_service(args) as service:
                processed = iter(service.process(requests))

        ok = failed = 0
        for _, item in items:
            if isinstance(item, Exception):
                result = ModExpResult.failure(
                    getattr(item, "request_id", ""), item
                )
            else:
                result = next(processed)
            results_out.write(result_to_json(result) + "\n")
            ok, failed = ok + result.ok, failed + (not result.ok)

    summary_out.write(
        f"[batch: {ok + failed} requests, {ok} ok, {failed} failed, "
        f"backend={args.backend}, workers={args.workers}]\n"
    )
    _finish_observation(args, registry, tracer, summary_out)
    return 0 if failed == 0 else 1


def _cmd_obs_diff(args, out) -> int:
    from repro.observability import (
        DEFAULT_IGNORE,
        check_requirements,
        diff_snapshots,
        load_snapshot,
    )

    if args.baseline is None and not args.require:
        out.write("obs diff: need --baseline and/or --require\n")
        return 2
    try:
        current = load_snapshot(args.current)
    except (OSError, ValueError) as exc:
        # ValueError covers json.JSONDecodeError: a corrupt snapshot is a
        # one-line failure, not a traceback.
        out.write(f"obs diff: cannot read current snapshot: {exc}\n")
        return 2

    compared = 0
    problems: List[str] = []
    if args.baseline is not None:
        try:
            baseline = load_snapshot(args.baseline)
        except (OSError, ValueError) as exc:
            out.write(f"obs diff: cannot read baseline: {exc}\n")
            return 2
        ignore = tuple(args.ignore) if args.ignore else DEFAULT_IGNORE
        compared, problems = diff_snapshots(
            baseline, current, tolerance=args.tolerance, ignore=ignore
        )
        for problem in problems:
            out.write(f"  DRIFT  {problem}\n")

    required: List[str] = []
    if args.require:
        try:
            required = check_requirements(current, args.require)
        except ValueError as exc:
            out.write(f"obs diff: {exc}\n")
            return 2
        for problem in required:
            out.write(f"  REQUIRE  {problem}\n")

    failures = len(problems) + len(required)
    verdict = "FAIL" if failures else "OK"
    against = args.baseline if args.baseline else "(requirements only)"
    out.write(
        f"[obs diff: {verdict} — {compared} series compared against "
        f"{against}, {len(args.require or ())} requirement(s) checked, "
        f"{failures} violation(s)]\n"
    )
    return 1 if failures else 0


def _cmd_backends(out) -> int:
    from repro.serving import default_registry

    out.write(
        render_table(
            ["backend", "max bits", "cycles", "simulator", "workers", "needs p,q", "description"],
            default_registry().capability_rows(),
            title="Registered serving backends",
        )
        + "\n"
    )
    return 0


def _cmd_experiments(out) -> int:
    from repro.analysis.experiments import EXPERIMENTS

    out.write(
        render_table(
            ["id", "artifact", "benchmark"],
            [[e.id, e.paper_artifact, e.benchmark] for e in EXPERIMENTS.values()],
            title="Registered experiments",
        )
        + "\n"
    )
    return 0


def _cmd_census(args, out) -> int:
    from repro.fpga.techmap import technology_map
    from repro.fpga.timing_model import estimate_clock_period
    from repro.hdl.census import census
    from repro.systolic.mmmc_netlist import build_mmmc

    ports = build_mmmc(args.l, args.arch)
    cen = census(ports.circuit)
    mapped = technology_map(ports.circuit)
    timing = estimate_clock_period(ports.circuit, args.l, mapped=mapped)
    rows = [[k, v] for k, v in sorted(cen.as_row().items())]
    rows += [
        ["LUT4s", mapped.luts],
        ["slices", mapped.slices],
        ["LUT depth", mapped.lut_depth],
        ["Tp (ns)", round(timing.clock_period_ns, 3)],
    ]
    out.write(
        render_table(
            ["resource", "count"],
            rows,
            title=f"MMMC census, l={args.l}, arch={args.arch}",
        )
        + "\n"
    )
    return 0


def _cmd_fault(args, out) -> int:
    import random

    from repro.analysis.fault import campaign_summary, fault_campaign
    from repro.utils.rng import random_odd_modulus

    rng = random.Random(args.seed)
    n = random_odd_modulus(args.l, rng)
    x, y = rng.randrange(2 * n), rng.randrange(2 * n)
    outs = fault_campaign(
        args.l,
        x,
        y,
        n,
        samples=args.samples,
        seed=args.seed,
        mode=args.arch,
        engine=args.engine,
    )
    summary = campaign_summary(outs)
    out.write(
        render_table(
            ["register", "injections", "corruption rate", "detection rate"],
            [
                [
                    reg,
                    int(v["injections"]),
                    round(v["corruption_rate"], 3),
                    round(v["detection_rate"], 3),
                ]
                for reg, v in summary.items()
            ],
            title=(
                f"Fault campaign: l={args.l}, {args.samples} single-bit "
                f"flips, engine={args.engine}"
            ),
        )
        + "\n"
    )
    return 0


def _cmd_bench_sim(args, out) -> int:
    from repro.analysis.simbench import measure_engines, result_rows

    engines = (
        ("interpreted", "compiled") if args.engine == "both" else (args.engine,)
    )
    result = measure_engines(
        args.l,
        lanes=args.lanes,
        repeat=args.repeat,
        engines=engines,
        flightrec=args.flightrec,
    )
    if args.metrics_out:
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
        if result.lane_batch_ms is not None:
            registry.gauge("hdl.lane_batch_ms").set(result.lane_batch_ms)
        if result.flightrec_overhead_pct is not None:
            registry.gauge("hdl.flightrec_overhead_pct").set(
                result.flightrec_overhead_pct
            )
            registry.gauge("hdl.flightrec_batch_ms").set(
                result.flightrec_batch_ms
            )
        registry.write_json(args.metrics_out)
    if args.json_out == "-":
        json.dump(result.as_json(), out)
        out.write("\n")
        return 0
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(result.as_json(), fh, indent=2, sort_keys=True)
    out.write(
        render_table(
            ["engine", "ms/MMM", "MMM/s", "gate-evals/s", "speedup"],
            result_rows(result),
            title=(
                f"MMMC netlist simulation, l={args.l} "
                f"({result.gates} gates, {result.dffs} DFFs, "
                f"{result.cycles_per_mult} cycles/MMM)"
            ),
        )
        + "\n"
    )
    if result.compile_s is not None:
        out.write(
            f"[one-off netlist build + kernel codegen: {result.compile_s:.3f}s"
            " (amortized by the structural-key cache)]\n"
        )
    if result.flightrec_overhead_pct is not None:
        out.write(
            f"[flight recorder armed on the {result.lanes}-lane batch: "
            f"{result.flightrec_batch_ms:.3f} ms vs "
            f"{result.lane_batch_ms:.3f} ms disarmed = "
            f"{result.flightrec_overhead_pct:+.2f}% capture overhead]\n"
        )
    return 0


def _profile_serving_stage(args, rng) -> None:
    """The serving leg of ``repro profile``: mixed traffic over the gate backend.

    Three moduli x two exponents at l=10 (the gate backend's width
    ceiling) so coalescing, lane grouping and lane fill are all exercised
    with a deliberately imperfect mix; verification is sampled so the
    verify-overhead attribution has data.
    """
    from repro.robustness import VerifyPolicy
    from repro.serving import ModExpRequest, ModExpService
    from repro.utils.rng import random_odd_modulus

    moduli = [random_odd_modulus(10, rng) for _ in range(3)]
    exponents = [rng.randrange(3, 1 << 8) for _ in range(2)]
    requests = []
    for i in range(args.requests):
        n = moduli[i % len(moduli)]
        requests.append(
            ModExpRequest(
                base=rng.randrange(1, n),
                exponent=exponents[i % len(exponents)],
                modulus=n,
                request_id=f"profile-{i}",
            )
        )
    with ModExpService(
        backend="gate",
        workers=2,
        verify=VerifyPolicy(mode="sampled", sample_rate=0.5),
    ) as service:
        service.process(requests)


def _profile_chip_stage(args, rng) -> None:
    """The chip leg of ``repro profile``: tiles x waves over seeded MMM ops.

    Runs under the ambient observe() context, so the chip model's
    ``chip.tile{i}`` / ``chip.tiles`` occupancy tracks and the
    ``chip.waves`` / ``chip.fifo_depth`` histograms land in the same
    registry the report reads — the chip-health section appears exactly
    when this stage ran.
    """
    from repro.chip import ChipModel, MMMOp
    from repro.utils.rng import random_odd_modulus

    n = random_odd_modulus(args.chip_l, rng)
    ops = [
        MMMOp(rng.randrange(n), rng.randrange(n), n, tag=i)
        for i in range(args.chip_ops)
    ]
    chipm = ChipModel(
        args.chip_l,
        tiles=args.chip_tiles,
        waves=args.chip_waves,
        mode=args.arch,
    )
    chipm.run(ops)


def _cmd_profile(args, out) -> int:
    import random

    from repro.montgomery.params import precompute_montgomery_constants
    from repro.observability import (
        MetricsRegistry,
        OccupancyRecorder,
        export_utilization_gauges,
        observe,
        render_report,
    )
    from repro.systolic.exponentiator import ModularExponentiator
    from repro.utils.rng import random_odd_modulus

    rng = random.Random(args.seed)
    registry, tracer = _observation(args)
    if registry is None:  # `profile` always collects metrics
        registry = MetricsRegistry()
    occupancy = OccupancyRecorder()

    # Stage 1: cycle-accurate array occupancy — one RTL exponentiation at
    # the requested l with a short seeded exponent (a handful of MMM waves).
    n = random_odd_modulus(args.l, rng)
    ctx = precompute_montgomery_constants(n)
    message = rng.randrange(ctx.modulus)
    exponent = rng.randrange(1 << 4, 1 << 5)
    with observe(metrics=registry, tracer=tracer, occupancy=occupancy):
        ModularExponentiator(ctx, engine="rtl", mode=args.arch).exponentiate(
            message, exponent
        )
        # Stage 2: serving utilization — lane fill, queue wait, verify.
        if args.requests > 0:
            _profile_serving_stage(args, rng)
        # Stage 3 (opt-in): multi-array chip — per-tile busy tracks,
        # FIFO depths, waves in flight.
        if args.chip_ops > 0:
            _profile_chip_stage(args, rng)

    export_utilization_gauges(registry, occupancy)
    report = render_report(registry, occupancy, l=args.l, mode=args.arch)
    out.write(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        out.write(f"[report written to {args.out}]\n")
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(occupancy.to_csv("array"))
        out.write(f"[occupancy CSV written to {args.csv}]\n")
    _finish_observation(args, registry, tracer, out)
    return 0


def _cmd_chip(args, out) -> int:
    import random

    from repro.chip import (
        ChipModel,
        MMMOp,
        datapath_cycles,
        interleaved_idle_model,
        steady_state_idle_fraction,
    )
    from repro.montgomery.algorithms import montgomery_no_subtraction
    from repro.montgomery.params import precompute_montgomery_constants
    from repro.observability import MetricsRegistry, OccupancyRecorder, observe
    from repro.utils.rng import random_odd_modulus

    rng = random.Random(args.seed)
    n = random_odd_modulus(args.l, rng)
    ctx = precompute_montgomery_constants(n)
    ops = [
        MMMOp(rng.randrange(n), rng.randrange(n), n, tag=i)
        for i in range(args.ops)
    ]
    golden = {
        op.tag: montgomery_no_subtraction(ctx, op.x, op.y) for op in ops
    }

    registry, tracer = _observation(args)
    if registry is None:
        registry = MetricsRegistry()
    occupancy = OccupancyRecorder()
    chipm = ChipModel(
        args.l,
        tiles=args.tiles,
        waves=args.waves,
        mode=args.arch,
        engine=args.engine,
        fifo_depth=args.fifo_depth,
        dispatcher=args.dispatch,
    )
    with observe(metrics=registry, tracer=tracer, occupancy=occupancy):
        outcomes = chipm.run(ops)

    wrong = sum(1 for o in outcomes if o.value != golden[o.op.tag])
    makespan = chipm.cycle
    # One array retiring the same ops back to back: D+1 cycles each.
    seq = args.ops * (datapath_cycles(args.l, args.arch) + 1)
    tile_idles = [
        occupancy.idle_fraction(f"chip.tile{i}") for i in range(args.tiles)
    ]
    measured = [x for x in tile_idles if x is not None]
    rows = [
        ["operations", args.ops],
        ["tiles x waves", f"{args.tiles} x {args.waves}"],
        ["dispatch", args.dispatch],
        ["chip makespan (cycles)", makespan],
        ["sequential 1-array (cycles)", seq],
        ["speedup", f"{seq / makespan:.2f}x" if makespan else "-"],
        [
            "array idle (measured)",
            f"{sum(measured) / len(measured):.1%}" if measured else "-",
        ],
        [
            "array idle (W-wave model)",
            f"{interleaved_idle_model(-(-args.ops // args.tiles), args.l, waves=args.waves, mode=args.arch):.1%}",
        ],
        [
            "array idle (steady state)",
            f"{steady_state_idle_fraction(args.l, waves=args.waves, mode=args.arch):.1%}",
        ],
        ["results verified", f"{len(outcomes) - wrong}/{len(outcomes)}"],
    ]
    out.write(
        render_table(
            ["figure", "value"],
            rows,
            title=(
                f"Chip model: l={args.l}, engine={args.engine}, "
                f"arch={args.arch}"
            ),
        )
        + "\n\n"
    )
    out.write(occupancy.heatmap("chip.tiles", unit="tile") + "\n")
    _finish_observation(args, registry, tracer, out)
    return 0 if wrong == 0 and len(outcomes) == args.ops else 1


def _cmd_loadgen(args, out) -> int:
    import contextlib

    from repro.serving.wire import request_to_json
    from repro.serving.workload import WorkloadConfig, generate_workload

    def _int_tuple(text: str):
        return tuple(int(part) for part in text.split(",") if part.strip())

    config = WorkloadConfig(
        requests=args.requests,
        keys=args.keys,
        bits=_int_tuple(args.bits),
        zipf_s=args.zipf_s,
        exponent_bits=_int_tuple(args.exponent_bits),
        f4_share=args.f4_share,
        rate=args.rate,
        burst_factor=args.burst_factor,
        burst_every=args.burst_every,
        burst_len=args.burst_len,
        interactive_share=args.interactive_share,
        interactive_budget_s=args.interactive_budget,
        batch_budget_s=args.batch_budget,
    )
    workload = generate_workload(config, seed=args.seed)
    with contextlib.ExitStack() as stack:
        if args.out == "-":
            lines_out, info_out = out, sys.stderr
        else:
            lines_out = stack.enter_context(open(args.out, "w"))
            info_out = out
        for request in workload.requests:
            lines_out.write(request_to_json(request) + "\n")
        if args.summary:
            info_out.write(
                render_table(
                    ["rank", "bits", "requests", "share"],
                    workload.summary_rows(),
                    title=f"Keyring popularity (seed={args.seed!r})",
                )
                + "\n"
            )
        span = workload.arrivals[-1] if workload.arrivals else 0.0
        info_out.write(
            f"[loadgen: {len(workload.requests)} requests over "
            f"{span:.3f}s simulated arrivals, {config.keys} keys, "
            f"seed={args.seed!r}]\n"
        )
    return 0


def _mx_total(metrics, name: str, **labels) -> float:
    """Sum a scraped metric over its label series (with label filters)."""
    entry = metrics.get(name)
    if not entry:
        return 0.0
    return sum(
        v
        for lb, v in entry["samples"]
        if all(lb.get(k) == str(w) for k, w in labels.items())
    )


def _mx_mean(metrics, base: str):
    count = _mx_total(metrics, base + "_count")
    return (_mx_total(metrics, base + "_sum") / count) if count else None


def _mx_pctl(metrics, base: str, q: float):
    """Percentile from the cumulative ``_bucket`` series (merged)."""
    entry = metrics.get(base + "_bucket")
    if not entry:
        return None
    cum: dict = {}
    for lb, v in entry["samples"]:
        le = lb.get("le")
        if le is None:
            continue
        bound = float("inf") if le == "+Inf" else float(le)
        cum[bound] = cum.get(bound, 0.0) + v
    bounds = sorted(cum)
    if not bounds or cum[bounds[-1]] <= 0:
        return None
    rank = cum[bounds[-1]] * q / 100.0
    lower = 0.0
    prev = 0.0
    for bound in bounds:
        if cum[bound] >= rank:
            if bound == float("inf"):
                return lower
            span = cum[bound] - prev
            frac = (rank - prev) / span if span else 1.0
            return lower + frac * (bound - lower)
        prev = cum[bound]
        lower = bound if bound != float("inf") else lower
    return bounds[-1]


def _top_summary(metrics) -> dict:
    """The ``repro top`` dashboard stats as one JSON-friendly object."""
    per_worker: dict = {}
    busy = metrics.get("serving_worker_busy_us_total")
    if busy:
        for lb, v in busy["samples"]:
            worker = lb.get("worker", "?")
            per_worker[worker] = per_worker.get(worker, 0.0) + v
    summary = {
        "requests": {
            status: _mx_total(metrics, "serving_requests_total", status=status)
            for status in ("completed", "failed", "rejected", "timeout")
        },
        "queue": {
            "depth": _mx_total(metrics, "serving_queue_depth"),
            "scheduler": _mx_total(metrics, "serving_scheduler_depth"),
            "wait_p50_us": _mx_pctl(metrics, "serving_queue_wait_us", 50),
        },
        "cycles": {
            "mean": _mx_mean(metrics, "serving_request_cycles"),
            "p95": _mx_pctl(metrics, "serving_request_cycles", 95),
        },
        "lane_fill": {
            "mean": _mx_mean(metrics, "hdl_lane_fill"),
            "p50": _mx_pctl(metrics, "hdl_lane_fill", 50),
            "wasted_lane_cycles": _mx_total(
                metrics, "hdl_wasted_lane_cycles_total"
            ),
        },
        "slo_violations": _mx_total(metrics, "serving_slo_violations_total"),
        "array_idle_fraction": _mx_total(metrics, "hdl_idle_fraction"),
        "faults": {
            "detected": _mx_total(metrics, "serving_faults_detected_total"),
            "flightrec_dumps": _mx_total(metrics, "hdl_flightrec_dumps_total"),
        },
        "worker_busy_us": per_worker,
    }
    shed = metrics.get("serving_shed_requests_total")
    hedges = _mx_total(metrics, "serving_hedges_fired_total")
    if shed or hedges or metrics.get("serving_brownout_level"):
        shed_by_reason: dict = {}
        if shed:
            for lb, v in shed["samples"]:
                reason = lb.get("reason", "?")
                shed_by_reason[reason] = shed_by_reason.get(reason, 0.0) + v
        summary["overload"] = {
            "shed_by_reason": shed_by_reason,
            "hedges_fired": hedges,
            "hedge_wins": {
                winner: _mx_total(
                    metrics, "serving_hedge_wins_total", winner=winner
                )
                for winner in ("primary", "hedge")
            },
            "deadline_violations": _mx_total(
                metrics, "serving_deadline_violations_total"
            ),
            "brownout_level": _mx_total(metrics, "serving_brownout_level"),
        }
    shards: dict = {}
    for name, field in (
        ("serving_shard_busy_fraction", "busy_fraction"),
        ("serving_shard_queue_depth", "queue_depth"),
        ("serving_shard_cache_hit_rate", "cache_hit_rate"),
        ("serving_shard_health", "health"),
    ):
        entry = metrics.get(name)
        if entry:
            for lb, v in entry["samples"]:
                shards.setdefault(lb.get("shard", "?"), {})[field] = v
    if shards:
        # Health is exported for every shard slot at pool start; traffic
        # gauges only for shards that saw batches — fill the idle ones.
        for row in shards.values():
            for field in ("busy_fraction", "queue_depth", "cache_hit_rate"):
                row.setdefault(field, 0.0)
        summary["shards"] = {k: shards[k] for k in sorted(shards)}
    if metrics.get("chip_tile_busy_fraction"):
        summary["chip"] = {
            "tile_busy_fraction": _mx_total(metrics, "chip_tile_busy_fraction"),
            "waves_in_flight": _mx_total(metrics, "chip_waves_in_flight"),
            "fifo_depth_p95": _mx_total(metrics, "chip_fifo_depth_p95"),
        }
    return summary


def _render_top_frame(url: str, text: str) -> str:
    """One dashboard frame over a scraped Prometheus exposition."""
    from repro.observability.metrics import parse_prometheus_text

    metrics = parse_prometheus_text(text)

    def total(name: str, **labels) -> float:
        return _mx_total(metrics, name, **labels)

    def mean(base: str):
        return _mx_mean(metrics, base)

    def pctl(base: str, q: float):
        return _mx_pctl(metrics, base, q)

    def fmt(value, digits: int = 0) -> str:
        return "-" if value is None else f"{value:.{digits}f}"

    lines = [f"repro top — {url}"]
    lines.append(
        "requests   completed={:.0f} failed={:.0f} rejected={:.0f} "
        "timeout={:.0f}".format(
            total("serving_requests_total", status="completed"),
            total("serving_requests_total", status="failed"),
            total("serving_requests_total", status="rejected"),
            total("serving_requests_total", status="timeout"),
        )
    )
    lines.append(
        "queue      depth={:.0f} scheduler={:.0f} wait_p50={} us".format(
            total("serving_queue_depth"),
            total("serving_scheduler_depth"),
            fmt(pctl("serving_queue_wait_us", 50)),
        )
    )
    lines.append(
        "cycles     mean={} p95={} per request".format(
            fmt(mean("serving_request_cycles")),
            fmt(pctl("serving_request_cycles", 95)),
        )
    )
    lines.append(
        "lane fill  mean={} p50={} of 64 (wasted lane-cycles={:.0f})".format(
            fmt(mean("hdl_lane_fill"), 1),
            fmt(pctl("hdl_lane_fill", 50)),
            total("hdl_wasted_lane_cycles_total"),
        )
    )
    idle = total("hdl_idle_fraction")
    lines.append(
        "slo        violations={:.0f}   array idle={}".format(
            total("serving_slo_violations_total"),
            f"{idle:.1%}" if idle else "-",
        )
    )
    shed = total("serving_shed_requests_total")
    hedges = total("serving_hedges_fired_total")
    if shed or hedges or metrics.get("serving_brownout_level"):
        lines.append(
            "overload   shed={:.0f} hedged={:.0f} (won={:.0f}) "
            "late={:.0f} brownout=L{:.0f}".format(
                shed,
                hedges,
                total("serving_hedge_wins_total", winner="hedge"),
                total("serving_deadline_violations_total"),
                total("serving_brownout_level"),
            )
        )
    busy_mx = metrics.get("serving_shard_busy_fraction")
    if busy_mx:
        health_names = {0: "ok", 1: "deg", 2: "drn", 3: "dead"}
        parts = []
        for lb, v in sorted(
            busy_mx["samples"], key=lambda s: s[0].get("shard", "")
        ):
            sid = lb.get("shard", "?")
            health = ""
            if metrics.get("serving_shard_health"):
                code = int(total("serving_shard_health", shard=sid))
                health = f" {health_names.get(code, '?')}"
            parts.append(
                "s{} busy={:.0%} q={:.0f} hit={:.0%}{}".format(
                    sid,
                    v,
                    total("serving_shard_queue_depth", shard=sid),
                    total("serving_shard_cache_hit_rate", shard=sid),
                    health,
                )
            )
        lines.append("shards     " + "  ".join(parts))
    tile_busy = total("chip_tile_busy_fraction")
    if metrics.get("chip_tile_busy_fraction"):
        waves = total("chip_waves_in_flight")
        fifo = (
            fmt(total("chip_fifo_depth_p95"), 1)
            if metrics.get("chip_fifo_depth_p95")
            else "-"
        )
        lines.append(
            "chip       tile busy={:.1%} waves in flight={:.2f} "
            "fifo p95={}".format(tile_busy, waves, fifo)
        )
    busy = metrics.get("serving_worker_busy_us_total")
    if busy:
        per_worker: dict = {}
        for lb, v in busy["samples"]:
            worker = lb.get("worker", "?")
            per_worker[worker] = per_worker.get(worker, 0.0) + v
        parts = " ".join(
            f"{w}={per_worker[w] / 1000:.0f}ms" for w in sorted(per_worker)
        )
        lines.append(f"workers    busy: {parts}")
    return "\n".join(lines) + "\n"


def _cmd_top(args, out) -> int:
    import time
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/")
    if not url.endswith("/metrics"):
        url += "/metrics"
    count = 1 if (args.once or args.json_out) else args.count
    frames = 0
    try:
        while True:
            try:
                with urllib.request.urlopen(url, timeout=5.0) as resp:
                    text = resp.read().decode("utf-8", "replace")
            except (urllib.error.URLError, OSError) as exc:
                out.write(f"repro top: cannot scrape {url}: {exc}\n")
                return 1
            frames += 1
            if args.json_out:
                from repro.observability.metrics import parse_prometheus_text

                summary = _top_summary(parse_prometheus_text(text))
                summary["url"] = url
                json.dump(summary, out, indent=2, sort_keys=True)
                out.write("\n")
                return 0
            if frames > 1:
                out.write("\x1b[2J\x1b[H")  # clear screen between frames
            out.write(_render_top_frame(url, text))
            if count and frames >= count:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _parse_flip(spec: str):
    """Parse ``REG:INDEX@CYCLE`` into a FaultSite."""
    from repro.analysis.fault import FaultSite

    try:
        reg_part, cycle_txt = spec.rsplit("@", 1)
        reg, index_txt = reg_part.split(":", 1)
        return FaultSite(
            cycle=int(cycle_txt), register=reg.strip(), index=int(index_txt)
        )
    except ValueError:
        raise ValueError(
            f"--flip wants REG:INDEX@CYCLE (e.g. 't:3@11'), got {spec!r}"
        ) from None


def _cmd_probe(args, out) -> int:
    import random

    from repro.observability.flightrec import FlightRecorderHub, armed
    from repro.utils.rng import random_odd_modulus

    rng = random.Random(args.seed)
    n = args.n if args.n is not None else random_odd_modulus(args.l, rng)
    x = args.x if args.x is not None else rng.randrange(n)
    y = args.y if args.y is not None else rng.randrange(n)
    triggers = list(args.trigger or ["done==1"])
    signals = args.signals.split(",") if args.signals else None

    flip = None
    if args.flip is not None:
        try:
            flip = _parse_flip(args.flip)
        except ValueError as exc:
            out.write(f"repro probe: {exc}\n")
            return 2
        if args.engine == "rtl":
            out.write(
                "repro probe: --flip needs a netlist engine "
                "(interpreted or compiled)\n"
            )
            return 2

    hub = FlightRecorderHub(
        dump_dir=args.dump_dir,
        pre=args.pre,
        post=args.post,
        triggers=triggers,
        fire_on_fault=True,
    )
    if args.engine == "rtl":
        # The behavioral array: attach a recorder over its register file
        # directly (``done`` is not in the RTL probe set — trigger on
        # ``cycle``/register signals instead, or the run-end flush).
        from repro.hdl.probes import ProbeSet
        from repro.systolic.array import SystolicArrayRTL

        arr = SystolicArrayRTL(args.l, mode=args.arch)
        ps = ProbeSet.from_values(arr.probe_layout())
        rec = hub.new_recorder(
            ps.names, ps.widths, ps.decode,
            meta={"l": args.l, "mode": args.arch, "engine": "rtl"},
        )
        arr.attach_flight_recorder(rec)
        run = arr.run_multiplication(x, y, n)
        result, cycles = run.value, run.total_cycles
        if not rec.triggered:
            # No trigger fired: freeze whatever the ring holds so the
            # window is still inspectable (a plain logic-analyzer stop).
            rec.notify_fault(arr.cycle - 1, "probe run ended (no trigger)")
        hub.emit(rec, cycles=cycles)
    else:
        from repro.systolic.mmmc_netlist import GateLevelMMMC

        with armed(hub):
            sim = GateLevelMMMC(args.l, mode=args.arch, simulator=args.engine)
            if flip is not None:
                sim.schedule_fault(flip)
            rec_run = sim.multiply(x, y, n)
        result, cycles = rec_run.result, rec_run.cycles
        if hub.last_bundle is None:
            out.write(
                f"probe: trigger {triggers!r} never fired over {cycles} "
                f"cycles (result {result})\n"
            )
            return 1

    bundle = hub.last_bundle
    window = bundle.window
    out.write(
        f"probe: l={args.l} engine={args.engine} x={x} y={y} n={n} "
        f"-> result {result} in {cycles} cycles\n"
    )
    out.write(
        f"trigger: {window.cause!r} at cycle {window.trigger_cycle} "
        f"(window {window.cycles[0]}..{window.cycles[-1]}, "
        f"{len(window.cycles)} samples)\n\n"
    )
    out.write(window.ascii_diagram(signals) + "\n")
    if args.vcd:
        with open(args.vcd, "w") as fh:
            fh.write(window.to_vcd())
        out.write(f"[window VCD written to {args.vcd}]\n")
    if bundle.path:
        out.write(f"[post-mortem bundle: {bundle.path}]\n")
    return 0


def _cmd_postmortem(args, out) -> int:
    import os

    from repro.observability.flightrec import PostMortemBundle, find_bundles

    path = args.path
    if os.path.isdir(path) and not os.path.exists(
        os.path.join(path, PostMortemBundle.META_FILE)
    ):
        # A dump directory: pick by request id, or the newest bundle.
        found = find_bundles(path, args.request_id)
        if not found:
            what = f"request {args.request_id!r}" if args.request_id else "any bundle"
            out.write(f"repro postmortem: no bundle for {what} in {path}\n")
            return 1
        path = found[-1]
    try:
        bundle = PostMortemBundle.load(path)
    except (OSError, ValueError, KeyError) as exc:
        out.write(f"repro postmortem: cannot load bundle at {path}: {exc}\n")
        return 2
    if args.json_out:
        json.dump(bundle.meta, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        signals = args.signals.split(",") if args.signals else None
        out.write(bundle.render(signals) + "\n")
    if args.vcd:
        with open(args.vcd, "w") as fh:
            fh.write(bundle.window.to_vcd())
        out.write(f"[window VCD written to {args.vcd}]\n")
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "tables":
        return _cmd_tables(out)
    if args.command == "multiply":
        return _cmd_multiply(args, out)
    if args.command == "exponentiate":
        return _cmd_exponentiate(args, out)
    if args.command == "observe":
        return _cmd_observe(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "batch":
        return _cmd_batch(args, out)
    if args.command == "backends":
        return _cmd_backends(out)
    if args.command == "obs":
        assert args.obs_command == "diff"
        return _cmd_obs_diff(args, out)
    if args.command == "experiments":
        return _cmd_experiments(out)
    if args.command == "census":
        return _cmd_census(args, out)
    if args.command in ("fault", "fault-campaign"):
        return _cmd_fault(args, out)
    if args.command == "bench-sim":
        return _cmd_bench_sim(args, out)
    if args.command == "profile":
        return _cmd_profile(args, out)
    if args.command == "chip":
        return _cmd_chip(args, out)
    if args.command == "loadgen":
        return _cmd_loadgen(args, out)
    if args.command == "top":
        return _cmd_top(args, out)
    if args.command == "probe":
        return _cmd_probe(args, out)
    if args.command == "postmortem":
        return _cmd_postmortem(args, out)
    if args.command == "report":
        from repro.analysis.report import generate_report

        text = generate_report(args.out, seed=args.seed)
        out.write(text + "\n")
        if args.out:
            out.write(f"[written to {args.out}]\n")
        return 0
    if args.command == "verilog":
        from repro.hdl.verilog import export_verilog
        from repro.hdl.verilog_sim import cosimulate
        from repro.systolic.mmmc_netlist import build_mmmc

        ports = build_mmmc(args.l, args.arch)
        vm = export_verilog(ports.circuit, f"mmmc_l{args.l}")
        checked = cosimulate(ports.circuit, cycles=30, module=vm)
        path = args.out or f"mmmc_l{args.l}.v"
        with open(path, "w") as fh:
            fh.write(vm.text)
        out.write(
            f"exported {vm.name} ({len(vm.text.splitlines())} lines) to {path}; "
            f"co-simulation checked {checked} outputs\n"
        )
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
