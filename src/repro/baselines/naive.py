"""Classical modular multiplication — the pre-Montgomery baseline.

Montgomery's 1985 contribution (paper Section 1) was precisely to avoid
the *trial division* these routines perform.  Implemented digit-by-digit
(not via Python's ``%``) so the operation counts reflect what hardware
would do, and accompanied by a cycle model for a bit-serial hardware
realization, used by the ablation benchmark to quantify what the systolic
Montgomery multiplier buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.utils.validation import ensure_positive

__all__ = [
    "schoolbook_modmul",
    "interleaved_modmul",
    "NaiveCycleModel",
    "naive_cycle_model",
]


def schoolbook_modmul(x: int, y: int, n: int) -> int:
    """Multiply then reduce by restoring (trial-subtraction) division.

    The full ``2l``-bit product is reduced one bit position at a time:
    for each of the top ``l`` positions, tentatively subtract the shifted
    modulus and keep the result if non-negative — exactly the restoring
    divider a naive hardware implementation would time-multiplex.
    """
    _check(x, y, n)
    prod = x * y
    l = n.bit_length()
    # Reduce from the top: positions (2l-1 .. l) down to 0 shift.
    for shift in range(max(prod.bit_length() - l, 0), -1, -1):
        trial = prod - (n << shift)
        if trial >= 0:
            prod = trial
    return prod


def interleaved_modmul(x: int, y: int, n: int) -> int:
    """Bit-serial interleaved modular multiplication (MSB first).

    The standard non-Montgomery hardware algorithm: accumulate
    ``T = 2T + x_i·y`` then bring T back below N with up to two
    conditional subtractions per step.  Needs a *comparison against N*
    every iteration — the long-carry operation Montgomery removes.
    """
    _check(x, y, n)
    t = 0
    for i in reversed(range(max(x.bit_length(), 1))):
        t <<= 1
        if (x >> i) & 1:
            t += y
        if t >= n:
            t -= n
        if t >= n:
            t -= n
    return t


@dataclass(frozen=True)
class NaiveCycleModel:
    """Hardware cycle estimate for the interleaved (non-Montgomery) multiplier.

    Each of the ``l`` iterations needs a shift-add plus up to two
    full-width compare-subtracts.  Without the systolic trick, the
    comparison's carry must ripple the full ``l`` bits, so either the
    clock period grows with ``l`` (single-cycle) or each iteration costs
    ``~l/w`` cycles of ``w``-bit carry chunks (multi-cycle).  We model the
    multi-cycle variant, which keeps the clock comparable to the paper's.
    """

    l: int
    word: int = 32

    @property
    def cycles_per_iteration(self) -> int:
        chunks = -(-self.l // self.word)
        return 1 + 2 * chunks  # shift-add + two compare/subtract passes

    @property
    def multiplication_cycles(self) -> int:
        return self.l * self.cycles_per_iteration

    def exponentiation_cycles(self, exponent_bits: int) -> int:
        """Square-and-multiply cost with balanced Hamming weight."""
        ops = exponent_bits + exponent_bits // 2
        return ops * self.multiplication_cycles


def naive_cycle_model(l: int, word: int = 32) -> NaiveCycleModel:
    """Convenience constructor with validation."""
    ensure_positive("l", l)
    ensure_positive("word", word)
    return NaiveCycleModel(l=l, word=word)


def _check(x: int, y: int, n: int) -> None:
    if n <= 0:
        raise ParameterError(f"modulus must be positive, got {n}")
    if x < 0 or y < 0:
        raise ParameterError("operands must be non-negative")
    if x >= n or y >= n:
        raise ParameterError("operands must be reduced (< N)")
