"""The Blum–Paar radix-2 comparison point [3].

Section 2 of the paper claims two advantages over Blum–Paar's 1999
systolic Montgomery exponentiator:

1. **bound** — Blum–Paar use ``R = 2^(l+3)``, i.e. ``l+3`` loop
   iterations, plus "an extra step in the main algorithm"; the paper's
   ``4N < R = 2^(l+2)`` needs only ``l+2`` iterations;
2. **cell latency** — Blum–Paar's u-bit cells carry 3-bit control
   registers and complex multiplexers, lowering the achievable clock
   frequency relative to the paper's purely combinational 1-bit cells.

This module provides the algorithmic model (a radix-2 Montgomery loop run
``l+3`` times, correctness-tested like Algorithm 2) and the cycle/clock
model used by the bound-ablation benchmark.  The clock-penalty factor is a
documented parameter: Blum–Paar [3] report ~45.6 MHz on a Xilinx XC40250XV
for their pipelined design vs. the ~100 MHz class of this paper's cells;
device differences make an exact factor unknowable, so the benchmark
reports cycle counts (exact) separately from wall-clock (model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.montgomery.params import MontgomeryContext
from repro.utils.validation import ensure_positive

__all__ = [
    "blum_paar_montgomery",
    "blum_paar_mmm_cycles",
    "blum_paar_exponentiation_cycles",
    "BlumPaarModel",
]


def blum_paar_montgomery(ctx: MontgomeryContext, x: int, y: int) -> int:
    """Radix-2 Montgomery product with ``R' = 2^(l+3)`` (l+3 iterations).

    Returns ``x·y·2^{-(l+3)} mod 2N`` for ``x, y ∈ [0, 2N)``.  The larger
    R keeps the no-subtraction window with margin; the cost is the extra
    iteration the paper's Section 2 counts against it.
    """
    ctx.check_operand("x", x)
    ctx.check_operand("y", y)
    n = ctx.modulus
    iterations = ctx.l + 3
    y0 = y & 1
    t = 0
    for i in range(iterations):
        x_i = (x >> i) & 1
        m_i = (t ^ (x_i & y0)) & 1
        t = (t + x_i * y + m_i * n) >> 1
    return t


def blum_paar_mmm_cycles(l: int) -> int:
    """Latency of one multiplication in the R = 2^(l+3) design: ``3l + 6``.

    One extra row costs two issue cycles on the same linear array
    (the paper's ``3l+4`` plus 2).
    """
    ensure_positive("l", l)
    return 3 * l + 6


def blum_paar_exponentiation_cycles(l: int, exponent: int) -> int:
    """Square-and-multiply cycles with the Blum–Paar per-mult latency.

    Uses the same pre/post structure as the paper's accounting so the
    comparison isolates the per-multiplication difference.
    """
    ensure_positive("l", l)
    if exponent <= 0:
        raise ParameterError(f"exponent must be >= 1, got {exponent}")
    mmm = blum_paar_mmm_cycles(l)
    squares = exponent.bit_length() - 1
    multiplies = bin(exponent).count("1") - 1
    # pre + loop + post, all full multiplications in their design.
    return (2 + squares + multiplies) * mmm


@dataclass(frozen=True)
class BlumPaarModel:
    """Wall-clock model combining cycles with the cell-latency penalty.

    ``clock_penalty`` scales the clock period relative to this paper's
    cells (>= 1).  The default 1.35 reflects the 3-bit control registers
    and 4-way multiplexers on the Blum–Paar critical path (roughly one
    extra LUT level on a 3-level path); the ablation benchmark sweeps it.
    """

    l: int
    clock_penalty: float = 1.35

    def mmm_time_ns(self, base_tp_ns: float) -> float:
        return blum_paar_mmm_cycles(self.l) * base_tp_ns * self.clock_penalty

    def exponentiation_time_ns(self, base_tp_ns: float, exponent: int) -> float:
        return (
            blum_paar_exponentiation_cycles(self.l, exponent)
            * base_tp_ns
            * self.clock_penalty
        )
