"""High-radix Montgomery hardware model (Blum–Paar [4], Batina–Muurling [1]).

Section 2 notes that with word base ``2^α`` the no-subtraction loop needs
``⌈(n+2)/α⌉`` iterations.  Higher radix trades fewer iterations for wider
multipliers in each cell and more complex quotient logic, which stretches
the critical path.  :class:`HighRadixModel` captures that trade-off:

* iterations: ``⌈(l+2)/α⌉`` (each still issued every other cycle on the
  linear array, plus the l-cycle drain);
* clock period: the base radix-2 Tp times a per-α penalty — each doubling
  of the radix adds roughly one carry-save level plus mux depth to the
  cell (parameterized; the ablation benchmark sweeps it).

The *functional* high-radix multiplication itself lives in
:mod:`repro.montgomery.radix` (SOS/CIOS/FIOS) and is correctness-tested
there; this module is the performance model the radix-ablation benchmark
plots, reproducing the paper's claim that radix 2 maximizes clock rate
while high radix wins on cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.montgomery.radix import iterations_high_radix

__all__ = ["HighRadixModel"]


@dataclass(frozen=True)
class HighRadixModel:
    """Latency model for a radix-``2^alpha`` systolic Montgomery multiplier.

    Parameters
    ----------
    l:
        Modulus bit length.
    alpha:
        Word size in bits (α = 1 reproduces the paper's design).
    cell_depth_penalty:
        Additional LUT levels per log2(α) on the cell critical path.
    """

    l: int
    alpha: int
    cell_depth_penalty: float = 0.8

    def __post_init__(self) -> None:
        if self.l < 2:
            raise ParameterError(f"l must be >= 2, got {self.l}")
        if self.alpha < 1:
            raise ParameterError(f"alpha must be >= 1, got {self.alpha}")

    @property
    def iterations(self) -> int:
        """Loop iterations: ``⌈(l+2)/α⌉`` (paper Section 2, from [1])."""
        return iterations_high_radix(self.l, self.alpha)

    @property
    def mmm_cycles(self) -> int:
        """Cycles per multiplication: 2 per issued row + word-count drain."""
        words = -(-self.l // self.alpha)
        return 2 * self.iterations + words + 2

    def clock_period_ns(self, base_tp_ns: float) -> float:
        """Clock period after the radix penalty (α = 1 → the base Tp)."""
        import math

        levels = math.log2(self.alpha) if self.alpha > 1 else 0.0
        depth_scale = (3 + self.cell_depth_penalty * levels) / 3.0
        return base_tp_ns * depth_scale

    def mmm_time_ns(self, base_tp_ns: float) -> float:
        """Wall-clock latency of one multiplication."""
        return self.mmm_cycles * self.clock_period_ns(base_tp_ns)
