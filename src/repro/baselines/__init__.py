"""Baselines the paper compares against (or displaces).

* :mod:`repro.baselines.naive` — classical modular multiplication with
  trial division, the bottleneck Montgomery's method avoids (Section 1).
* :mod:`repro.baselines.blum_paar` — the Blum–Paar radix-2 design [3]
  with ``R = 2^(l+3)`` (one extra iteration) and a final-subtraction step,
  the paper's principal comparison point.
* :mod:`repro.baselines.highradix` — the Blum–Paar high-radix design [4]
  with u-bit cells and its control-latency penalty.
"""

from repro.baselines.naive import (
    schoolbook_modmul,
    interleaved_modmul,
    naive_cycle_model,
)
from repro.baselines.blum_paar import (
    blum_paar_montgomery,
    blum_paar_mmm_cycles,
    blum_paar_exponentiation_cycles,
)
from repro.baselines.highradix import HighRadixModel
from repro.baselines.scalable import (
    ScalableUnit,
    scalable_mmm_cycles,
    scalable_montgomery,
)

__all__ = [
    "ScalableUnit",
    "scalable_mmm_cycles",
    "scalable_montgomery",
    "schoolbook_modmul",
    "interleaved_modmul",
    "naive_cycle_model",
    "blum_paar_montgomery",
    "blum_paar_mmm_cycles",
    "blum_paar_exponentiation_cycles",
    "HighRadixModel",
]
