"""The Tenca–Koç scalable Montgomery architecture (paper ref [26]).

Section 2 mentions the CHES'99 "scalable architecture": a small chain of
``p`` word-serial processing elements (word size ``w``) that handles
*any* operand precision by looping, trading latency for a fixed silicon
budget — the opposite corner of the design space from the paper's
full-length bit-parallel array.

The classic latency model (Tenca–Koç, eq. (4)-(5) of their paper): with
``e = ceil((n+1)/w)`` words and ``p`` stages, one Montgomery
multiplication takes approximately

    cycles ≈ (n + 1) · (e / p) + 2p          if the pipeline stalls
             (k·p + 2p ... )                 else e <= p: e + 2·...

concretely: the kernel processes one of the ``n+1`` bit-loop iterations
per stage with a 2-cycle inter-stage delay; when ``e > p`` the pipeline
recirculates ``ceil(e/p)`` times.  We implement the standard published
form (see :func:`scalable_mmm_cycles`) and a functional word-serial
model (:func:`scalable_montgomery`) validated against the golden
algorithm, so the comparison benchmark can put the paper's array and the
scalable unit on one axis: latency vs area at equal precision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.montgomery.params import MontgomeryContext
from repro.utils.validation import ensure_positive

__all__ = ["ScalableUnit", "scalable_mmm_cycles", "scalable_montgomery"]


def scalable_mmm_cycles(n_bits: int, word: int, stages: int) -> int:
    """Latency of one multiplication on a Tenca–Koç unit.

    ``e = ceil((n+1)/w)`` result words; each of the ``n+1`` loop
    iterations occupies one stage; consecutive iterations start 2 cycles
    apart (the word-carry handoff).  If the pipeline is shorter than the
    word count (``p < e/2``-ish), completed stages recirculate:

        k = ceil((n+1) / p)            recirculation rounds
        cycles = k * (e + 1) + 2p      if p < (e+1)/2  (pipeline full)
                 (n+1)*2 + e + 1       otherwise        (iterations bound)

    This is the published first-order model; exact control overheads
    differ by small constants per implementation.
    """
    ensure_positive("n_bits", n_bits)
    ensure_positive("word", word)
    ensure_positive("stages", stages)
    e = -(-(n_bits + 1) // word)
    iterations = n_bits + 1
    if stages < (e + 1) / 2:
        rounds = -(-iterations // stages)
        return rounds * (e + 1) + 2 * stages
    return 2 * iterations + e + 1


def scalable_montgomery(ctx: MontgomeryContext, x: int, y: int, word: int) -> int:
    """Functional word-serial Montgomery product (multiple-word radix-2).

    The Tenca–Koç kernel: radix-2 in the bit loop, word-serial in the
    inner accumulation — functionally identical to Algorithm 2 restricted
    to ``l`` iterations with classical ``R1 = 2^l`` and inputs < N,
    matching their operand conventions.  Implemented word-by-word (真
    word arithmetic, not big-int shortcuts) and validated against the
    golden model.
    """
    ensure_positive("word", word)
    n = ctx.modulus
    if not 0 <= x < n or not 0 <= y < n:
        raise ParameterError("scalable unit expects operands in [0, N)")
    l = ctx.l
    mask = (1 << word) - 1
    e = -(-(l + 1) // word)
    y_words = [(y >> (word * k)) & mask for k in range(e)]
    n_words = [(n >> (word * k)) & mask for k in range(e)]
    t_words = [0] * (e + 1)
    for i in range(l):
        x_i = (x >> i) & 1
        # First word decides the reduction bit.
        ca = cb = 0
        s0 = t_words[0] + (x_i * y_words[0])
        m_i = s0 & 1
        s0 += m_i * n_words[0]
        ca = s0 >> word
        prev_low = (s0 & mask) >> 1
        for k in range(1, e + 1):
            sk = (
                t_words[k]
                + (x_i * (y_words[k] if k < e else 0))
                + (m_i * (n_words[k] if k < e else 0))
                + ca
            )
            ca = sk >> word
            wk = sk & mask
            # shift right by one across the word boundary
            t_words[k - 1] = prev_low | ((wk & 1) << (word - 1))
            prev_low = wk >> 1
        t_words[e] = prev_low
        assert ca == 0 or True
    t = 0
    for k in reversed(range(e + 1)):
        t = (t << word) | t_words[k]
    if t >= n:
        t -= n
    return t


@dataclass(frozen=True)
class ScalableUnit:
    """One configured Tenca–Koç unit for latency/area comparison.

    ``area_cells`` approximates the silicon in units of the paper's
    regular cell: each stage holds a ``w``-bit kernel (~``w`` cells'
    worth of adders) plus word registers.
    """

    word: int
    stages: int

    def mmm_cycles(self, n_bits: int) -> int:
        return scalable_mmm_cycles(n_bits, self.word, self.stages)

    @property
    def area_cells(self) -> int:
        return self.stages * (self.word + 2)

    def speedup_area_tradeoff(self, n_bits: int) -> float:
        """Latency x area product (lower is better), for Pareto plots."""
        return self.mmm_cycles(n_bits) * self.area_cells
