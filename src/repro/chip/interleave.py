"""W-way wave interleaving of independent MMM streams through one array.

The idea (see :mod:`repro.chip.schedule` for the math): the ``2i+j``
schedule uses each cell only on cycles matching the cell's parity, and a
multiplication's productive rows sweep a bounded window of same-parity
cells.  A second, *independent* operand stream issued on the opposite
clock parity — or on the same parity at least ``2(l+2)`` cycles later —
computes in a provably disjoint register lattice.  The hardware cost of a
``W``-wave array is one extra X register, x/m pipeline pair and top-T
register per wave (the cell adders and the T/C0/C1 lattice are shared);
the payoff is idle fraction dropping from ``1-(l+2)/(3l+4)`` (~66% at
l=64) toward zero as ``W`` grows.

Engines
-------
``engine="rtl"`` steps one :class:`~repro.systolic.array.SystolicArrayRTL`
per in-flight wave in true lock-step on a shared chip clock.  Each chip
cycle the per-wave busy masks are OR-merged and checked **pairwise
disjoint** — the structural-hazard proof obligation: if two waves ever
claimed the same cell on the same cycle, the shared adder lattice of a
real W-wave array would compute garbage, and the model raises
:class:`~repro.errors.SimulationError` instead of silently modelling an
unbuildable machine.  The merged mask feeds the occupancy recorder as a
single track, so measured idle fractions account the *shared* cell
lattice, not W copies of it.

``engine="gate"`` runs each wave's multiplication through the gate-level
:class:`~repro.systolic.mmmc_netlist.GateLevelMMMC` at issue time (the
netlist drives its own controller and cannot be single-stepped from
outside), then replays the closed-form
:func:`~repro.observability.occupancy.schedule_busy_mask` stream at the
scheduled wave offsets — the same closed form the gate engine itself
samples, which the tier-1 suite pins mask-for-mask to the RTL predicate.
Results are bit-exact netlist outputs; timing is the scheduled model.

Occupancy is sampled once per chip cycle (only while at least one wave is
in flight) under this instance's ``source`` name; the wrapped engines'
own per-cycle sampling is suppressed while they step inside the wrapper,
so a profiled interleaved run counts each shared-lattice cycle exactly
once instead of once per wave.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, List, Optional

from repro.errors import ParameterError, SimulationError
from repro.observability import OBS
from repro.observability.occupancy import schedule_busy_mask
from repro.chip.schedule import datapath_cycles, issue_interval

__all__ = ["MMMOp", "WaveOutcome", "InterleavedArray"]

_ENGINES = ("rtl", "gate")


@dataclass(frozen=True)
class MMMOp:
    """One Montgomery multiplication job: ``x·y·2^{-(l+2)} mod 2N``.

    ``tag`` is opaque routing context (the chip backend stores the request
    index there); it rides along unmodified into the outcome.
    """

    x: int
    y: int
    n: int
    tag: Any = None


@dataclass(frozen=True)
class WaveOutcome:
    """One retired multiplication: result plus its wave-level timing."""

    op: MMMOp
    value: int
    cycles: int  #: the engine's own per-MMM cycle count (latency, not span)
    wave: int  #: slot index the op ran in
    issue_cycle: int  #: chip cycle the op entered the array
    done_cycle: int  #: chip cycle count at which the result existed
    tile: Optional[int] = None  #: stamped by the Tile harness


class _Flight:
    """One in-flight wave: the op, its slot engine and schedule anchors."""

    __slots__ = ("op", "start", "engine", "value", "cycles", "done")

    def __init__(self, op: MMMOp, start: int, done: int) -> None:
        self.op = op
        self.start = start
        self.done = done
        self.engine = None  # SystolicArrayRTL for the rtl engine
        self.value: Optional[int] = None  # pre-computed for the gate engine
        self.cycles: Optional[int] = None


class InterleavedArray:
    """Up to ``waves`` independent MMM streams through one cell lattice.

    Issue governor (shared with :func:`repro.chip.schedule.issue_schedule`,
    which the tests pin the simulated stream against): slot ``w`` accepts
    an op only on chip cycles of parity ``w % 2`` (vacuous at ``waves=1``)
    and only if the previous start on that parity is at least
    ``issue_interval(l)`` cycles old; the slot frees after
    ``datapath_cycles`` cycles.  :meth:`try_issue` applies the governor at
    the current cycle; :meth:`step` advances the shared clock.
    """

    def __init__(
        self,
        l: int,
        *,
        waves: int = 2,
        mode: str = "corrected",
        engine: str = "rtl",
        source: str = "interleaved",
        check_hazards: bool = True,
    ) -> None:
        if waves < 1:
            raise ParameterError(f"waves must be >= 1, got {waves}")
        if engine not in _ENGINES:
            raise ParameterError(f"engine must be one of {_ENGINES}, got {engine!r}")
        self.l = l
        self.waves = waves
        self.mode = mode
        self.engine = engine
        self.source = source
        self.check_hazards = check_hazards
        self.top_cell = l + 1 if mode == "corrected" else l
        self.num_cells = self.top_cell + 1
        self.datapath_cycles = datapath_cycles(l, mode)
        self.issue_interval = issue_interval(l)
        self.cycle = 0
        self.issued = 0
        self.retired = 0
        self.last_step_active = False
        self._slots: List[Optional[_Flight]] = [None] * waves
        self._last_start: List[Optional[int]] = [None, None]
        self._completed: List[WaveOutcome] = []
        self._rtl_engines: List[Any] = [None] * waves
        self._gate: Any = None
        self._gate_masks: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return sum(1 for f in self._slots if f is not None)

    def _ready_slot(self) -> Optional[int]:
        c = self.cycle
        for w in range(self.waves):
            if self._slots[w] is not None:
                continue
            if self.waves >= 2:
                p = w % 2
                if c % 2 != p:
                    continue
                last = self._last_start[p]
                if last is not None and c - last < self.issue_interval:
                    continue
            return w
        return None

    def can_issue(self) -> bool:
        """True when the governor admits an op at the current cycle."""
        return self._ready_slot() is not None

    def try_issue(self, op: MMMOp) -> Optional[int]:
        """Issue ``op`` now if a slot and the governor allow; returns the slot."""
        w = self._ready_slot()
        if w is None:
            return None
        flight = _Flight(op, self.cycle, self.cycle + self.datapath_cycles)
        if self.engine == "rtl":
            eng = self._rtl_engines[w]
            if eng is None:
                from repro.systolic.array import SystolicArrayRTL

                eng = self._rtl_engines[w] = SystolicArrayRTL(self.l, mode=self.mode)
            eng.load(op.x, op.y, op.n)
            flight.engine = eng
        else:
            self._gate_issue(flight)
        self._slots[w] = flight
        if self.waves >= 2:
            self._last_start[w % 2] = self.cycle
        self.issued += 1
        if OBS.enabled:
            OBS.count("chip.ops_issued", wave=str(w))
        return w

    def _gate_issue(self, flight: _Flight) -> None:
        """Gate engine: run the netlist now, schedule its mask stream."""
        if self._gate is None:
            from repro.systolic.mmmc_netlist import GateLevelMMMC

            self._gate = GateLevelMMMC(self.l, mode=self.mode, simulator="compiled")
        op = flight.op
        occ = OBS.occupancy
        OBS.occupancy = None  # the wrapper samples the merged stream itself
        try:
            run = self._gate.multiply(op.x, op.y, op.n)
        finally:
            OBS.occupancy = occ
        flight.value = run.result
        flight.cycles = run.cycles
        masks = self._gate_masks
        for tau in range(self.datapath_cycles):
            mask = schedule_busy_mask(tau, self.l, self.top_cell)
            at = flight.start + tau
            prior = masks.get(at, 0)
            if self.check_hazards and prior & mask:
                raise SimulationError(
                    f"wave hazard at chip cycle {at}: scheduled masks "
                    f"{prior:#x} and {mask:#x} overlap — issue governor bug"
                )
            masks[at] = prior | mask
        self._gate_masks = masks

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the shared chip clock one cycle; retire drained waves."""
        c = self.cycle
        active = any(f is not None for f in self._slots)
        self.last_step_active = active
        union = 0
        if self.engine == "rtl":
            occ_saved = OBS.occupancy
            OBS.occupancy = None  # suppress per-wave "array" sampling
            try:
                for w, flight in enumerate(self._slots):
                    if flight is None:
                        continue
                    eng = flight.engine
                    mask = eng.busy_mask(eng.cycle)
                    if self.check_hazards and union & mask:
                        raise SimulationError(
                            f"wave hazard at chip cycle {c}: wave {w} claims "
                            f"cells {mask:#x} already busy ({union:#x}) — two "
                            "streams collided in the shared lattice"
                        )
                    union |= mask
                    eng.step()
                    if eng.cycle >= self.datapath_cycles:
                        self._retire(w, eng.result_value(), self.datapath_cycles + 1)
            finally:
                OBS.occupancy = occ_saved
        else:
            union = self._gate_masks.pop(c, 0)
            for w, flight in enumerate(self._slots):
                if flight is not None and flight.done == c + 1:
                    self._retire(w, flight.value, flight.cycles)
        if active and OBS.enabled:
            occ = OBS.occupancy
            if occ is not None:
                busy = occ.sample(self.source, c, union, self.num_cells)
                OBS.counter_event("occupancy." + self.source, busy, cat="chip")
        self.cycle = c + 1

    def _retire(self, w: int, value: int, cycles: int) -> None:
        flight = self._slots[w]
        assert flight is not None
        self._slots[w] = None
        self.retired += 1
        self._completed.append(
            WaveOutcome(
                op=flight.op,
                value=value,
                cycles=cycles,
                wave=w,
                issue_cycle=flight.start,
                done_cycle=self.cycle + 1,
            )
        )
        if OBS.enabled:
            OBS.count("chip.ops_retired", wave=str(w))

    def take_completed(self) -> List[WaveOutcome]:
        """Retired outcomes since the last call, in retirement order."""
        out = self._completed
        self._completed = []
        return out

    # ------------------------------------------------------------------
    # Convenience driver
    # ------------------------------------------------------------------
    def run(
        self, ops: Iterable[MMMOp], max_cycles: Optional[int] = None
    ) -> List[WaveOutcome]:
        """Feed ``ops`` back-to-back and run until every result drained.

        Issues greedily (head-of-line, one op per admissible cycle — the
        exact :func:`~repro.chip.schedule.issue_schedule` stream) and
        returns outcomes in retirement order.
        """
        queue: Deque[MMMOp] = deque(ops)
        limit = max_cycles
        if limit is None:
            limit = self.cycle + (len(queue) + self.in_flight + 1) * (
                self.datapath_cycles + self.issue_interval
            )
        out: List[WaveOutcome] = []
        while queue or self.in_flight:
            if queue and self.try_issue(queue[0]) is not None:
                queue.popleft()
            self.step()
            out.extend(self.take_completed())
            if self.cycle > limit:
                raise SimulationError(
                    f"interleaved run exceeded {limit} cycles with "
                    f"{len(queue)} queued / {self.in_flight} in flight"
                )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InterleavedArray(l={self.l}, waves={self.waves}, "
            f"engine={self.engine!r}, cycle={self.cycle}, "
            f"in_flight={self.in_flight})"
        )
