"""Multi-array chip: wave-interleaved tiles with FIFOs and dispatch.

Reclaims the ``2i+j`` schedule's ~66% cell idle time the hardware-faithful
way (see ``docs/CHIP.md``):

* :mod:`repro.chip.schedule` — parity/spacing issue-governor math, the
  steady-state idle/throughput closed forms, and tile-occupancy-aware
  completion estimates;
* :mod:`repro.chip.interleave` — :class:`InterleavedArray`, up to W
  independent MMM streams lock-stepped through one cell lattice with
  structural-hazard checking;
* :mod:`repro.chip.fifo` / :mod:`repro.chip.tile` — the bounded-FIFO tile
  harness;
* :mod:`repro.chip.dispatch` / :mod:`repro.chip.chip` — round-robin and
  least-queue-depth dispatchers over :class:`ChipModel`, N tiles on one
  shared clock;
* :mod:`repro.chip.backend` — the ``chip`` serving backend interleaving
  whole modexp batches across tiles and waves.
"""

from repro.chip.chip import ChipModel
from repro.chip.dispatch import (
    Dispatcher,
    LeastDepthDispatcher,
    RoundRobinDispatcher,
    make_dispatcher,
)
from repro.chip.fifo import BoundedFIFO
from repro.chip.interleave import InterleavedArray, MMMOp, WaveOutcome
from repro.chip.backend import ChipBackend
from repro.chip.schedule import (
    chip_makespan_cycles,
    completion_estimate_cycles,
    datapath_cycles,
    interleaved_idle_model,
    issue_interval,
    issue_schedule,
    makespan_cycles,
    speedup_model,
    steady_state_idle_fraction,
    steady_state_issue_rate,
)
from repro.chip.tile import Tile

__all__ = [
    "BoundedFIFO",
    "ChipBackend",
    "ChipModel",
    "Dispatcher",
    "InterleavedArray",
    "LeastDepthDispatcher",
    "MMMOp",
    "RoundRobinDispatcher",
    "Tile",
    "WaveOutcome",
    "chip_makespan_cycles",
    "completion_estimate_cycles",
    "datapath_cycles",
    "interleaved_idle_model",
    "issue_interval",
    "issue_schedule",
    "make_dispatcher",
    "makespan_cycles",
    "speedup_model",
    "steady_state_idle_fraction",
    "steady_state_issue_rate",
]
