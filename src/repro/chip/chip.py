"""The multi-array chip: N tiles on one clock behind a dispatcher.

``ChipModel`` steps every :class:`~repro.chip.tile.Tile` on a shared
cycle clock — the quad-core-RSA-style scale-out the ROADMAP's
"multi-array chip" item asks for.  Work enters through :meth:`submit`,
which routes each op through the dispatch policy into the first tile
whose input FIFO accepts it; ops every FIFO refuses wait in a chip-level
backlog and are retried each cycle (backpressure, never deadlock: tiles
always drain independently of new arrivals).  Results leave through
:meth:`collect`.

Observability per chip cycle (when an ``observe()`` session is active):

* occupancy source ``chip.tiles`` — one busy *bit per tile* sampled per
  cycle, so the existing heatmap renderer draws the chip heatmap (rows =
  tiles) and per-tile busy fractions fall out of the same track;
* per-tile cell-level tracks ``chip.tile<i>`` from each tile's
  interleaved array (cell heatmaps inside one tile);
* histograms ``chip.waves`` (in-flight waves per cycle) and
  ``chip.fifo_depth{tile,dir}``; counters ``chip.dispatched{tile,policy}``
  and ``chip.backlogged``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Union

from repro.errors import ParameterError, SimulationError
from repro.hdl.probes import ProbeSet
from repro.observability import OBS
from repro.chip.dispatch import Dispatcher, make_dispatcher
from repro.chip.interleave import MMMOp, WaveOutcome
from repro.chip.tile import Tile

__all__ = ["ChipModel"]


class ChipModel:
    """N wave-interleaved tiles stepping on one shared clock."""

    def __init__(
        self,
        l: int,
        *,
        tiles: int = 2,
        waves: int = 2,
        mode: str = "corrected",
        engine: str = "rtl",
        fifo_depth: int = 8,
        dispatcher: Union[str, Dispatcher] = "round-robin",
    ) -> None:
        if tiles < 1:
            raise ParameterError(f"chip needs tiles >= 1, got {tiles}")
        self.l = l
        self.waves = waves
        self.mode = mode
        self.engine = engine
        self.tiles: List[Tile] = [
            Tile(
                l,
                index=i,
                waves=waves,
                mode=mode,
                engine=engine,
                fifo_depth=fifo_depth,
            )
            for i in range(tiles)
        ]
        self.dispatcher = (
            dispatcher if isinstance(dispatcher, Dispatcher) else make_dispatcher(dispatcher)
        )
        self.backlog: Deque[MMMOp] = deque()
        self.cycle = 0
        self.submitted = 0
        self.retired = 0
        # Flight-recorder state: (hub, per-tile recorders, chip black box),
        # built lazily on the first step with an armed OBS.flightrec hub.
        self._flightrec = None

    # ------------------------------------------------------------------
    # Work intake / results
    # ------------------------------------------------------------------
    def _dispatch(self, op: MMMOp) -> bool:
        for t in self.dispatcher.order(self):
            if self.tiles[t].try_enqueue(op):
                if OBS.enabled:
                    OBS.count(
                        "chip.dispatched",
                        tile=str(t),
                        policy=self.dispatcher.name,
                    )
                return True
        return False

    def submit(self, op: MMMOp) -> None:
        """Route one op to a tile, or hold it in the backlog under pressure."""
        self.submitted += 1
        if not self._dispatch(op):
            self.backlog.append(op)
            if OBS.enabled:
                OBS.count("chip.backlogged")

    @property
    def waves_in_flight(self) -> int:
        return sum(t.array.in_flight for t in self.tiles)

    @property
    def pending(self) -> int:
        """Ops not yet delivered to a consumer (backlog + all tile stages)."""
        return len(self.backlog) + sum(t.pending for t in self.tiles)

    def collect(self) -> List[WaveOutcome]:
        """Every deliverable result across all tiles, tile-stamped."""
        out: List[WaveOutcome] = []
        for tile in self.tiles:
            out.extend(tile.drain_results())
        self.retired += len(out)
        return out

    # ------------------------------------------------------------------
    # Flight recorder (per-tile black boxes + chip-level fan-in)
    # ------------------------------------------------------------------
    def _flightrec_setup(self):
        """Build per-tile recorders + the chip black box when a hub is armed.

        Each tile gets its own bounded recorder over its health signals
        (FIFO depths, stage register, in-flight waves); the chip-level box
        samples the aggregate (busy-tile mask, waves, backlog).  Any tile
        trigger fans in: it freezes the chip box too, so a post-mortem
        shows both the offending tile's window and the chip-wide picture
        around the same cycle.
        """
        hub = OBS.flightrec
        if hub is None or not hub.armed:
            self._flightrec = None
            return None
        if self._flightrec is not None and self._flightrec[0] is hub:
            return self._flightrec
        tile_recs = []
        for i, tile in enumerate(self.tiles):
            ps = ProbeSet.from_values(tile.probe_layout())
            tile_recs.append(
                hub.new_recorder(
                    ps.names,
                    ps.widths,
                    ps.decode,
                    meta={"scope": f"tile{i}", "tile": i, "l": self.l, "engine": self.engine},
                )
            )
        chip_ps = ProbeSet.from_values(
            [("tiles", len(self.tiles)), ("waves", 8), ("backlog", 16)]
        )
        chip_rec = hub.new_recorder(
            chip_ps.names,
            chip_ps.widths,
            chip_ps.decode,
            meta={"scope": "chip", "tiles": len(self.tiles), "l": self.l, "engine": self.engine},
        )
        self._flightrec = (hub, tile_recs, chip_rec)
        return self._flightrec

    def notify_fault(self, tile_index: int, cause: str) -> None:
        """Route a fault event into the tile's recorder (and fan in)."""
        fr = self._flightrec_setup()
        if fr is None:
            return
        _, tile_recs, chip_rec = fr
        rec = tile_recs[tile_index] if 0 <= tile_index < len(tile_recs) else None
        if rec is not None:
            rec.notify_fault(self.cycle, cause)
        if chip_rec is not None:
            chip_rec.notify_fault(self.cycle, f"tile{tile_index}: {cause}")

    def flightrec_flush(self):
        """Emit every triggered recorder's bundle; returns the paths."""
        fr = self._flightrec
        if fr is None:
            return []
        hub, tile_recs, chip_rec = fr
        paths = []
        for rec in list(tile_recs) + [chip_rec]:
            path = hub.emit(rec, cycles=self.cycle)
            if path is not None:
                paths.append(path)
        self._flightrec = None
        return paths

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def step(self) -> None:
        """One shared clock edge: retry backlog, step tiles, record health."""
        while self.backlog and self._dispatch(self.backlog[0]):
            self.backlog.popleft()
        mask = 0
        for i, tile in enumerate(self.tiles):
            tile.step()
            if tile.array.last_step_active:
                mask |= 1 << i
        fr = self._flightrec_setup()
        if fr is not None:
            _, tile_recs, chip_rec = fr
            fired = None
            for i, tile in enumerate(self.tiles):
                rec = tile_recs[i]
                if rec is not None:
                    if rec.wants_sample(self.cycle):
                        rec.sample(self.cycle, tile.probe_values())
                    if rec.triggered and fired is None:
                        fired = (i, rec.cause)
            if chip_rec is not None:
                if chip_rec.wants_sample(self.cycle):
                    chip_rec.sample(
                        self.cycle, (mask, self.waves_in_flight, len(self.backlog))
                    )
                if fired is not None and not chip_rec.triggered:
                    # Trigger fan-in: the first tile trigger freezes the
                    # chip-level black box at the same shared-clock cycle.
                    chip_rec.notify_fault(
                        self.cycle, f"tile{fired[0]} trigger: {fired[1]}"
                    )
        if OBS.enabled:
            occ = OBS.occupancy
            if occ is not None:
                occ.sample("chip.tiles", self.cycle, mask, len(self.tiles))
            OBS.record("chip.waves", self.waves_in_flight)
            for i, tile in enumerate(self.tiles):
                OBS.record("chip.fifo_depth", len(tile.in_fifo), tile=str(i), dir="in")
                OBS.record("chip.fifo_depth", len(tile.out_fifo), tile=str(i), dir="out")
        self.cycle += 1

    # ------------------------------------------------------------------
    # Whole-workload driver
    # ------------------------------------------------------------------
    def run(
        self, ops: Iterable[MMMOp], max_cycles: Optional[int] = None
    ) -> List[WaveOutcome]:
        """Submit ``ops`` then run until drained; outcomes in retirement order."""
        for op in ops:
            self.submit(op)
        return self.run_until_drained(max_cycles)

    def run_until_drained(self, max_cycles: Optional[int] = None) -> List[WaveOutcome]:
        limit = max_cycles
        if limit is None:
            per = self.tiles[0].array
            limit = self.cycle + (self.pending + 1) * (
                per.datapath_cycles + per.issue_interval
            )
        out: List[WaveOutcome] = []
        while self.pending:
            self.step()
            out.extend(self.collect())
            if self.cycle > limit:
                self.flightrec_flush()
                raise SimulationError(
                    f"chip did not drain within {limit} cycles: "
                    f"{len(self.backlog)} backlogged, "
                    f"{self.waves_in_flight} waves in flight"
                )
        self.flightrec_flush()
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChipModel(l={self.l}, tiles={len(self.tiles)}, "
            f"waves={self.waves}, engine={self.engine!r}, cycle={self.cycle})"
        )
