"""Tile dispatch policies: which tile's input FIFO gets the next op.

A dispatcher only proposes an *order* of tiles to try; the chip walks the
order and enqueues into the first tile whose input FIFO accepts, so every
policy inherits the same backpressure behaviour (an op no tile can take
goes to the chip's backlog, never dropped).

* ``round-robin`` — rotate a pointer one tile per dispatched op; fair and
  stateless with respect to load, the hardware-cheapest policy.
* ``least-depth`` — sort tiles by queued + in-flight work; adapts to
  skewed service times (e.g. one tile hogged by long waves) at the cost
  of depth comparators.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chip.chip import ChipModel

__all__ = ["Dispatcher", "RoundRobinDispatcher", "LeastDepthDispatcher", "make_dispatcher"]


class Dispatcher:
    """Policy interface: :meth:`order` is called once per dispatched op."""

    name = "abstract"

    def order(self, chip: "ChipModel") -> List[int]:
        raise NotImplementedError


class RoundRobinDispatcher(Dispatcher):
    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def order(self, chip: "ChipModel") -> List[int]:
        n = len(chip.tiles)
        start = self._next % n
        self._next = (start + 1) % n
        return [(start + i) % n for i in range(n)]


class LeastDepthDispatcher(Dispatcher):
    name = "least-depth"

    def order(self, chip: "ChipModel") -> List[int]:
        return sorted(
            range(len(chip.tiles)),
            key=lambda t: (chip.tiles[t].queue_depth, t),
        )


_POLICIES = {
    RoundRobinDispatcher.name: RoundRobinDispatcher,
    LeastDepthDispatcher.name: LeastDepthDispatcher,
}


def make_dispatcher(policy: str) -> Dispatcher:
    """Instantiate a policy by name (``round-robin`` or ``least-depth``)."""
    try:
        return _POLICIES[policy]()
    except KeyError:
        raise ParameterError(
            f"unknown dispatch policy {policy!r}; one of {sorted(_POLICIES)}"
        ) from None
