"""The ``chip`` serving backend: modexp batches over the tiled chip model.

Where the other simulator backends run one request's square-and-multiply
chain to completion before touching the next, this backend *interleaves
the chains*: each request advances as a generator that yields one
Montgomery-multiplication operand pair at a time, the chip schedules the
outstanding multiplications of **different** requests into wave slots and
tiles concurrently, and each completed product resumes its requester's
chain.  Dependencies inside one chain are honoured automatically (a
request has at most one multiplication in flight); throughput comes from
cross-request concurrency — which is why the backend advertises
``mixed_exponent_lanes``: unlike the bit-sliced lane sweep, the chip does
not need a shared multiplication schedule, so the service may hand it
mixed-exponent groups up to ``tiles × waves`` wide.

Cycle accounting stays per-request and scalar-identical to the sequential
engines: a request's reported cycles are the sum of its own MMM
latencies (``3l+5`` each on the corrected array), untouched by how many
neighbours shared the lattice — so the existing per-request SLO formulas
keep holding.  The *group* completion estimate, which the chip actually
improves, comes from
:func:`repro.chip.schedule.completion_estimate_cycles` via
:meth:`ChipBackend.estimate_group_cycles` and the SLO policy's
``completion_budget``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import (
    DeadlineExceeded,
    FaultDetected,
    ParameterError,
    SimulationError,
)
from repro.montgomery.params import MontgomeryContext
from repro.robustness.verify import walter_bound_ok
from repro.serving.backends import (
    BackendCapabilities,
    BackendResult,
    ModExpBackend,
)
from repro.serving.request import ModExpRequest
from repro.chip.chip import ChipModel
from repro.chip.interleave import MMMOp
from repro.chip.schedule import completion_estimate_cycles, speedup_model

__all__ = ["ChipBackend"]

#: yields (x, y) operand pairs, receives the Montgomery product back.
_Chain = Generator[Tuple[int, int], int, int]


def _modexp_chain(base: int, exponent: int, r2: int) -> _Chain:
    """Algorithm 3 as a coroutine: yield operands, receive products.

    The multiplication sequence is exactly ``_square_multiply``'s —
    conversion, MSB-first squares + conditional multiplies, final
    ``Mont(A, 1)`` — so a chip-run request is bit- and count-identical to
    the sequential backends.
    """
    m_bar = yield (base, r2)
    a = m_bar
    for i in reversed(range(exponent.bit_length() - 1)):
        a = yield (a, a)
        if (exponent >> i) & 1:
            a = yield (a, m_bar)
    return (yield (a, 1))


class ChipBackend(ModExpBackend):
    """Wave-interleaved multi-tile chip over the cycle-accurate array."""

    name = "chip"
    wall_weight = 400.0  # steps W arrays per chip cycle, pure-Python governor

    def __init__(
        self,
        *,
        tiles: int = 2,
        waves: int = 2,
        engine: str = "rtl",
        fifo_depth: int = 8,
        dispatch: str = "least-depth",
        mode: str = "corrected",
        max_bits: int = 64,
    ) -> None:
        if engine not in ("rtl", "gate"):
            raise ParameterError(f"chip backend engine must be rtl|gate, got {engine!r}")
        self.tiles = tiles
        self.waves = waves
        self.engine = engine
        self.fifo_depth = fifo_depth
        self.dispatch = dispatch
        self.mode = mode
        self.capabilities = BackendCapabilities(
            description=(
                f"{tiles}-tile x {waves}-wave interleaved systolic chip "
                f"({engine} arrays, {dispatch} dispatch)"
            ),
            max_bits=max_bits if engine == "rtl" else min(max_bits, 10),
            cycle_accurate=True,
            simulator=True,
            process_safe=False,
            lanes=tiles * waves,
            mixed_exponent_lanes=True,
        )
        self._chips: Dict[int, ChipModel] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def estimate_cost(self, request: ModExpRequest) -> float:
        """Wall-cost estimate: sequential cost over the chip's speedup.

        The scheduler orders backends by wall cost; a chip amortizes a
        request across its concurrency, so the per-request figure is the
        sequential model divided by the steady-state throughput gain
        (``tiles × waves``-capped, parity-spacing-aware).
        """
        gain = speedup_model(
            max(request.width, 2), tiles=self.tiles, waves=self.waves, mode=self.mode
        )
        return self.model_cycles(request) * self.wall_weight / max(gain, 1.0)

    def estimate_group_cycles(self, requests: List[ModExpRequest]) -> int:
        """Tile-occupancy-aware completion estimate for a whole group."""
        if not requests:
            return 0
        l = max(max(r.width, 2) for r in requests)
        mults = [2 * max(r.exponent.bit_length(), 1) for r in requests]
        return completion_estimate_cycles(
            mults, l, tiles=self.tiles, waves=self.waves, mode=self.mode
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _chip(self, l: int) -> ChipModel:
        chip = self._chips.get(l)
        if chip is None:
            chip = self._chips[l] = ChipModel(
                l,
                tiles=self.tiles,
                waves=self.waves,
                mode=self.mode,
                engine=self.engine,
                fifo_depth=self.fifo_depth,
                dispatcher=self.dispatch,
            )
        return chip

    def execute(self, ctx: MontgomeryContext, request: ModExpRequest) -> BackendResult:
        return self.execute_many(ctx, [request])[0]

    def execute_many(
        self, ctx: MontgomeryContext, requests: List[ModExpRequest]
    ) -> List[BackendResult]:
        """Drive every request's chain through the chip concurrently.

        Deadline-aware drain: simulating a chip is expensive wall-clock
        work, so when *every* chain still in flight carries an absolute
        deadline that has already passed, the drain is abandoned (checked
        at entry and every ~256 chip cycles) with
        :class:`~repro.errors.DeadlineExceeded` rather than burning
        seconds computing answers nobody is waiting for.  The cached chip
        model is discarded on abandonment so stale in-flight operations
        can never leak into the next batch.
        """
        if not requests:
            return []

        def _all_expired(indices) -> bool:
            now = time.monotonic()
            live = list(indices)
            return bool(live) and all(
                requests[i].expires_at is not None and requests[i].expired(now)
                for i in live
            )

        if _all_expired(range(len(requests))):
            raise DeadlineExceeded(
                f"all {len(requests)} requests past their deadline before "
                "the chip drain started",
                where="chip",
            )
        n = ctx.modulus
        with self._lock:
            chip = self._chip(ctx.l)
            chains: Dict[int, _Chain] = {}
            values: List[Optional[int]] = [None] * len(requests)
            cycles: List[int] = [0] * len(requests)
            for idx, req in enumerate(requests):
                chain = _modexp_chain(req.base, req.exponent, ctx.r2_mod_n)
                x, y = next(chain)
                chains[idx] = chain
                chip.submit(MMMOp(x, y, n, tag=idx))
            # Generous drain bound: every chain multiplication in sequence
            # plus the issue slack — only a livelock can exceed it.
            total_mults = sum(
                2 * max(r.exponent.bit_length(), 1) + 2 for r in requests
            )
            limit = chip.cycle + (total_mults + 1) * (
                chip.tiles[0].array.datapath_cycles
                + chip.tiles[0].array.issue_interval
            )
            deadline_check = chip.cycle + 256
            while chains:
                if chip.cycle >= deadline_check:
                    deadline_check = chip.cycle + 256
                    if _all_expired(chains):
                        # Mid-drain abandonment leaves operations in the
                        # chip's FIFOs; drop the cached model so the next
                        # batch starts from a clean lattice.
                        self._chips.pop(ctx.l, None)
                        raise DeadlineExceeded(
                            f"all {len(chains)} remaining chains past their "
                            "deadline; abandoning chip drain",
                            where="chip",
                        )
                chip.step()
                for outcome in chip.collect():
                    idx = outcome.op.tag
                    product = outcome.value
                    if not walter_bound_ok(product, n):
                        raise FaultDetected(
                            f"chip product {product} outside [0, {2 * n}) — "
                            "Walter T < 2N invariant violated",
                            check="walter-bound",
                        )
                    cycles[idx] += outcome.cycles
                    chain = chains[idx]
                    try:
                        x, y = chain.send(product)
                    except StopIteration as fin:
                        values[idx] = fin.value % n
                        del chains[idx]
                    else:
                        chip.submit(MMMOp(x, y, n, tag=idx))
                if chip.cycle > limit:
                    raise SimulationError(
                        f"chip backend did not drain {len(chains)} chains "
                        f"within {limit} cycles"
                    )
        assert all(v is not None for v in values)
        return [BackendResult(v, c) for v, c in zip(values, cycles)]
