"""One chip tile: an interleaved array behind bounded input/output FIFOs.

The tile is the unit the chip replicates.  Its per-cycle contract,
executed by :meth:`Tile.step` on the chip's shared clock:

1. **deliver** — move previously retired results that found the output
   FIFO full (held in an internal stage register) into the output FIFO,
   oldest first, as far as space allows;
2. **issue** — pop ops off the input FIFO into the array as long as the
   wave governor admits them this cycle;
3. **clock** — step the interleaved array one cycle;
4. **drain** — push freshly retired results (stamped with the tile index)
   to the output FIFO, spilling to the stage register under backpressure.

Every enqueued op produces exactly one outcome in the output FIFO (or the
stage register until space frees), in retirement order — the exactly-once
guarantee the backpressure tests pin.  A completely empty tile's step is
a no-op: no state advances, nothing is sampled, so idle tiles cost
nothing but the emptiness check.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Deque, List, Optional

from repro.chip.fifo import BoundedFIFO
from repro.chip.interleave import InterleavedArray, MMMOp, WaveOutcome

__all__ = ["Tile"]


class Tile:
    """Array + FIFO harness; see the module docstring for step semantics."""

    def __init__(
        self,
        l: int,
        *,
        index: int = 0,
        waves: int = 2,
        mode: str = "corrected",
        engine: str = "rtl",
        fifo_depth: int = 8,
        source: Optional[str] = None,
    ) -> None:
        self.index = index
        self.array = InterleavedArray(
            l,
            waves=waves,
            mode=mode,
            engine=engine,
            source=source if source is not None else f"chip.tile{index}",
        )
        self.in_fifo: BoundedFIFO[MMMOp] = BoundedFIFO(fifo_depth)
        self.out_fifo: BoundedFIFO[WaveOutcome] = BoundedFIFO(fifo_depth)
        self._stage: Deque[WaveOutcome] = deque()

    # ------------------------------------------------------------------
    # Chip-facing interface
    # ------------------------------------------------------------------
    def try_enqueue(self, op: MMMOp) -> bool:
        """Dispatcher entry point: ``False`` = input FIFO full, hold the op."""
        return self.in_fifo.push(op)

    @property
    def busy(self) -> bool:
        """True while the array holds at least one in-flight wave."""
        return self.array.in_flight > 0

    @property
    def queue_depth(self) -> int:
        """Dispatcher load signal: queued + in-flight work."""
        return len(self.in_fifo) + self.array.in_flight

    @property
    def pending(self) -> int:
        """Everything not yet handed to a consumer."""
        return (
            len(self.in_fifo)
            + self.array.in_flight
            + len(self._stage)
            + len(self.out_fifo)
        )

    @property
    def idle(self) -> bool:
        return self.pending == 0

    def step(self) -> None:
        if self.idle:
            return  # the no-op contract: nothing to do, nothing advances
        while self._stage:
            if not self.out_fifo.push(self._stage[0]):
                break
            self._stage.popleft()
        while self.in_fifo:
            op = self.in_fifo.peek()
            assert op is not None
            if self.array.try_issue(op) is None:
                break
            self.in_fifo.pop()
        self.array.step()
        for outcome in self.array.take_completed():
            stamped = replace(outcome, tile=self.index)
            if self._stage or not self.out_fifo.push(stamped):
                self._stage.append(stamped)

    # ------------------------------------------------------------------
    # Flight-recorder probes
    # ------------------------------------------------------------------
    def probe_layout(self):
        """``(name, bit_width)`` pairs describing :meth:`probe_values`.

        The chip-level flight recorder samples these per shared-clock
        cycle: FIFO depths, the backpressure stage register, in-flight
        waves and the busy flag — the tile-health signals a logic analyzer
        on the dispatch fabric would watch.
        """
        depth_bits = max(self.in_fifo.capacity.bit_length(), 1)
        return [
            ("in_fifo", depth_bits),
            ("out_fifo", depth_bits),
            ("stage", depth_bits),
            ("inflight", max(self.array.waves.bit_length(), 1)),
            ("busy", 1),
        ]

    def probe_values(self):
        """One flat per-cycle sample of the tile's health signals."""
        return (
            len(self.in_fifo),
            len(self.out_fifo),
            len(self._stage),
            self.array.in_flight,
            1 if self.busy else 0,
        )

    def drain_results(self) -> List[WaveOutcome]:
        """Consumer entry point: pop every result, in retirement order.

        The stage register only ever holds results retired *after* the
        newest FIFO entry (it spills once the FIFO is full), so FIFO
        contents followed by stage contents is retirement order.
        """
        out = self.out_fifo.drain()
        out.extend(self._stage)
        self._stage.clear()
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tile(index={self.index}, in={len(self.in_fifo)}, "
            f"flight={self.array.in_flight}, out={len(self.out_fifo)})"
        )
