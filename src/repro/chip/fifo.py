"""A bounded FIFO with non-blocking push/pop, the tile queue primitive.

Hardware FIFOs do not grow and do not block the clock: a full queue
simply refuses the write strobe and the producer must hold its data.
:class:`BoundedFIFO` models exactly that — :meth:`push` returns ``False``
when full (the dispatcher's backpressure signal), :meth:`pop` returns
``None`` when empty — and keeps lifetime counters so FIFO pressure is
observable (``pushed``/``popped``/``rejected``, high-water depth).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, Optional, TypeVar

from repro.errors import ParameterError

__all__ = ["BoundedFIFO"]

T = TypeVar("T")


class BoundedFIFO(Generic[T]):
    """First-in first-out queue with a hard capacity."""

    __slots__ = ("capacity", "_items", "pushed", "popped", "rejected", "high_water")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ParameterError(f"FIFO capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self.pushed = 0
        self.popped = 0
        self.rejected = 0
        self.high_water = 0

    def push(self, item: T) -> bool:
        """Enqueue ``item``; ``False`` (and no side effect) when full."""
        if len(self._items) >= self.capacity:
            self.rejected += 1
            return False
        self._items.append(item)
        self.pushed += 1
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)
        return True

    def pop(self) -> Optional[T]:
        """Dequeue the oldest item, or ``None`` when empty."""
        if not self._items:
            return None
        self.popped += 1
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        """The oldest item without removing it, or ``None`` when empty."""
        return self._items[0] if self._items else None

    def drain(self) -> List[T]:
        """Pop everything, oldest first."""
        out = list(self._items)
        self.popped += len(out)
        self._items.clear()
        return out

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoundedFIFO({len(self._items)}/{self.capacity})"
