"""Wave-issue scheduling math for the interleaved array and the chip.

The ``2i+j`` schedule keeps each cell of a lone multiplication busy only
``l+2`` of the ``3l+4`` datapath cycles (``3l+3`` paper mode) — the
~66% idle fraction PR 6's profiler measures.  The slack is *structured*:
cell ``j`` computes a real digit only on cycles of parity ``j mod 2``,
and the productive rows of one multiplication occupy a sliding window of
at most ``l+2`` same-parity cells.  Two consequences, both proven by the
mask-disjointness check in :mod:`repro.chip.interleave`:

* a second operand stream started on the **opposite clock parity** uses a
  register lattice disjoint from the first, at any offset;
* a second stream on the **same parity** is disjoint as soon as its start
  lags by ``2(l+2)`` cycles — the wavefront of the older stream has then
  moved past every cell the younger one can reach.

This module holds the closed forms and the greedy issue governor that
both the cycle-accurate :class:`~repro.chip.interleave.InterleavedArray`
and the serving cost model share, so the model and the measurement can be
cross-checked cycle for cycle.

Wave slots
----------
``waves`` slots are parity-bound: slot ``w`` may only start on cycles of
parity ``w mod 2`` (with a single slot the constraint is vacuous — the
array is sequential).  An issue on parity ``p`` blocks further issues on
``p`` for :func:`issue_interval` cycles; a slot is freed when its
multiplication drains after :func:`datapath_cycles`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ParameterError

__all__ = [
    "datapath_cycles",
    "issue_interval",
    "issue_schedule",
    "makespan_cycles",
    "interleaved_idle_model",
    "steady_state_idle_fraction",
    "steady_state_issue_rate",
    "chip_makespan_cycles",
    "completion_estimate_cycles",
    "speedup_model",
]

_MODES = ("corrected", "paper")


def _check(l: int, waves: int, mode: str) -> None:
    if l < 2:
        raise ParameterError(f"interleaving needs l >= 2, got {l}")
    if waves < 1:
        raise ParameterError(f"waves must be >= 1, got {waves}")
    if mode not in _MODES:
        raise ParameterError(f"mode must be one of {_MODES}, got {mode!r}")


def datapath_cycles(l: int, mode: str = "corrected") -> int:
    """Array cycles one multiplication holds its wave slot: 3l+4 / 3l+3."""
    top_cell = l + 1 if mode == "corrected" else l
    return 2 * (l + 1) + top_cell + 1


def issue_interval(l: int) -> int:
    """Minimum start distance between two same-parity waves: ``2(l+2)``.

    Rows ``0..l+1`` of a multiplication reach cell ``j`` at cycles
    ``j, j+2, ..., j+2(l+1)``.  Two same-parity streams offset by
    ``Δ = 2(l+2)`` want cell ``j`` at row sets ``{j+2i}`` and
    ``{j+Δ+2i}`` whose closest approach is ``Δ - 2(l+1) = 2 > 0`` — the
    minimal safe spacing, and it is exact: ``Δ - 2`` collides.
    """
    return 2 * (l + 2)


def issue_schedule(
    count: int, l: int, waves: int = 2, mode: str = "corrected"
) -> List[int]:
    """Start cycles the greedy wave governor gives ``count`` back-to-back ops.

    Mirrors :class:`~repro.chip.interleave.InterleavedArray` exactly: each
    op takes the earliest cycle at which some slot is free, the cycle
    parity matches the slot parity (``waves >= 2``), and the last start on
    that parity is at least :func:`issue_interval` cycles old.  The
    interleave tests pin the simulated issue stream to this list.
    """
    _check(l, waves, mode)
    if count < 0:
        raise ParameterError(f"count must be >= 0, got {count}")
    d = datapath_cycles(l, mode)
    interval = issue_interval(l)
    slot_free = [0] * waves
    last_start: List[Optional[int]] = [None, None]  # per parity
    starts: List[int] = []
    for _ in range(count):
        best: Optional[int] = None
        best_slot = 0
        for w in range(waves):
            at = slot_free[w]
            if waves >= 2:
                p = w % 2
                if last_start[p] is not None:
                    at = max(at, last_start[p] + interval)
                if at % 2 != p:
                    at += 1
            if best is None or at < best:
                best, best_slot = at, w
        assert best is not None
        starts.append(best)
        slot_free[best_slot] = best + d
        if waves >= 2:
            last_start[best_slot % 2] = best
    return starts


def makespan_cycles(
    count: int, l: int, waves: int = 2, mode: str = "corrected"
) -> int:
    """Cycles from first issue to last drain for ``count`` back-to-back ops."""
    starts = issue_schedule(count, l, waves, mode)
    if not starts:
        return 0
    return starts[-1] + datapath_cycles(l, mode)


def interleaved_idle_model(
    count: int, l: int, waves: int = 2, mode: str = "corrected"
) -> float:
    """Predicted idle fraction of a ``count``-op interleaved run.

    Every cell is busy exactly ``l+2`` cycles per multiplication, so over
    the greedy makespan the idle fraction is
    ``1 - count*(l+2)/makespan`` — the number the occupancy recorder must
    reproduce from the simulated masks.  At ``waves=1`` and ``count=1``
    this is :func:`~repro.observability.occupancy.analytic_idle_fraction`.
    """
    span = makespan_cycles(count, l, waves, mode)
    if span == 0:
        return 0.0
    return 1.0 - count * (l + 2) / span


def steady_state_issue_rate(
    l: int, waves: int = 2, mode: str = "corrected"
) -> float:
    """Sustained multiplications per cycle of a ``waves``-slot array.

    Parity ``p`` owns ``n_p`` slots (``ceil(W/2)`` even, ``floor(W/2)``
    odd); it can sustain ``min(n_p / datapath, 1 / interval)`` starts per
    cycle — slot recycling bound vs. same-parity spacing bound.  With a
    single wave the array is sequential: ``1 / datapath``.
    """
    _check(l, waves, mode)
    d = datapath_cycles(l, mode)
    if waves == 1:
        return 1.0 / d
    interval = issue_interval(l)
    rate = 0.0
    for p in (0, 1):
        n_p = (waves + (1 - p)) // 2
        if n_p:
            rate += min(n_p / d, 1.0 / interval)
    return rate


def steady_state_idle_fraction(
    l: int, waves: int = 2, mode: str = "corrected"
) -> float:
    """Idle fraction of a saturated ``waves``-slot array.

    ``1 - rate*(l+2)``, floored at zero: each sustained multiplication
    keeps every cell busy ``l+2`` cycles.  At ``waves=1`` this is the
    profiler's ``1-(l+2)/(3l+4)``; at ``waves=2`` it halves to
    ``1-2(l+2)/(3l+4)`` (~33% at l=64); by ``waves=4`` the spacing bound
    saturates the array and idle reaches 0.
    """
    busy = steady_state_issue_rate(l, waves, mode) * (l + 2)
    return max(0.0, 1.0 - busy)


def chip_makespan_cycles(
    count: int,
    l: int,
    *,
    tiles: int = 1,
    waves: int = 2,
    mode: str = "corrected",
) -> int:
    """Estimated chip cycles to retire ``count`` independent MMMs.

    Balanced dispatch puts ``ceil(count/tiles)`` ops on the fullest tile;
    the chip finishes when that tile drains.  An estimate, not a bound:
    skewed FIFO depths or a cold dispatcher can add slack, which is why
    the chip benchmark measures the real makespan against this figure.
    """
    if tiles < 1:
        raise ParameterError(f"tiles must be >= 1, got {tiles}")
    if count <= 0:
        return 0
    per_tile = -(-count // tiles)
    return makespan_cycles(per_tile, l, waves, mode)


def completion_estimate_cycles(
    mult_counts: Sequence[int],
    l: int,
    *,
    tiles: int = 1,
    waves: int = 2,
    mode: str = "corrected",
) -> int:
    """Tile-occupancy-aware completion estimate for a group of modexps.

    ``mult_counts`` holds each request's multiplication count (squares +
    multiplies + pre/post).  The chip is throughput-bound by the makespan
    of the pooled multiplications spread over its tiles, but latency-bound
    by the longest *dependent* chain — one exponentiation cannot overlap
    its own squarings, so no amount of tiling beats
    ``max(mult_counts) * (datapath+1)``.  The estimate is the larger of
    the two; it replaces the flat ``mults * (3l+4)`` per-op formula in
    chip-aware SLO budgets.
    """
    counts = [c for c in mult_counts if c > 0]
    if not counts:
        return 0
    per_op = datapath_cycles(l, mode) + 1  # + OUT cycle, the paper's T_MMM
    chain_bound = max(counts) * per_op
    pooled = chip_makespan_cycles(
        sum(counts), l, tiles=tiles, waves=waves, mode=mode
    )
    return max(chain_bound, pooled)


def speedup_model(
    l: int, *, tiles: int = 1, waves: int = 2, mode: str = "corrected"
) -> float:
    """Steady-state throughput of the chip relative to one plain array."""
    single = 1.0 / datapath_cycles(l, mode)
    return tiles * steady_state_issue_rate(l, waves, mode) / single
