"""Scalar multiplication — the ECC "basic operation" of the paper's outlook.

Three ladders over the Jacobian arithmetic:

* :func:`scalar_multiply` — left-to-right double-and-add (the direct
  analogue of the paper's Algorithm 3);
* :func:`naf_scalar_multiply` — width-w NAF with precomputed odd
  multiples (fewer additions: the standard speed/-area trade);
* :func:`montgomery_ladder` — fixed double+add per bit, the regular
  (SPA-resistant) schedule that pairs naturally with the paper's
  subtraction-free multiplier for side-channel hardening.

Each returns the resulting point together with a
:class:`ScalarMulReport` carrying the exact number of Montgomery
multiplications consumed, from which the hardware latency follows as
``mults × (3l+4)`` cycles × Tp — the number an ECC companion paper to
this multiplier would report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.ecc.curves import WeierstrassCurve
from repro.ecc.point import AffinePoint, JacobianPoint
from repro.errors import ParameterError
from repro.systolic.timing import mmm_cycles

__all__ = [
    "ScalarMulReport",
    "scalar_multiply",
    "naf_scalar_multiply",
    "montgomery_ladder",
    "non_adjacent_form",
    "ecdh_shared_secret",
]


@dataclass(frozen=True)
class ScalarMulReport:
    """Cost accounting of one scalar multiplication."""

    point: AffinePoint
    field_multiplications: int
    doubles: int
    adds: int

    def hardware_cycles(self, l: int = None) -> int:
        """Estimated multiplier cycles: ``mults × (3l+4)``."""
        bits = l if l is not None else self.point.curve.bits
        return self.field_multiplications * mmm_cycles(bits)


def _validate(point: AffinePoint, k: int) -> None:
    if not isinstance(k, int) or isinstance(k, bool):
        raise ParameterError("scalar must be an int")
    if k < 0:
        raise ParameterError(f"scalar must be >= 0, got {k}")
    if point.curve is None:  # pragma: no cover - defensive
        raise ParameterError("point has no curve")


def scalar_multiply(point: AffinePoint, k: int) -> ScalarMulReport:
    """Left-to-right binary double-and-add: ``[k]P``."""
    _validate(point, k)
    field = point.curve.field
    before = field.mult_count
    doubles = adds = 0
    acc = JacobianPoint.infinity(point.curve)
    base = point.to_jacobian()
    for i in reversed(range(k.bit_length())):
        acc = acc.double()
        doubles += 1
        if (k >> i) & 1:
            acc = acc.add(base)
            adds += 1
    result = acc.to_affine()
    return ScalarMulReport(
        point=result,
        field_multiplications=field.mult_count - before,
        doubles=doubles,
        adds=adds,
    )


def non_adjacent_form(k: int, width: int = 2) -> List[int]:
    """Width-``w`` NAF digits of ``k`` (least significant first).

    Digits are zero or odd with ``|d| < 2^(w-1)``; no ``w`` consecutive
    nonzero digits occur — the density that cuts additions to
    ``~1/(w+1)`` of the bits.
    """
    if width < 2:
        raise ParameterError(f"NAF width must be >= 2, got {width}")
    if k < 0:
        raise ParameterError(f"scalar must be >= 0, got {k}")
    digits: List[int] = []
    base = 1 << width
    while k:
        if k & 1:
            d = k % base
            if d >= base // 2:
                d -= base
            k -= d
        else:
            d = 0
        digits.append(d)
        k >>= 1
    return digits


def naf_scalar_multiply(point: AffinePoint, k: int, width: int = 4) -> ScalarMulReport:
    """Width-w NAF scalar multiplication with precomputed odd multiples."""
    _validate(point, k)
    field = point.curve.field
    before = field.mult_count
    doubles = adds = 0
    digits = non_adjacent_form(k, width)
    # Precompute odd multiples P, 3P, ..., (2^(w-1)-1)P.
    base = point.to_jacobian()
    twice = base.double()
    doubles += 1
    odd_multiples = {1: base}
    for d in range(3, 1 << (width - 1), 2):
        odd_multiples[d] = odd_multiples[d - 2].add(twice)
        adds += 1
    acc = JacobianPoint.infinity(point.curve)
    for d in reversed(digits):
        acc = acc.double()
        doubles += 1
        if d > 0:
            acc = acc.add(odd_multiples[d])
            adds += 1
        elif d < 0:
            acc = acc.add(-odd_multiples[-d])
            adds += 1
    result = acc.to_affine()
    return ScalarMulReport(
        point=result,
        field_multiplications=field.mult_count - before,
        doubles=doubles,
        adds=adds,
    )


def montgomery_ladder(point: AffinePoint, k: int) -> ScalarMulReport:
    """Montgomery ladder: one double and one add per scalar bit, always.

    The operation sequence is independent of the key bits (only the
    operand routing differs), complementing the multiplier's constant
    ``3l+4``-cycle timing for a fully regular trace — the side-channel
    story Section 5 of the paper points at.
    """
    _validate(point, k)
    field = point.curve.field
    before = field.mult_count
    doubles = adds = 0
    r0 = JacobianPoint.infinity(point.curve)
    r1 = point.to_jacobian()
    for i in reversed(range(k.bit_length())):
        if (k >> i) & 1:
            r0 = r0.add(r1)
            r1 = r1.double()
        else:
            r1 = r0.add(r1)
            r0 = r0.double()
        adds += 1
        doubles += 1
    result = r0.to_affine()
    return ScalarMulReport(
        point=result,
        field_multiplications=field.mult_count - before,
        doubles=doubles,
        adds=adds,
    )


def ecdh_shared_secret(
    curve: WeierstrassCurve, private_a: int, private_b: int
) -> Tuple[int, int, bool]:
    """Demonstration ECDH: returns (secret_a_x, secret_b_x, match).

    Both parties derive the shared point from the other's public point;
    the x-coordinates must agree.  All arithmetic runs on the Montgomery
    multiplier model.
    """
    g = AffinePoint.generator(curve)
    pub_a = scalar_multiply(g, private_a).point
    pub_b = scalar_multiply(g, private_b).point
    shared_a = scalar_multiply(pub_b, private_a).point
    shared_b = scalar_multiply(pub_a, private_b).point
    if shared_a.is_infinity or shared_b.is_infinity:
        return (0, 0, shared_a.is_infinity == shared_b.is_infinity)
    return (shared_a.x, shared_b.x, shared_a.x == shared_b.x)
