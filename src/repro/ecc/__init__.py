"""Elliptic-curve cryptography over the Montgomery multiplier.

The paper's conclusion: "One direction in which this work should go is to
implement also an ECC basic operation, i.e., point multiplication.  This
operation does not require modular exponentiation but modular
multiplication only, so all required components are available."  This
package demonstrates exactly that: GF(p) arithmetic backed by the
Montgomery domain (:mod:`repro.ecc.field`), short Weierstrass curves
(:mod:`repro.ecc.curves`), Jacobian-coordinate point arithmetic
(:mod:`repro.ecc.point`) and scalar multiplication with three ladders
(:mod:`repro.ecc.scalarmul`) — every field multiplication is one pass of
the paper's multiplier, so point-multiplication latency follows directly
from the ``3l+4`` cycle count.
"""

from repro.ecc.field import PrimeField, FieldElement
from repro.ecc.curves import WeierstrassCurve, NIST_P192, NIST_P256, TOY_CURVE
from repro.ecc.point import AffinePoint, JacobianPoint
from repro.ecc.scalarmul import (
    scalar_multiply,
    montgomery_ladder,
    naf_scalar_multiply,
    ecdh_shared_secret,
)

__all__ = [
    "PrimeField",
    "FieldElement",
    "WeierstrassCurve",
    "NIST_P192",
    "NIST_P256",
    "TOY_CURVE",
    "AffinePoint",
    "JacobianPoint",
    "scalar_multiply",
    "montgomery_ladder",
    "naf_scalar_multiply",
    "ecdh_shared_secret",
]
