"""τ-adic scalar multiplication on Koblitz curves (Solinas 2000).

K-163 (``a = b = 1``) is an *anomalous binary curve*: the Frobenius map
``φ(x, y) = (x², y²)`` is an endomorphism satisfying

    φ² − μ·φ + 2 = 0,         μ = (−1)^(1−a) = 1,

so φ behaves like the complex number ``τ = (μ + √−7)/2`` and scalars can
be expanded in base τ with digits {0, ±1}.  A squaring costs 1 multiplier
pass (3 in LD coordinates for the whole point) versus ~9 for a doubling —
which is the entire reason NIST standardized Koblitz curves.

Pipeline implemented here:

* :func:`tau_expand` — τ-adic NAF of an element of Z[τ] (digits 0, ±1,
  no two adjacent nonzeros);
* :func:`partmod` — Solinas' reduction ``k partmod δ``,
  ``δ = (τ^m − 1)/(τ − 1)``, shrinking the expansion from ~2·|k| to ~m
  digits (valid on the main subgroup, where ``δ·P = O``);
* :func:`tnaf_scalar_multiply` — Horner evaluation
  ``Q ← φ(Q); Q ← Q ± P`` over LD coordinates.

Everything is validated by equality against the binary LD ladder on
K-163 and by exhaustive checks of the algebraic identities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.ecc.binary import BinaryCurve, BinaryPoint
from repro.ecc.binary_ld import LDPoint
from repro.errors import ParameterError

__all__ = [
    "tau_expand",
    "tau_power",
    "norm",
    "partmod",
    "tnaf_scalar_multiply",
]


def _mu(curve: BinaryCurve) -> int:
    if curve.b != 1:
        raise ParameterError(f"{curve.name} is not a Koblitz curve (b != 1)")
    return 1 if curve.a == 1 else -1


def norm(a: int, b: int, mu: int) -> int:
    """Norm of ``a + b·τ`` in Z[τ]: ``a² + μ·a·b + 2·b²``."""
    return a * a + mu * a * b + 2 * b * b


def tau_power(i: int, mu: int) -> Tuple[int, int]:
    """``τ^i`` as ``(a, b)`` with τ^i = a + b·τ (τ² = μτ − 2)."""
    if i < 0:
        raise ParameterError("exponent must be >= 0")
    a, b = 1, 0
    for _ in range(i):
        a, b = -2 * b, a + mu * b  # multiply by τ
    return a, b


def tau_expand(a: int, b: int, mu: int, *, naf: bool = True) -> List[int]:
    """τ-adic (NAF) digits of ``a + b·τ``, least significant first.

    Solinas' division algorithm: while the element is nonzero, emit a
    digit making it divisible by τ, then divide.  With ``naf=True`` the
    digit choice ``d = 2 − ((a − 2b) mod 4)`` guarantees the *next* digit
    is zero, giving the non-adjacent form (average density 1/3).
    """
    digits: List[int] = []
    guard = 0
    while a != 0 or b != 0:
        if a & 1:
            if naf:
                # d ∈ {±1} chosen so the next digit is 0 (non-adjacency).
                d = 2 - ((a - 2 * b) % 4)
            else:
                d = 1 if a % 4 == 1 else -1
            digits.append(d)
            a -= d
        else:
            digits.append(0)
        # divide by τ:  (a + bτ)/τ = (b + μ·a/2) − (a/2)·τ
        a, b = b + mu * (a // 2), -(a // 2)
        guard += 1
        if guard > 10000:
            raise ParameterError("tau expansion did not terminate")
    return digits


def _delta(m: int, mu: int) -> Tuple[int, int]:
    """``δ = (τ^m − 1)/(τ − 1) = Σ_{i<m} τ^i`` as ``(a, b)``."""
    a_acc = b_acc = 0
    a, b = 1, 0
    for _ in range(m):
        a_acc += a
        b_acc += b
        a, b = -2 * b, a + mu * b
    return a_acc, b_acc


def _round_div(num: int, den: int) -> int:
    """Round ``num/den`` to the nearest integer (den > 0), half away from 0."""
    if den <= 0:
        raise ParameterError("denominator must be positive")
    q, r = divmod(num, den)
    if 2 * r >= den:
        q += 1
    return q


def partmod(k: int, curve: BinaryCurve) -> Tuple[int, int]:
    """Solinas reduction: ``k partmod δ`` as an element ``r0 + r1·τ``.

    Computes ``q = round(k·conj(δ) / N(δ))`` coordinate-wise and returns
    ``r = k − q·δ``; then ``[k]P = [r]P`` for P in the main subgroup
    (``δ·P = O``), and the τ-expansion of r has ~m digits instead of ~2m.
    """
    mu = _mu(curve)
    da, db = _delta(curve.m, mu)
    n_delta = norm(da, db, mu)
    # conj(δ) = (da + μ·db) − db·τ   (since conj(τ) = μ − τ)
    ca, cb = da + mu * db, -db
    # k·conj(δ) = k·ca + k·cb·τ
    q0 = _round_div(k * ca, n_delta)
    q1 = _round_div(k * cb, n_delta)
    # r = k − q·δ, with q·δ = (q0 + q1τ)(da + dbτ)
    #   = q0·da − 2·q1·db + (q0·db + q1·da + μ·q1·db)·τ
    r0 = k - (q0 * da - 2 * q1 * db)
    r1 = -(q0 * db + q1 * da + mu * q1 * db)
    return r0, r1


@dataclass(frozen=True)
class TnafReport:
    """Cost record of one τNAF scalar multiplication."""

    point: BinaryPoint
    field_multiplications: int
    frobenius_count: int
    additions: int
    digits: int


def _frobenius_ld(p: LDPoint) -> LDPoint:
    """φ on LD coordinates: square every coordinate (3 multiplier passes)."""
    f = p.field
    return LDPoint(p.curve, f, f.square(p.X), f.square(p.Y), f.square(p.Z))


def tnaf_scalar_multiply(
    point: BinaryPoint, k: int, *, reduce_first: bool = True
) -> TnafReport:
    """``[k]P`` by τ-adic NAF over LD coordinates.

    With ``reduce_first`` (default) the scalar is first reduced
    ``partmod δ`` — correct on the main subgroup (asserted in tests by
    equality with the binary ladder); pass False for arbitrary points at
    the cost of a ~2× longer expansion.
    """
    if not isinstance(k, int) or isinstance(k, bool) or k < 0:
        raise ParameterError("scalar must be a non-negative int")
    curve = point.curve
    mu = _mu(curve)
    if reduce_first:
        r0, r1 = partmod(k, curve)
    else:
        r0, r1 = k, 0
    digits = tau_expand(r0, r1, mu)
    f = point.field
    before = f.mult_count
    neg = -point
    acc = LDPoint.infinity(curve, f)
    frob = adds = 0
    for d in reversed(digits):
        acc = _frobenius_ld(acc)
        frob += 1
        if d == 1:
            acc = acc.add_affine(point)
            adds += 1
        elif d == -1:
            acc = acc.add_affine(neg)
            adds += 1
    result = acc.to_affine()
    return TnafReport(
        point=result,
        field_multiplications=f.mult_count - before,
        frobenius_count=frob,
        additions=adds,
        digits=len(digits),
    )
