"""López–Dahab projective coordinates for binary curves.

The affine formulas in :mod:`repro.ecc.binary` pay one field inversion —
a Fermat chain of ~m multiplier passes — per group operation, which
dominates everything.  LD coordinates ``(X, Y, Z)`` represent
``(x, y) = (X/Z, Y/Z²)`` and defer all inversions to a single
normalization at the end of the scalar multiplication:

* doubling (Hankerson–Menezes–Vanstone Alg. 3.26): ~4M + 5S
* mixed addition with an affine base point (Alg. 3.27): ~8M + 5S

On K-163 this turns ~76 000 multiplier passes per ``[k]P`` (affine) into
~3 500 — a 20× saving measured by the dual-field benchmark, and the
reason every serious binary-field accelerator uses projective
coordinates.  All arithmetic stays in the GF(2^m) Montgomery domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.ecc.binary import BinaryCurve, BinaryPoint, _CountingField
from repro.errors import ParameterError

__all__ = ["LDPoint", "ld_scalar_multiply"]


class LDPoint:
    """A point in López–Dahab coordinates over the Montgomery field."""

    __slots__ = ("curve", "field", "X", "Y", "Z")

    def __init__(self, curve: BinaryCurve, field: _CountingField, X, Y, Z) -> None:
        self.curve = curve
        self.field = field
        self.X, self.Y, self.Z = X, Y, Z

    # ------------------------------------------------------------------
    @property
    def is_infinity(self) -> bool:
        return self.Z == 0

    @classmethod
    def infinity(cls, curve: BinaryCurve, field: _CountingField) -> "LDPoint":
        one = field.enter(1)
        return cls(curve, field, one, 0, 0)

    @classmethod
    def from_affine(cls, p: BinaryPoint) -> "LDPoint":
        if p.infinite:
            return cls.infinity(p.curve, p.field)
        one = p.field.enter(1)
        return cls(p.curve, p.field, p.x, p.y, one)

    def to_affine(self) -> BinaryPoint:
        """Normalize: the single inversion of the whole scalar multiply."""
        if self.is_infinity:
            return BinaryPoint.infinity(self.curve, self.field)
        f = self.field
        z_inv = f.inverse(self.Z)
        x = f.mul(self.X, z_inv)
        y = f.mul(self.Y, f.square(z_inv))
        return BinaryPoint(self.curve, f, x, y)

    # ------------------------------------------------------------------
    def double(self) -> "LDPoint":
        """LD doubling (HMV Alg. 3.26)."""
        if self.is_infinity or self.X == 0:
            # X = 0 in LD means the affine x is 0: an order-2 point.
            return LDPoint.infinity(self.curve, self.field)
        f = self.field
        b_bar = f.enter(self.curve.b)
        a_bar = f.enter(self.curve.a)
        X1, Y1, Z1 = self.X, self.Y, self.Z
        X1_sq = f.square(X1)
        Z1_sq = f.square(Z1)
        Z1_4 = f.square(Z1_sq)
        bZ1_4 = f.mul(b_bar, Z1_4)
        Z3 = f.mul(X1_sq, Z1_sq)
        X3 = f.square(X1_sq) ^ bZ1_4
        Y1_sq = f.square(Y1)
        inner = f.mul(a_bar, Z3) ^ Y1_sq ^ bZ1_4
        Y3 = f.mul(bZ1_4, Z3) ^ f.mul(X3, inner)
        return LDPoint(self.curve, f, X3, Y3, Z3)

    def add_affine(self, q: BinaryPoint) -> "LDPoint":
        """Mixed addition with an affine point (HMV Alg. 3.27)."""
        if q.infinite:
            return self
        if self.is_infinity:
            return LDPoint.from_affine(q)
        f = self.field
        a_bar = f.enter(self.curve.a)
        X1, Y1, Z1 = self.X, self.Y, self.Z
        x2, y2 = q.x, q.y
        Z1_sq = f.square(Z1)
        A = f.mul(y2, Z1_sq) ^ Y1
        B = f.mul(x2, Z1) ^ X1
        if B == 0:
            if A == 0:
                return self.double()
            return LDPoint.infinity(self.curve, f)
        C = f.mul(Z1, B)
        D = f.mul(f.square(B), C ^ f.mul(a_bar, Z1_sq))
        Z3 = f.square(C)
        E = f.mul(A, C)
        X3 = f.square(A) ^ D ^ E
        F = X3 ^ f.mul(x2, Z3)
        G = f.mul(x2 ^ y2, f.square(Z3))
        Y3 = f.mul(E ^ Z3, F) ^ G
        return LDPoint(self.curve, f, X3, Y3, Z3)


def ld_scalar_multiply(point: BinaryPoint, k: int) -> Tuple[BinaryPoint, int]:
    """``[k]P`` via LD double-and-add; returns (affine result, field mults).

    The base stays affine (mixed additions); one inversion at the end.
    """
    if not isinstance(k, int) or isinstance(k, bool) or k < 0:
        raise ParameterError("scalar must be a non-negative int")
    f = point.field
    before = f.mult_count
    acc = LDPoint.infinity(point.curve, f)
    for i in reversed(range(k.bit_length())):
        acc = acc.double()
        if (k >> i) & 1:
            acc = acc.add_affine(point)
    result = acc.to_affine()
    return result, f.mult_count - before
