"""GF(p) arithmetic backed by the Montgomery domain.

:class:`PrimeField` wraps a :class:`~repro.montgomery.domain.MontgomeryDomain`
so that every field multiplication is one Montgomery multiplication — one
``3l+4``-cycle pass of the paper's systolic array.  Elements are held in
Montgomery representation inside the ``[0, 2N)`` window; they only leave
the domain when the user asks for the integer value, mirroring how a real
ECC coprocessor built from this multiplier would keep coordinates
domain-resident across an entire point multiplication.

:class:`FieldElement` is an immutable operator-overloaded wrapper, so the
point formulas in :mod:`repro.ecc.point` read like the textbook equations.
"""

from __future__ import annotations

from typing import Union

from repro.errors import ParameterError
from repro.montgomery.domain import MontgomeryDomain
from repro.rsa.primes import is_probable_prime

__all__ = ["PrimeField", "FieldElement"]


class PrimeField:
    """The field GF(p) with Montgomery-domain arithmetic.

    ``p`` must be an odd prime (checked probabilistically; pass
    ``trusted=True`` to skip for well-known curve primes).
    """

    def __init__(self, p: int, *, trusted: bool = False, multiplier=None) -> None:
        if p < 3 or p % 2 == 0:
            raise ParameterError(f"field characteristic must be an odd prime, got {p}")
        if not trusted and not is_probable_prime(p):
            raise ParameterError(f"{p} is not prime")
        self.p = p
        self.domain = MontgomeryDomain(p, multiplier)

    # ------------------------------------------------------------------
    def __call__(self, value: int) -> "FieldElement":
        """Lift an integer into the field (entering the Montgomery domain)."""
        return FieldElement(self, self.domain.enter(value % self.p))

    def zero(self) -> "FieldElement":
        return FieldElement(self, 0)

    def one(self) -> "FieldElement":
        return FieldElement(self, self.domain.ctx.r_mod_n)

    @property
    def mult_count(self) -> int:
        """Montgomery multiplications issued so far (cost accounting)."""
        return self.domain.mult_count

    def __eq__(self, other) -> bool:
        return isinstance(other, PrimeField) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrimeField(p={self.p})"


class FieldElement:
    """An element of GF(p), stored in Montgomery representation.

    Supports ``+ - * / **`` and unary negation; comparisons reduce mod p
    (the Montgomery window is 2p wide, so raw representations are not
    canonical).
    """

    __slots__ = ("field", "mont")

    def __init__(self, field: PrimeField, mont_value: int) -> None:
        self.field = field
        self.mont = mont_value

    # ------------------------------------------------------------------
    @property
    def value(self) -> int:
        """The integer this element represents (leaves the domain)."""
        return self.field.domain.leave(self.mont)

    def _coerce(self, other: Union["FieldElement", int]) -> "FieldElement":
        if isinstance(other, FieldElement):
            if other.field != self.field:
                raise ParameterError("cannot mix elements of different fields")
            return other
        if isinstance(other, int) and not isinstance(other, bool):
            return self.field(other)
        raise ParameterError(f"cannot operate with {type(other).__name__}")

    # ------------------------------------------------------------------
    def __add__(self, other):
        o = self._coerce(other)
        return FieldElement(self.field, self.field.domain.add(self.mont, o.mont))

    __radd__ = __add__

    def __sub__(self, other):
        o = self._coerce(other)
        return FieldElement(self.field, self.field.domain.sub(self.mont, o.mont))

    def __rsub__(self, other):
        return self._coerce(other).__sub__(self)

    def __mul__(self, other):
        o = self._coerce(other)
        return FieldElement(self.field, self.field.domain.mul(self.mont, o.mont))

    __rmul__ = __mul__

    def __neg__(self):
        return FieldElement(self.field, self.field.domain.sub(0, self.mont))

    def __truediv__(self, other):
        o = self._coerce(other)
        return self * o.inverse()

    def __rtruediv__(self, other):
        return self._coerce(other) / self

    def __pow__(self, exponent: int):
        if not isinstance(exponent, int):
            raise ParameterError("exponent must be an int")
        if exponent < 0:
            return self.inverse() ** (-exponent)
        return FieldElement(self.field, self.field.domain.exp(self.mont, exponent))

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse via Fermat: ``a^(p-2)`` — all multiplier ops."""
        if self.is_zero():
            raise ParameterError("zero is not invertible")
        return FieldElement(
            self.field, self.field.domain.exp(self.mont, self.field.p - 2)
        )

    # ------------------------------------------------------------------
    def is_zero(self) -> bool:
        return self.mont % self.field.p == 0

    def __eq__(self, other) -> bool:
        if isinstance(other, int) and not isinstance(other, bool):
            other = self.field(other)
        if not isinstance(other, FieldElement) or other.field != self.field:
            return NotImplemented
        return (self.mont - other.mont) % self.field.p == 0

    def __hash__(self) -> int:
        return hash((self.field.p, self.mont % self.field.p))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FieldElement({self.value} mod {self.field.p})"
