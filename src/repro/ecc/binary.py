"""Elliptic curves over GF(2^m) — the dual-field multiplier's other half.

Binary (Koblitz-style) curves ``y² + xy = x³ + a·x² + b`` over
GF(2^m), with every field multiplication routed through the GF(2^m)
Montgomery context — i.e. through the dual-field systolic datapath of
:mod:`repro.systolic.gf2_array`.  Together with :mod:`repro.ecc` (GF(p))
this realizes the full ambition of the dual-field unit the paper cites
[24]: one multiplier serving RSA, prime-field ECC and binary-field ECC.

Affine formulas (char-2 short Weierstrass):

* add (P ≠ ±Q):  λ = (y₁+y₂)/(x₁+x₂);  x₃ = λ²+λ+x₁+x₂+a;
  y₃ = λ(x₁+x₃)+x₃+y₁
* double (x₁≠0): λ = x₁ + y₁/x₁;       x₃ = λ²+λ+a;
  y₃ = x₁² + (λ+1)·x₃
* −(x, y) = (x, x+y); points with x = 0 double to infinity.

Field inversion uses Fermat (``a^(2^m−2)``) through the multiplier so the
cost accounting reflects a multiplier-only datapath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ParameterError
from repro.montgomery.gf2 import NIST_B163_POLY, GF2MontgomeryContext

__all__ = [
    "BinaryCurve",
    "BinaryPoint",
    "binary_scalar_multiply",
    "NIST_K163",
    "TOY_B16",
]


class _CountingField:
    """GF(2^m) with multiplication counting (domain-resident values)."""

    def __init__(self, ctx: GF2MontgomeryContext) -> None:
        self.ctx = ctx
        self.mult_count = 0

    def mul(self, a: int, b: int) -> int:
        self.mult_count += 1
        return self.ctx.multiply(a, b)

    def enter(self, a: int) -> int:
        return self.mul(a, self.ctx.r2_mod_f)

    def leave(self, a_bar: int) -> int:
        return self.mul(a_bar, 1)

    def square(self, a: int) -> int:
        return self.mul(a, a)

    def inverse(self, a_bar: int) -> int:
        """Fermat inverse of a domain value: ā^(2^m − 2) · R² adjustments.

        Work in the domain throughout: repeated Montgomery squarings and
        multiplications compute the domain representation of a^(2^m-2).
        """
        if self.ctx.from_montgomery(a_bar) == 0:
            raise ParameterError("zero is not invertible")
        e = (1 << self.ctx.m) - 2
        acc = None
        base = a_bar
        for i in reversed(range(e.bit_length())):
            if acc is not None:
                acc = self.square(acc)
                if (e >> i) & 1:
                    acc = self.mul(acc, base)
            else:
                acc = base  # leading bit
        return acc


@dataclass(frozen=True)
class BinaryCurve:
    """Domain parameters of a binary curve ``y² + xy = x³ + ax² + b``."""

    name: str
    poly: int
    a: int
    b: int
    gx: int
    gy: int
    order: int
    cofactor: int = 2

    def context(self) -> GF2MontgomeryContext:
        cached = getattr(self, "_ctx", None)
        if cached is None:
            cached = GF2MontgomeryContext(self.poly)
            object.__setattr__(self, "_ctx", cached)
        return cached

    def field(self) -> _CountingField:
        return _CountingField(self.context())

    def contains(self, x: int, y: int) -> bool:
        """Affine on-curve test using plain polynomial arithmetic."""
        from repro.montgomery.gf2 import clmul, poly_mod

        f = self.poly

        def fm(u, v):
            return poly_mod(clmul(u, v), f)

        lhs = fm(y, y) ^ fm(x, y)
        rhs = fm(fm(x, x), x) ^ fm(self.a, fm(x, x)) ^ self.b
        return lhs == rhs

    @property
    def m(self) -> int:
        return self.poly.bit_length() - 1


class BinaryPoint:
    """Affine point on a binary curve (domain-resident coordinates)."""

    __slots__ = ("curve", "field", "x", "y", "infinite")

    def __init__(
        self,
        curve: BinaryCurve,
        field: _CountingField,
        x: Optional[int],
        y: Optional[int],
        *,
        infinite: bool = False,
    ) -> None:
        self.curve = curve
        self.field = field
        self.x = x
        self.y = y
        self.infinite = infinite

    # ------------------------------------------------------------------
    @classmethod
    def generator(cls, curve: BinaryCurve, field: Optional[_CountingField] = None):
        f = field or curve.field()
        return cls(curve, f, f.enter(curve.gx), f.enter(curve.gy))

    @classmethod
    def infinity(cls, curve: BinaryCurve, field: _CountingField):
        return cls(curve, field, None, None, infinite=True)

    def to_affine_ints(self) -> Optional[Tuple[int, int]]:
        if self.infinite:
            return None
        return self.field.leave(self.x), self.field.leave(self.y)

    # ------------------------------------------------------------------
    def __neg__(self) -> "BinaryPoint":
        if self.infinite:
            return self
        return BinaryPoint(self.curve, self.field, self.x, self.x ^ self.y)

    def double(self) -> "BinaryPoint":
        if self.infinite:
            return self
        f = self.field
        x_int = f.ctx.from_montgomery(self.x)
        if x_int == 0:  # order-2 point
            return BinaryPoint.infinity(self.curve, f)
        a_bar = f.enter(self.curve.a)
        lam = self.x ^ f.mul(self.y, f.inverse(self.x))
        x3 = f.square(lam) ^ lam ^ a_bar
        y3 = f.square(self.x) ^ f.mul(lam ^ f.enter(1), x3)
        return BinaryPoint(self.curve, f, x3, y3)

    def add(self, other: "BinaryPoint") -> "BinaryPoint":
        if not isinstance(other, BinaryPoint) or other.curve != self.curve:
            raise ParameterError("cannot add points from different curves")
        if self.infinite:
            return other
        if other.infinite:
            return self
        f = self.field
        # GF(2^m) Montgomery representations are canonical (degree < m,
        # no window slack), so coordinate equality is integer equality.
        if self.x == other.x:
            if self.y == other.y:
                return self.double()
            return BinaryPoint.infinity(self.curve, f)
        a_bar = f.enter(self.curve.a)
        lam = f.mul(self.y ^ other.y, f.inverse(self.x ^ other.x))
        x3 = f.square(lam) ^ lam ^ self.x ^ other.x ^ a_bar
        y3 = f.mul(lam, self.x ^ x3) ^ x3 ^ self.y
        return BinaryPoint(self.curve, f, x3, y3)

    def __add__(self, other):
        return self.add(other)


def binary_scalar_multiply(point: BinaryPoint, k: int) -> Tuple[BinaryPoint, int]:
    """Left-to-right double-and-add; returns (result, field multiplications)."""
    if not isinstance(k, int) or isinstance(k, bool) or k < 0:
        raise ParameterError("scalar must be a non-negative int")
    f = point.field
    before = f.mult_count
    acc = BinaryPoint.infinity(point.curve, f)
    for i in reversed(range(k.bit_length())):
        acc = acc.double()
        if (k >> i) & 1:
            acc = acc.add(point)
    return acc, f.mult_count - before


#: NIST K-163 (Koblitz curve): y² + xy = x³ + x² + 1 over GF(2^163).
NIST_K163 = BinaryCurve(
    name="NIST K-163",
    poly=NIST_B163_POLY,
    a=1,
    b=1,
    gx=0x2FE13C0537BBC11ACAA07D793DE4E6D5E5C94EEE8,
    gy=0x289070FB05D38FF58321F2E800536D538CCDAA3D9,
    order=0x4000000000000000000020108A2E0CC0D99F8A5EF,
    cofactor=2,
)

#: Toy binary curve over GF(2^4), f = x^4 + x + 1:
#: y² + xy = x³ + x² + 6 — a cyclic group of order 24 with generator
#: (8, 0) (found by exhaustive enumeration; re-verified by the tests).
TOY_B16 = BinaryCurve(
    name="toy-b16",
    poly=0b10011,
    a=1,
    b=6,
    gx=8,
    gy=0,
    order=24,
    cofactor=1,
)
