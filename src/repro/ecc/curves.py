"""Short Weierstrass curves ``y² = x³ + ax + b`` over GF(p).

Includes the NIST P-192 and P-256 domain parameters (the GF(p) curve
sizes the paper's 160–256-bit motivation targets) and a small toy curve
for exhaustive testing.  Each curve owns a :class:`~repro.ecc.field.PrimeField`,
so all coordinate arithmetic flows through the Montgomery multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.ecc.field import PrimeField
from repro.errors import ParameterError

__all__ = ["WeierstrassCurve", "NIST_P192", "NIST_P256", "TOY_CURVE"]


@dataclass(frozen=True)
class WeierstrassCurve:
    """Domain parameters of a short Weierstrass curve.

    Attributes
    ----------
    name: human-readable identifier.
    p: field characteristic (odd prime).
    a, b: curve coefficients.
    gx, gy: affine coordinates of the base point G.
    order: order of G.
    cofactor: curve cofactor h.
    """

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    order: int
    cofactor: int = 1
    field_: PrimeField = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        fld = PrimeField(self.p, trusted=True)
        object.__setattr__(self, "field_", fld)
        # Non-singularity: 4a³ + 27b² ≠ 0 (mod p).
        disc = (4 * pow(self.a, 3, self.p) + 27 * pow(self.b, 2, self.p)) % self.p
        if disc == 0:
            raise ParameterError(f"curve {self.name} is singular")
        if not self.contains(self.gx, self.gy):
            raise ParameterError(f"base point of {self.name} is not on the curve")

    @property
    def field(self) -> PrimeField:
        return self.field_

    def a_mont(self):
        """The coefficient ``a`` as a cached field element.

        Cached because the point formulas use it once per doubling and the
        domain-entry conversion costs a multiplier pass.
        """
        cached = getattr(self, "_a_mont", None)
        if cached is None:
            cached = self.field_(self.a % self.p)
            object.__setattr__(self, "_a_mont", cached)
        return cached

    def contains(self, x: int, y: int) -> bool:
        """Affine on-curve test (plain integer arithmetic; no multiplier cost)."""
        lhs = (y * y) % self.p
        rhs = (x * x * x + self.a * x + self.b) % self.p
        return lhs == rhs

    def generator(self) -> Tuple[int, int]:
        return (self.gx, self.gy)

    @property
    def bits(self) -> int:
        return self.p.bit_length()


NIST_P192 = WeierstrassCurve(
    name="NIST P-192",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFF,
    a=-3 % 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFF,
    b=0x64210519E59C80E70FA7E9AB72243049FEB8DEECC146B9B1,
    gx=0x188DA80EB03090F67CBF20EB43A18800F4FF0AFD82FF1012,
    gy=0x07192B95FFC8DA78631011ED6B24CDD573F977A11E794811,
    order=0xFFFFFFFFFFFFFFFFFFFFFFFF99DEF836146BC9B1B4D22831,
)

NIST_P256 = WeierstrassCurve(
    name="NIST P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=-3 % 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    order=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)

#: y² = x³ + 2x + 3 over GF(97); group order 100 = 2²·5², generator (0, 10)
#: of order 50 — small enough for exhaustive group-law tests.
TOY_CURVE = WeierstrassCurve(
    name="toy-97",
    p=97,
    a=2,
    b=3,
    gx=0,
    gy=10,
    order=50,
    cofactor=2,
)
