"""Elliptic-curve points: affine and Jacobian coordinates.

Jacobian projective coordinates ``(X, Y, Z)`` represent the affine point
``(X/Z², Y/Z³)``; they avoid a field inversion per group operation —
essential here because an inversion costs a full Fermat exponentiation on
the Montgomery multiplier while add/double cost 16/8 multiplications.
The formulas are the standard ones (Cohen–Miyaji–Ono):

* double: 4M + 4S (with the a = -3 shortcut available but not required);
* add: 12M + 4S.

Every coordinate operation flows through
:class:`~repro.ecc.field.FieldElement`, i.e. through the paper's
multiplier, so :func:`repro.ecc.scalarmul` can report exact
multiplication (and therefore cycle) counts for a point multiplication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ecc.curves import WeierstrassCurve
from repro.ecc.field import FieldElement
from repro.errors import ParameterError

__all__ = ["AffinePoint", "JacobianPoint"]


def _dbl(a: FieldElement) -> FieldElement:
    """Field doubling by addition (no multiplier pass)."""
    return a + a


@dataclass(frozen=True)
class AffinePoint:
    """An affine point, or the point at infinity (``x = y = None``)."""

    curve: WeierstrassCurve
    x: Optional[int]
    y: Optional[int]

    @staticmethod
    def infinity(curve: WeierstrassCurve) -> "AffinePoint":
        return AffinePoint(curve, None, None)

    @staticmethod
    def generator(curve: WeierstrassCurve) -> "AffinePoint":
        return AffinePoint(curve, curve.gx, curve.gy)

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def __post_init__(self) -> None:
        if (self.x is None) != (self.y is None):
            raise ParameterError("affine point needs both coordinates or neither")
        if self.x is not None and not self.curve.contains(self.x % self.curve.p, self.y % self.curve.p):
            raise ParameterError(f"({self.x}, {self.y}) not on {self.curve.name}")

    def to_jacobian(self) -> "JacobianPoint":
        f = self.curve.field
        if self.is_infinity:
            return JacobianPoint(self.curve, f.one(), f.one(), f.zero())
        return JacobianPoint(self.curve, f(self.x), f(self.y), f.one())

    def __neg__(self) -> "AffinePoint":
        if self.is_infinity:
            return self
        return AffinePoint(self.curve, self.x, (-self.y) % self.curve.p)


class JacobianPoint:
    """A point in Jacobian coordinates over the curve's Montgomery field."""

    __slots__ = ("curve", "X", "Y", "Z")

    def __init__(
        self,
        curve: WeierstrassCurve,
        X: FieldElement,
        Y: FieldElement,
        Z: FieldElement,
    ) -> None:
        self.curve = curve
        self.X, self.Y, self.Z = X, Y, Z

    # ------------------------------------------------------------------
    @property
    def is_infinity(self) -> bool:
        return self.Z.is_zero()

    @staticmethod
    def infinity(curve: WeierstrassCurve) -> "JacobianPoint":
        f = curve.field
        return JacobianPoint(curve, f.one(), f.one(), f.zero())

    def to_affine(self) -> AffinePoint:
        """Normalize (one inversion + a handful of multiplications)."""
        if self.is_infinity:
            return AffinePoint.infinity(self.curve)
        z_inv = self.Z.inverse()
        z2 = z_inv * z_inv
        x = self.X * z2
        y = self.Y * z2 * z_inv
        return AffinePoint(self.curve, x.value, y.value)

    # ------------------------------------------------------------------
    def double(self) -> "JacobianPoint":
        """Point doubling (Cohen–Miyaji–Ono): 10 multiplications.

        Small-constant products (x2, x3, x4, x8) are computed by field
        additions — they must not consume multiplier passes, since the
        whole point of the cost accounting is multiplier cycles.
        """
        if self.is_infinity or self.Y.is_zero():
            return JacobianPoint.infinity(self.curve)
        X1, Y1, Z1 = self.X, self.Y, self.Z
        Y1_sq = Y1 * Y1
        XY2 = X1 * Y1_sq
        S = _dbl(_dbl(XY2))  # 4·X1·Y1²
        Z1_sq = Z1 * Z1
        X1_sq = X1 * X1
        M = _dbl(X1_sq) + X1_sq + self.curve.a_mont() * (Z1_sq * Z1_sq)
        X3 = M * M - _dbl(S)
        Y1_4 = Y1_sq * Y1_sq
        Y3 = M * (S - X3) - _dbl(_dbl(_dbl(Y1_4)))  # 8·Y1⁴
        Z3 = _dbl(Y1 * Z1)
        return JacobianPoint(self.curve, X3, Y3, Z3)

    def add(self, other: "JacobianPoint") -> "JacobianPoint":
        """General addition: 12M + 4S, handling all degenerate cases."""
        if not isinstance(other, JacobianPoint) or other.curve != self.curve:
            raise ParameterError("cannot add points from different curves")
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        X1, Y1, Z1 = self.X, self.Y, self.Z
        X2, Y2, Z2 = other.X, other.Y, other.Z
        Z1Z1 = Z1 * Z1
        Z2Z2 = Z2 * Z2
        U1 = X1 * Z2Z2
        U2 = X2 * Z1Z1
        S1 = Y1 * Z2Z2 * Z2
        S2 = Y2 * Z1Z1 * Z1
        if U1 == U2:
            if S1 == S2:
                return self.double()
            return JacobianPoint.infinity(self.curve)
        H = U2 - U1
        R = S2 - S1
        H2 = H * H
        H3 = H2 * H
        U1H2 = U1 * H2
        X3 = R * R - H3 - _dbl(U1H2)
        Y3 = R * (U1H2 - X3) - S1 * H3
        Z3 = Z1 * Z2 * H
        return JacobianPoint(self.curve, X3, Y3, Z3)

    def __add__(self, other: "JacobianPoint") -> "JacobianPoint":
        return self.add(other)

    def __neg__(self) -> "JacobianPoint":
        return JacobianPoint(self.curve, self.X, -self.Y, self.Z)

    def equals(self, other: "JacobianPoint") -> bool:
        """Projective equality (cross-multiplied, no inversion)."""
        if self.is_infinity or other.is_infinity:
            return self.is_infinity and other.is_infinity
        Z1Z1 = self.Z * self.Z
        Z2Z2 = other.Z * other.Z
        if not (self.X * Z2Z2 == other.X * Z1Z1):
            return False
        return self.Y * Z2Z2 * other.Z == other.Y * Z1Z1 * self.Z

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_infinity:
            return f"JacobianPoint(infinity, {self.curve.name})"
        return f"JacobianPoint({self.curve.name})"
