"""Online result verification: catch a corrupted modexp before the client.

Modular exponentiation admits no known sublinear external certificate —
``result mod p`` says nothing about ``x^e mod p`` because the mod-``N``
reduction subtracts an unknown multiple of ``N``.  What *is* possible,
and what this module implements, is Shamir's extended-modulus trick
turned outward: the verifier recomputes ``s = x^e mod (N·r)`` for a
small random prime ``r`` on the independent CPython big-int path, checks
its own arithmetic with the cheap Fermat residue ``s mod r ==
(x mod r)^(e mod (r-1)) mod r`` (~30 squarings of 30-bit numbers,
regardless of operand width), and then compares the backend's value to
``s mod N``.  The residue witness hardens the *checker* — a transient
upset corrupting the verifier's own pow is caught by a second,
structurally different computation — while the comparison is exact, so
the false-negative rate on corrupted outputs is zero.

For the simulator backends this is cheap insurance: their wall cost per
cycle is 200–3000× the integer path (see ``wall_weight`` in
:mod:`repro.serving.backends`), so a golden recompute adds well under 1%.
For the integer backend the recompute doubles the work, which is what
the ``sampled`` policy is for.

Two cheaper invariants complement the recompute:

* **range** — a final result must lie in ``[0, N)``; many single-bit
  upsets in the output register already violate this.
* **Walter bound** — every Montgomery product computed with
  ``R = 2^(l+2) > 4N`` satisfies ``T < 2N`` (the paper's Sect. 3 bound
  that makes the final subtraction unnecessary).
  :func:`walter_bound_ok` is checked on intermediate MMM outputs inside
  the backends' square-and-multiply loops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import FaultDetected, ParameterError

__all__ = [
    "VERIFY_MODES",
    "VerifyPolicy",
    "ResultVerifier",
    "residue_witness",
    "walter_bound_ok",
]

VERIFY_MODES = ("off", "sampled", "full")


def walter_bound_ok(t: int, n: int) -> bool:
    """Walter invariant: an MMM output with ``R > 4N`` stays in ``[0, 2N)``."""
    return 0 <= t < 2 * n


def _small_prime(rng: random.Random, bits: int) -> int:
    """A ``bits``-bit prime from ``rng`` (Miller–Rabin, deterministic bases)."""
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate):
            return candidate


def _is_probable_prime(n: int) -> bool:
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    # Deterministic for n < 3.3e24 with these bases — far beyond the
    # 20–40 bit witnesses the verifier draws.
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def residue_witness(base: int, exponent: int, r: int) -> int:
    """``base^exponent mod r`` for prime ``r`` via Fermat exponent reduction.

    Costs ``O(log r)`` multiplications of ``log r``-bit numbers —
    independent of how large ``exponent`` and the serving modulus are.
    """
    b = base % r
    if b == 0:
        return 0
    return pow(b, exponent % (r - 1), r)


@dataclass(frozen=True)
class VerifyPolicy:
    """When and how hard to verify serving responses.

    Parameters
    ----------
    mode:
        ``"off"`` — never verify; ``"sampled"`` — verify a deterministic
        pseudo-random fraction of responses (``sample_rate``); ``"full"``
        — verify every response.  Retried attempts are always verified
        when the mode is not ``"off"`` (a retry exists because something
        already went wrong).
    sample_rate:
        Fraction of responses verified under ``"sampled"``.
    seed:
        Seeds both the sampling decision and the witness-prime draw, so
        a drill is reproducible end to end.
    witness_bits:
        Bit length of the random residue-witness prime.
    """

    mode: str = "off"
    sample_rate: float = 0.1
    seed: int = 0
    witness_bits: int = 30

    def __post_init__(self) -> None:
        if self.mode not in VERIFY_MODES:
            raise ParameterError(
                f"unknown verify mode {self.mode!r}; one of {VERIFY_MODES}"
            )
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ParameterError(
                f"sample_rate must be in [0, 1], got {self.sample_rate}"
            )
        if self.witness_bits < 8:
            raise ParameterError(
                f"witness_bits must be >= 8, got {self.witness_bits}"
            )

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def should_verify(self, request_id: str, attempt: int = 0) -> bool:
        """Deterministic per-(request, attempt) sampling decision."""
        if self.mode == "off":
            return False
        if self.mode == "full" or attempt > 0:
            return True
        rng = random.Random(f"verify|{self.seed}|{request_id}")
        return rng.random() < self.sample_rate


class ResultVerifier:
    """Checks one response value against ``base^exponent mod N``.

    Stateless apart from the policy; safe to share across threads (each
    check builds its own deterministic RNG from the request id).
    """

    def __init__(self, policy: VerifyPolicy) -> None:
        self.policy = policy

    def check(self, request, value: int) -> None:
        """Raise :class:`FaultDetected` unless ``value`` is the true result.

        ``request`` is any object with ``base``/``exponent``/``modulus``
        (duck-typed so the wire layer and tests can pass stand-ins).

        The raised error leaves ``bundle_path`` unset; the serving layer
        attaches the flight-recorder post-mortem bundle for the faulting
        execution (when chaos recording is configured) before surfacing
        the failure — see ``ModExpService._attach_bundle``.
        """
        n = request.modulus
        if not isinstance(value, int) or not 0 <= value < n:
            raise FaultDetected(
                f"result {value!r} outside [0, {n}) — output-register "
                "corruption or wrong reduction",
                check="range",
            )
        rng = random.Random(f"witness|{self.policy.seed}|{request.request_id}")
        r = _small_prime(rng, self.policy.witness_bits)
        s = pow(request.base, request.exponent, n * r)
        if s % r != residue_witness(request.base, request.exponent, r):
            # The verifier's own recompute failed its residue self-check:
            # the reference value cannot be trusted, treat as detected.
            raise FaultDetected(
                f"verifier self-check failed mod witness prime {r}",
                check="witness",
            )
        if value != s % n:
            raise FaultDetected(
                f"result {value} != {request.base}^{request.exponent} "
                f"mod {n} (recompute disagrees; witness prime {r})",
                check="residue",
            )
