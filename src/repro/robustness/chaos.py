"""Deterministic chaos middleware for the serving stack.

Recovery code that has never seen a failure is decorative.  This module
makes failures a reproducible input: a :class:`ChaosConfig` (a frozen,
picklable value object that travels to process workers) seeds a
:class:`FaultPlan`, and the plan decides — purely from
``(seed, request_id, attempt)`` — whether a given execution attempt is
killed, poisoned with an exception, delayed, or has a bit flipped in its
result or in a gate-level register.  Same seed, same drill, same story
in the Perfetto trace.

Fault kinds, drawn first-match-wins in this order:

* ``kill`` — the worker process calls ``os._exit`` mid-request,
  breaking the ProcessPoolExecutor; exercises respawn + requeue.
  Only honoured when the caller passes ``allow_kill=True`` (process
  pools); in thread/inline pools a kill would take the service down,
  so the plan degrades it to an exception.
* ``exception`` — raises :class:`~repro.errors.InjectedFault`;
  exercises retry, breaker accounting, failover.
* ``latency`` — sleeps ``latency_s``; exercises timeouts, SLO
  violations, and the pool's slot-release-on-timeout path.
* ``bitflip`` — XORs one bit into the backend's result (or, for
  netlist backends, flips a real register DFF mid-multiplication via
  :meth:`GateLevelMMMC.schedule_fault`); exercises online verification.
  A bitflip is *silent* by construction — recovery must come from
  :mod:`repro.robustness.verify`, not from an exception.
* ``stuck`` — the worker sleeps ``stuck_s`` mid-request: alive, not
  answering.  Distinct from ``latency`` (sized to blow timeouts rather
  than SLOs); exercises the shard health machine's stuck detection and
  graceful drain instead of the death path.

Separately from per-request faults, **frame faults** target the shard
wire itself, decided per ``(batch_id, attempt)`` by
:meth:`FaultPlan.decide_frame` and applied by the shard worker around
its result send: ``slow_frame`` delays the write by ``stuck_s``,
``corrupt_frame`` XORs a byte mid-payload and ``truncate_frame`` sends
only a prefix.  Both corruption kinds must surface as *degradation* of
the shard (the pipe's message boundaries survive a bad payload), never
as silent wrong answers — exercising exactly the degrade-not-kill
recovery path.

``attempt`` is part of the RNG key so a request that was killed on
attempt 0 is not deterministically killed again on its retry — rates
compose per attempt, like real hardware.

``target_prefix`` marks "storm" requests: any request whose id starts
with the prefix always draws an injected exception on attempt 0 (and
only attempt 0, so retries still succeed).  Drills use it to open a
circuit breaker on demand with a burst of consecutive failures, which
random sub-10% rates would essentially never produce.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import InjectedFault, ParameterError
from repro.observability import OBS

__all__ = [
    "FAULT_KINDS",
    "FRAME_FAULT_KINDS",
    "ChaosConfig",
    "FaultDecision",
    "FaultPlan",
]

#: Per-request fault kinds.  ``stuck`` is drawn last so adding it keeps
#: every existing seed's kill/exception/latency/bitflip decisions
#: byte-identical (the draw is one uniform against cumulative bounds).
FAULT_KINDS = ("kill", "exception", "latency", "bitflip", "stuck")

#: Per-batch faults on the shard wire (result-frame writes).
FRAME_FAULT_KINDS = ("slow_frame", "corrupt_frame", "truncate_frame")


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded fault-injection rates.  Frozen and picklable by design —
    the same object is hashed into worker-side plans.

    Rates are independent per-attempt probabilities in ``[0, 1]``;
    at most one fault fires per attempt (first match in
    :data:`FAULT_KINDS` order wins).
    """

    seed: int = 0
    worker_kill_rate: float = 0.0
    exception_rate: float = 0.0
    latency_rate: float = 0.0
    latency_s: float = 0.05
    bitflip_rate: float = 0.0
    stuck_rate: float = 0.0
    stuck_s: float = 1.0
    slow_frame_rate: float = 0.0
    corrupt_frame_rate: float = 0.0
    truncate_frame_rate: float = 0.0
    register_faults: bool = True
    target_prefix: str = ""
    # Flight-recorder auto-arm: when set, chaos bit-flips (and retries of
    # verify failures) run with an armed black box whose post-mortem
    # bundles land in this directory.  Travels to workers like the rest
    # of the config; the executor builds a process-local hub from it.
    flightrec_dir: Optional[str] = None
    flightrec_pre: int = 48
    flightrec_post: int = 16
    # Pre-trigger ring decimation: the black box samples every 4th cycle
    # until a fault fires, then densely — keeps always-on capture under
    # the serving overhead budget (the post-mortem window around the
    # trigger is full rate either way).
    flightrec_stride: int = 4

    def __post_init__(self) -> None:
        for name in (
            "worker_kill_rate",
            "exception_rate",
            "latency_rate",
            "bitflip_rate",
            "stuck_rate",
            "slow_frame_rate",
            "corrupt_frame_rate",
            "truncate_frame_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ParameterError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_s < 0:
            raise ParameterError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.stuck_s < 0:
            raise ParameterError(f"stuck_s must be >= 0, got {self.stuck_s}")
        total = (
            self.worker_kill_rate
            + self.exception_rate
            + self.latency_rate
            + self.bitflip_rate
            + self.stuck_rate
        )
        if total > 1.0:
            # The decision is one uniform draw against cumulative
            # thresholds; rates summing past 1 would silently truncate
            # the later kinds.
            raise ParameterError(f"fault rates sum to {total}, must be <= 1")
        frame_total = (
            self.slow_frame_rate + self.corrupt_frame_rate + self.truncate_frame_rate
        )
        if frame_total > 1.0:
            raise ParameterError(
                f"frame fault rates sum to {frame_total}, must be <= 1"
            )
        if self.flightrec_pre < 1 or self.flightrec_post < 0:
            raise ParameterError(
                f"flightrec window needs pre >= 1, post >= 0; got "
                f"{self.flightrec_pre}/{self.flightrec_post}"
            )
        if self.flightrec_stride < 1:
            raise ParameterError(
                f"flightrec_stride must be >= 1, got {self.flightrec_stride}"
            )

    def make_flightrec_hub(self):
        """A :class:`~repro.observability.flightrec.FlightRecorderHub` for
        this config's dump directory, or ``None`` when recording is off.

        Called executor-side (possibly in a process worker) right before a
        run that should be captured; fault events fire the recorder, so no
        explicit trigger list is needed.
        """
        if not self.flightrec_dir:
            return None
        from repro.observability.flightrec import FlightRecorderHub

        return FlightRecorderHub(
            dump_dir=self.flightrec_dir,
            pre=self.flightrec_pre,
            post=self.flightrec_post,
            fire_on_fault=True,
            ring_stride=self.flightrec_stride,
        )

    @property
    def active(self) -> bool:
        return bool(
            self.worker_kill_rate
            or self.exception_rate
            or self.latency_rate
            or self.bitflip_rate
            or self.stuck_rate
            or self.target_prefix
            or self.frame_faults_active
        )

    @property
    def frame_faults_active(self) -> bool:
        return bool(
            self.slow_frame_rate
            or self.corrupt_frame_rate
            or self.truncate_frame_rate
        )


@dataclass(frozen=True)
class FaultDecision:
    """What the plan chose for one ``(request, attempt)``.

    ``kind`` is one of :data:`FAULT_KINDS` or ``None`` (no fault).
    ``bit`` is the bit index to flip for ``bitflip`` decisions; the
    executor reduces it modulo the width of whatever it is flipping.
    """

    kind: Optional[str] = None
    bit: int = 0

    def __bool__(self) -> bool:
        return self.kind is not None


class FaultPlan:
    """Pure function of ``(config, request_id, attempt)`` → decision."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config

    def decide(self, request_id: str, attempt: int = 0, *, allow_kill: bool = True) -> FaultDecision:
        cfg = self.config
        if not cfg.active:
            return FaultDecision()
        if cfg.target_prefix and str(request_id).startswith(cfg.target_prefix):
            # Storm request: guaranteed failure on the first attempt so a
            # burst of them opens a breaker; retries run clean.
            return FaultDecision(kind="exception") if attempt == 0 else FaultDecision()
        rng = random.Random(f"chaos|{cfg.seed}|{request_id}|{attempt}")
        draw = rng.random()
        threshold = cfg.worker_kill_rate
        if draw < threshold:
            if allow_kill:
                return FaultDecision(kind="kill")
            return FaultDecision(kind="exception")
        threshold += cfg.exception_rate
        if draw < threshold:
            return FaultDecision(kind="exception")
        threshold += cfg.latency_rate
        if draw < threshold:
            return FaultDecision(kind="latency")
        threshold += cfg.bitflip_rate
        if draw < threshold:
            return FaultDecision(kind="bitflip", bit=rng.getrandbits(16))
        threshold += cfg.stuck_rate
        if draw < threshold:
            return FaultDecision(kind="stuck")
        return FaultDecision()

    def decide_frame(self, batch_id: int, attempt: int = 0) -> FaultDecision:
        """Frame-level fault for one result-frame write.

        Keyed on ``(seed, batch_id, attempt)`` — independent of the
        per-request plan, so a drill can corrupt the wire without
        perturbing request-level decisions.  ``bit`` doubles as the
        byte-position seed for ``corrupt_frame`` / ``truncate_frame``.
        """
        cfg = self.config
        if not cfg.frame_faults_active:
            return FaultDecision()
        rng = random.Random(f"chaos-frame|{cfg.seed}|{batch_id}|{attempt}")
        draw = rng.random()
        threshold = cfg.slow_frame_rate
        if draw < threshold:
            return FaultDecision(kind="slow_frame")
        threshold += cfg.corrupt_frame_rate
        if draw < threshold:
            return FaultDecision(kind="corrupt_frame", bit=rng.getrandbits(24))
        threshold += cfg.truncate_frame_rate
        if draw < threshold:
            return FaultDecision(kind="truncate_frame", bit=rng.getrandbits(24))
        return FaultDecision()

    def mangle_frame(self, decision: FaultDecision, frame: bytes) -> bytes:
        """Apply a frame-fault decision to an outbound frame's bytes.

        ``corrupt_frame`` XORs one byte past the 9-byte kind+batch-id
        header (the receiver must still be able to requeue *that* batch,
        which is the realistic partial-corruption case); a
        ``truncate_frame`` keeps only a prefix — at least the header —
        modelling a writer dying mid-``send``.  ``slow_frame`` is
        handled by the caller (a sleep has no byte-level effect).
        """
        if decision.kind == "corrupt_frame" and len(frame) > 9:
            OBS.count("chaos.injected", kind="corrupt_frame")
            pos = 9 + decision.bit % (len(frame) - 9)
            mangled = bytearray(frame)
            mangled[pos] ^= 0xFF
            return bytes(mangled)
        if decision.kind == "truncate_frame" and len(frame) > 9:
            OBS.count("chaos.injected", kind="truncate_frame")
            keep = 9 + decision.bit % (len(frame) - 9)
            return frame[:keep]
        return frame

    def apply_pre(self, decision: FaultDecision, request_id: str) -> None:
        """Execute the pre-backend side of ``decision`` (kill / exception /
        latency).  Bitflips are applied by the backend executor because
        they need the result or a live simulator.
        """
        if not decision:
            return
        if decision.kind == "kill":
            OBS.count("chaos.injected", kind="kill")
            # Flush nothing, skip atexit/finally: this models a hard
            # worker crash (OOM-kill, segfault), not a clean exit.
            os._exit(17)
        if decision.kind == "exception":
            OBS.count("chaos.injected", kind="exception")
            raise InjectedFault(f"chaos: injected backend exception for {request_id}")
        if decision.kind == "latency":
            OBS.count("chaos.injected", kind="latency")
            time.sleep(self.config.latency_s)
        if decision.kind == "stuck":
            # Alive but wedged: long enough to trip stuck detection /
            # hedging, short enough that a drill still terminates.
            OBS.count("chaos.injected", kind="stuck")
            time.sleep(self.config.stuck_s)
        if decision.kind == "slow_frame":
            OBS.count("chaos.injected", kind="slow_frame")
            time.sleep(self.config.stuck_s)

    def corrupt_result(self, decision: FaultDecision, value: int, modulus: int) -> int:
        """Apply a ``bitflip`` decision to a finished integer result.

        Used by backends with no register-level hook (integer, CRT): the
        flip lands in one of the result's ``modulus``-width bits, which
        may push the value outside ``[0, N)`` — exactly like an upset in
        an output register after the final reduction.
        """
        if decision.kind != "bitflip":
            return value
        OBS.count("chaos.injected", kind="bitflip")
        width = max(modulus.bit_length(), 1)
        return value ^ (1 << (decision.bit % width))
