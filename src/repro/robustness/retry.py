"""Retry policy with exponential backoff, seeded jitter, and a budget.

Retries amplify load exactly when the system is least able to absorb it,
so two guard rails are built in:

* **Backoff with jitter** — attempt ``k`` sleeps
  ``backoff_s * multiplier**k * uniform(1 - jitter, 1 + jitter)``.
  The jitter RNG is seeded per ``(seed, request_id, attempt)`` so a
  chaos drill replays with identical timing structure.
* **Retry budget** — a service-wide token pool
  (:class:`RetryBudget`); when more than ``budget`` retries are already
  outstanding the request fails fast instead of joining a retry storm.
  Tokens are released when the retried attempt settles, so the budget
  bounds *concurrent* retries, not the lifetime total.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["RetryPolicy", "RetryBudget"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed request, and how patiently.

    ``max_attempts`` counts total tries, so ``max_attempts=3`` means one
    initial attempt plus up to two retries; ``1`` disables retries.
    """

    max_attempts: int = 3
    backoff_s: float = 0.01
    multiplier: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ParameterError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.multiplier < 1.0:
            raise ParameterError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ParameterError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, request_id: str, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based) of a request."""
        if attempt < 1 or self.backoff_s == 0:
            return 0.0
        base = self.backoff_s * self.multiplier ** (attempt - 1)
        if self.jitter == 0:
            return base
        rng = random.Random(f"retry|{self.seed}|{request_id}|{attempt}")
        return base * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)


class RetryBudget:
    """Bounded pool of concurrently outstanding retries (thread-safe)."""

    def __init__(self, tokens: int = 32) -> None:
        if tokens < 0:
            raise ParameterError(f"tokens must be >= 0, got {tokens}")
        self.tokens = tokens
        self._lock = threading.Lock()
        self._outstanding = 0

    @property
    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding

    def try_acquire(self) -> bool:
        """Claim a retry token; ``False`` means fail fast, do not retry."""
        with self._lock:
            if self._outstanding >= self.tokens:
                return False
            self._outstanding += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._outstanding > 0:
                self._outstanding -= 1
