"""Retry policy with exponential backoff, seeded jitter, and a budget.

Retries amplify load exactly when the system is least able to absorb it,
so two guard rails are built in:

* **Backoff with jitter** — attempt ``k`` sleeps
  ``backoff_s * multiplier**k * uniform(1 - jitter, 1 + jitter)``.
  The jitter RNG is seeded per ``(seed, request_id, attempt)`` so a
  chaos drill replays with identical timing structure.
* **Retry budget** — a service-wide token pool
  (:class:`RetryBudget`); when more than ``budget`` retries are already
  outstanding the request fails fast instead of joining a retry storm.
  Tokens are released when the retried attempt settles, so the budget
  bounds *concurrent* retries, not the lifetime total.
* **Deadline clamp** — when a request carries an absolute deadline,
  :meth:`RetryPolicy.backoff` accepts the remaining budget and clamps
  the jittered sleep to it, and :meth:`RetryPolicy.worth_retrying`
  fails fast when the remaining budget cannot plausibly cover another
  attempt — sleeping 80 ms before retrying a request that expires in
  20 ms only converts a retryable error into a deadline violation.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Optional

from repro.errors import ParameterError

__all__ = ["RetryPolicy", "RetryBudget"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed request, and how patiently.

    ``max_attempts`` counts total tries, so ``max_attempts=3`` means one
    initial attempt plus up to two retries; ``1`` disables retries.
    """

    max_attempts: int = 3
    backoff_s: float = 0.01
    multiplier: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ParameterError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.multiplier < 1.0:
            raise ParameterError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ParameterError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(
        self,
        request_id: str,
        attempt: int,
        remaining_s: Optional[float] = None,
    ) -> float:
        """Sleep before retry number ``attempt`` (1-based) of a request.

        ``remaining_s`` is the request's remaining deadline budget, when
        it has one: the jittered delay is clamped so the sleep alone can
        never push the request past its deadline.  (Whether a retry is
        worth attempting at all is :meth:`worth_retrying`'s call.)
        """
        if attempt < 1 or self.backoff_s == 0:
            return 0.0
        base = self.backoff_s * self.multiplier ** (attempt - 1)
        if self.jitter != 0:
            rng = random.Random(f"retry|{self.seed}|{request_id}|{attempt}")
            base *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        if remaining_s is not None:
            base = min(base, max(remaining_s, 0.0))
        return base

    def worth_retrying(
        self,
        attempt: int,
        remaining_s: Optional[float],
        attempt_cost_s: float = 0.0,
    ) -> bool:
        """Can attempt ``attempt + 1`` plausibly finish inside the deadline?

        ``attempt_cost_s`` is the caller's estimate of one attempt's
        duration (e.g. the wall time the failed attempt just took);
        retrying when the remaining budget cannot cover the backoff plus
        one attempt only adds load while still missing the deadline —
        failing fast instead is what keeps retries from amplifying an
        overload.  Requests without a deadline always retry (subject to
        ``max_attempts``).
        """
        if attempt + 1 > self.max_attempts:
            return False
        if remaining_s is None:
            return True
        if attempt < 1 or self.backoff_s == 0:
            floor = 0.0
        else:  # smallest jitter outcome for the sleep before the retry
            floor = (
                self.backoff_s
                * self.multiplier ** (attempt - 1)
                * (1.0 - self.jitter)
            )
        return remaining_s > floor + max(attempt_cost_s, 0.0)


class RetryBudget:
    """Bounded pool of concurrently outstanding retries (thread-safe)."""

    def __init__(self, tokens: int = 32) -> None:
        if tokens < 0:
            raise ParameterError(f"tokens must be >= 0, got {tokens}")
        self.tokens = tokens
        self._lock = threading.Lock()
        self._outstanding = 0

    @property
    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding

    def try_acquire(self) -> bool:
        """Claim a retry token; ``False`` means fail fast, do not retry."""
        with self._lock:
            if self._outstanding >= self.tokens:
                return False
            self._outstanding += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._outstanding > 0:
                self._outstanding -= 1
