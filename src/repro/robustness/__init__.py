"""Online fault tolerance for the serving stack.

The paper removes the Montgomery final subtraction with Walter's
``R = 2^(l+2) > 4N`` bound precisely because conditional corrections are
a fault and side-channel hazard; this package is the runtime counterpart
of that dependability concern.  It threads four mechanisms through the
serving path:

* :mod:`repro.robustness.verify` — :class:`VerifyPolicy` /
  :class:`ResultVerifier`: online result verification (range invariant,
  extended-modulus recompute with a small-prime residue witness) run on
  completed responses; detected corruption raises
  :class:`~repro.errors.FaultDetected`.
* :mod:`repro.robustness.chaos` — :class:`ChaosConfig` /
  :class:`FaultPlan`: a deterministic, seeded fault injector (worker
  kills, backend exceptions, artificial latency, register/result bit
  flips) so every recovery path below is testable rather than
  theoretical.
* :mod:`repro.robustness.retry` — :class:`RetryPolicy` /
  :class:`RetryBudget`: per-request retries with exponential backoff,
  seeded jitter and a service-wide retry budget.
* :mod:`repro.robustness.breaker` — :class:`CircuitBreaker` /
  :class:`BreakerBoard`: per-backend closed/open/half-open breakers fed
  by consecutive failures and SLO violations, driving failover to the
  next-cheapest capable backend.

:class:`~repro.serving.service.ModExpService` accepts all four as
constructor parameters; ``repro serve --chaos`` / ``--verify`` /
``--retries`` expose them on the CLI.  See ``docs/ROBUSTNESS.md``.
"""

from repro.robustness.breaker import (
    BreakerBoard,
    BreakerConfig,
    CircuitBreaker,
)
from repro.robustness.chaos import ChaosConfig, FaultDecision, FaultPlan
from repro.robustness.retry import RetryBudget, RetryPolicy
from repro.robustness.verify import (
    ResultVerifier,
    VerifyPolicy,
    residue_witness,
    walter_bound_ok,
)

__all__ = [
    "BreakerBoard",
    "BreakerConfig",
    "CircuitBreaker",
    "ChaosConfig",
    "FaultDecision",
    "FaultPlan",
    "RetryBudget",
    "RetryPolicy",
    "ResultVerifier",
    "VerifyPolicy",
    "residue_witness",
    "walter_bound_ok",
]
