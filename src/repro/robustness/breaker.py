"""Per-backend circuit breakers with failover support.

A sick backend (a wedged simulator cache, a worker pool that keeps
dying) should not be offered every request just so each can time out
individually.  The classic three-state breaker:

* **closed** — traffic flows; consecutive failures and SLO violations
  are counted (any success resets both counts).
* **open** — after ``failure_threshold`` consecutive failures (or
  ``slo_violation_threshold`` consecutive SLO breaches) the breaker
  trips; ``allow()`` returns ``False`` until ``cooldown_s`` elapses, and
  the router fails requests over to the next-cheapest capable backend.
* **half-open** — after cooldown, probe traffic is **serialized**: at
  most one in-flight probe at a time (``allow()`` claims the slot,
  ``record_success``/``record_failure`` settle it).  One failure
  re-opens; ``half_open_probes`` successes re-close.  Concurrent probes
  would defeat the point of probing — ten threads racing through a
  half-open breaker can re-trip a barely-recovered backend with exactly
  the thundering herd the breaker exists to prevent.

State is exported continuously as the gauge ``serving.breaker_state``
(0 = closed, 1 = open, 2 = half-open, labelled by backend) and each edge
increments ``serving.breaker_transitions{backend=,to=}``, so a Perfetto
or Prometheus view shows trip and recovery as steps.

The clock is injectable (``clock=time.monotonic`` by default) so tests
and drills can step time instead of sleeping through cooldowns.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict

from repro.errors import ParameterError
from repro.observability import OBS

__all__ = ["BREAKER_STATES", "BreakerConfig", "CircuitBreaker", "BreakerBoard"]

BREAKER_STATES = ("closed", "open", "half_open")
_STATE_CODE = {"closed": 0, "open": 1, "half_open": 2}


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery thresholds shared by all breakers on a board."""

    failure_threshold: int = 5
    slo_violation_threshold: int = 10
    cooldown_s: float = 5.0
    half_open_probes: int = 2  # successes to re-close; probes run one at a time

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ParameterError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.slo_violation_threshold < 1:
            raise ParameterError(
                "slo_violation_threshold must be >= 1, got "
                f"{self.slo_violation_threshold}"
            )
        if self.cooldown_s < 0:
            raise ParameterError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.half_open_probes < 1:
            raise ParameterError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


class CircuitBreaker:
    """Thread-safe three-state breaker for one backend."""

    def __init__(
        self,
        backend: str,
        config: BreakerConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.backend = backend
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._consecutive_slo_violations = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        self._half_open_successes = 0
        OBS.gauge("serving.breaker_state", 0, backend=backend)

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def _transition_locked(self, to: str) -> None:
        if to == self._state:
            return
        self._state = to
        OBS.gauge("serving.breaker_state", _STATE_CODE[to], backend=self.backend)
        OBS.count("serving.breaker_transitions", backend=self.backend, to=to)
        if to == "open":
            self._opened_at = self._clock()
            self._half_open_inflight = 0
            self._half_open_successes = 0
        elif to == "half_open":
            self._half_open_inflight = 0
            self._half_open_successes = 0
        elif to == "closed":
            self._consecutive_failures = 0
            self._consecutive_slo_violations = 0

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.config.cooldown_s
        ):
            self._transition_locked("half_open")

    def allow(self) -> bool:
        """May a request be routed to this backend right now?

        In half-open state this *claims* the single probe slot — probes
        are strictly serialized, so a second caller is refused until the
        first settles via ``record_success`` or ``record_failure``.
        Callers must follow every allowed half-open request with exactly
        one of those.
        """
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == "closed":
                return True
            if self._state == "open":
                return False
            if self._half_open_inflight > 0:
                return False
            self._half_open_inflight = 1
            return True

    def record_success(self) -> None:
        with self._lock:
            # Primary-path traffic is not gated by allow(), so a success
            # can arrive while the breaker still reads "open" after its
            # cooldown; promote it first so the success counts as a probe.
            self._maybe_half_open_locked()
            self._consecutive_failures = 0
            self._consecutive_slo_violations = 0
            if self._state == "half_open":
                self._half_open_inflight = 0  # the probe settled
                self._half_open_successes += 1
                if self._half_open_successes >= self.config.half_open_probes:
                    self._transition_locked("closed")

    def record_failure(self) -> None:
        with self._lock:
            if self._state == "half_open":
                self._half_open_inflight = 0  # the probe settled
                self._transition_locked("open")
                return
            self._consecutive_failures += 1
            if (
                self._state == "closed"
                and self._consecutive_failures >= self.config.failure_threshold
            ):
                self._transition_locked("open")

    def record_slo_violation(self) -> None:
        """A request *succeeded* but blew its latency/cycle budget.

        Tracked separately from hard failures: a backend that always
        answers, slowly, should eventually be benched too.
        """
        with self._lock:
            self._consecutive_slo_violations += 1
            if (
                self._state == "closed"
                and self._consecutive_slo_violations
                >= self.config.slo_violation_threshold
            ):
                self._transition_locked("open")


class BreakerBoard:
    """Lazily-created breaker per backend name, one shared config/clock."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def get(self, backend: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(backend)
            if breaker is None:
                breaker = CircuitBreaker(backend, self.config, clock=self._clock)
                self._breakers[backend] = breaker
            return breaker

    def allow(self, backend: str) -> bool:
        return self.get(backend).allow()

    def states(self) -> Dict[str, str]:
        with self._lock:
            breakers = dict(self._breakers)
        return {name: b.state for name, b in breakers.items()}
