"""The global observation point the simulators report through.

Instrumentation contract
------------------------
Every hook site in the hot paths (:mod:`repro.systolic`,
:mod:`repro.hdl.simulator`) is written as::

    if OBS.enabled:
        OBS.count("array.cycles")

``OBS`` is a process-wide singleton whose ``enabled`` flag is a plain
attribute — when no metrics registry or tracer is installed the entire
cost of the instrumentation is one attribute load and a falsy branch per
site, which keeps the uninstrumented simulation within measurement noise
(asserted by the test-suite's disabled-mode equivalence tests).

Enable observation for a region of code with the :func:`observe` context
manager::

    registry, tracer = MetricsRegistry(), SpanTracer(detail="state")
    with observe(metrics=registry, tracer=tracer):
        ModularExponentiator(ctx, engine="rtl").exponentiate(m, e)
    tracer.write("out.json")          # open in Perfetto
    print(registry.render_text())

Either half may be omitted; nesting restores the previous installation on
exit, so library code can layer sessions safely.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.observability.metrics import MetricsRegistry
from repro.observability.occupancy import OccupancyRecorder
from repro.observability.trace import CycleClock, SpanTracer

__all__ = ["Observer", "OBS", "observe"]


class Observer:
    """Facade bundling the installed metrics registry and span tracer.

    All recording methods are safe to call whichever halves are
    installed: a missing backend turns the call into a no-op.  Hot paths
    should still guard with ``if OBS.enabled`` so the disabled case pays
    nothing beyond the flag test.
    """

    __slots__ = (
        "enabled",
        "trace_states",
        "trace_cycles",
        "metrics",
        "tracer",
        "occupancy",
        "flightrec",
        "clock",
    )

    def __init__(self) -> None:
        self.metrics: Optional[MetricsRegistry] = None
        self.tracer: Optional[SpanTracer] = None
        self.occupancy: Optional["OccupancyRecorder"] = None
        # Flight-recorder hub (repro.observability.flightrec); typed loosely
        # to keep this module import-light.  Deliberately *not* part of
        # ``enabled``: the recorder hooks test ``OBS.flightrec`` directly,
        # so arming a black box does not switch on the counting paths.
        self.flightrec: Optional[Any] = None
        self.clock = CycleClock()
        self.enabled = False
        # Pre-computed detail flags so hook sites test one attribute.
        self.trace_states = False
        self.trace_cycles = False

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        occupancy: Optional["OccupancyRecorder"] = None,
        flightrec: Optional[Any] = None,
    ) -> None:
        """Install backends; the tracer's clock becomes the session clock."""
        self.metrics = metrics
        self.tracer = tracer
        self.occupancy = occupancy
        self.flightrec = flightrec
        self.clock = tracer.clock if tracer is not None else CycleClock()
        self.enabled = (
            metrics is not None or tracer is not None or occupancy is not None
        )
        self.trace_states = tracer is not None and tracer.detail in ("state", "cycle")
        self.trace_cycles = tracer is not None and tracer.detail == "cycle"

    def uninstall(self) -> None:
        self.install(None, None)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def tick(self, cycles: int = 1) -> None:
        """Advance the session's cycle clock (one charged clock edge)."""
        self.clock.now += cycles

    @property
    def now(self) -> int:
        return self.clock.now

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1, **labels: Any) -> None:
        m = self.metrics
        if m is not None:
            m.counter(name).inc(amount, **labels)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        m = self.metrics
        if m is not None:
            m.gauge(name).set(value, **labels)

    def record(self, name: str, value: float, **labels: Any) -> None:
        """Observe ``value`` into the named histogram."""
        m = self.metrics
        if m is not None:
            m.histogram(name).observe(value, **labels)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def begin(self, name: str, cat: str = "sim", **args: Any) -> None:
        t = self.tracer
        if t is not None:
            t.begin(name, cat, **args)

    def end(self, **args: Any) -> None:
        t = self.tracer
        if t is not None:
            t.end(**args)

    @contextmanager
    def span(self, name: str, cat: str = "sim", **args: Any) -> Iterator[None]:
        self.begin(name, cat, **args)
        try:
            yield
        finally:
            self.end()

    def complete(
        self, name: str, ts: int, dur: int, cat: str = "sim", **args: Any
    ) -> None:
        t = self.tracer
        if t is not None:
            t.complete(name, ts, dur, cat, **args)

    def instant(self, name: str, cat: str = "sim", **args: Any) -> None:
        t = self.tracer
        if t is not None:
            t.instant(name, cat, **args)

    def counter_event(self, name: str, value: float, cat: str = "sim") -> None:
        t = self.tracer
        if t is not None:
            t.counter(name, value, cat)


#: The process-wide observation point. Disabled (all no-op) by default.
OBS = Observer()


@contextmanager
def observe(
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
    occupancy: Optional[OccupancyRecorder] = None,
    flightrec: Optional[Any] = None,
) -> Iterator[Observer]:
    """Install ``metrics``/``tracer``/``occupancy``/``flightrec`` on :data:`OBS`.

    The previous installation (usually: nothing) is restored on exit, so
    sessions nest and exceptions cannot leave instrumentation enabled.
    """
    prev = (OBS.metrics, OBS.tracer, OBS.occupancy, OBS.flightrec)
    OBS.install(metrics, tracer, occupancy, flightrec)
    try:
        yield OBS
    finally:
        OBS.install(*prev)
