"""Metrics-snapshot regression gate: compare a run against a baseline.

The paper's claims are cycle counts, and the registry snapshots produced
by the benchmarks are deterministic in every cycle-derived series — so a
committed snapshot (``benchmarks/baselines/*.json``) doubles as a
regression oracle.  :func:`diff_snapshots` walks every series of the
baseline and checks the current snapshot holds a matching series within
a relative tolerance band; ``repro obs diff`` wraps it as a CI gate that
exits non-zero on drift.

Comparison rules:

* **counters / gauges** — relative drift of the value;
* **histograms** — relative drift of ``count``, ``sum`` and (when the
  baseline recorded them) the ``p50`` / ``p95`` / ``p99`` estimates, so
  both the volume and the *shape* of a latency distribution are gated;
* a baseline series missing from the current snapshot is always a
  failure; series only in the current snapshot are ignored (new
  instrumentation must not fail old baselines);
* metric names matching an ``ignore`` glob are skipped — wall-clock
  series (``*wall*``) by default, since only simulated-cycle series are
  machine-independent.
"""

from __future__ import annotations

import json
from fnmatch import fnmatch
from typing import Any, Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "DEFAULT_IGNORE",
    "check_requirements",
    "diff_snapshots",
    "load_snapshot",
]

#: Wall-clock distributions vary per machine; the gate skips them unless
#: the caller overrides the ignore list.
DEFAULT_IGNORE: Tuple[str, ...] = ("*wall*",)

_HISTOGRAM_FIELDS = ("count", "sum", "p50", "p95", "p99")


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read a ``MetricsRegistry.write_json`` snapshot from disk."""
    with open(path) as fh:
        return json.load(fh)


def _labels_repr(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _series_key(row: Dict[str, Any]) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    return (row["name"], tuple(sorted(row.get("labels", {}).items())))


def _ignored(name: str, ignore: Sequence[str]) -> bool:
    return any(fnmatch(name, pattern) for pattern in ignore)


def _relative_drift(baseline: float, current: float) -> float:
    """Signed relative drift of ``current`` from ``baseline``."""
    if baseline == current:
        return 0.0
    denom = max(abs(baseline), 1e-12)
    return (current - baseline) / denom


def diff_snapshots(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    *,
    tolerance: float = 0.1,
    ignore: Sequence[str] = DEFAULT_IGNORE,
) -> Tuple[int, List[str]]:
    """Check ``current`` against ``baseline`` within a tolerance band.

    Returns ``(compared, problems)``: how many baseline series were
    checked, and one human-readable line per violation (empty = pass).
    ``tolerance`` is the allowed relative drift (0.15 = ±15%).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    compared = 0
    problems: List[str] = []

    for kind in ("counters", "gauges", "histograms"):
        current_rows = {
            _series_key(row): row for row in current.get(kind, ())
        }
        for row in baseline.get(kind, ()):
            name = row["name"]
            if _ignored(name, ignore):
                continue
            key = _series_key(row)
            where = f"{kind[:-1]} {name}{_labels_repr(row.get('labels', {}))}"
            compared += 1
            other = current_rows.get(key)
            if other is None:
                problems.append(f"{where}: present in baseline, missing in current")
                continue
            if kind == "histograms":
                fields: Iterable[Tuple[str, Any]] = (
                    (f, row.get(f)) for f in _HISTOGRAM_FIELDS
                )
            else:
                fields = (("value", row["value"]),)
            for field, base_value in fields:
                if base_value is None:
                    continue
                cur_value = other.get(field)
                if cur_value is None:
                    problems.append(f"{where}: {field} missing in current")
                    continue
                drift = _relative_drift(base_value, cur_value)
                if abs(drift) > tolerance:
                    problems.append(
                        f"{where}: {field} drifted {drift:+.1%} beyond "
                        f"±{tolerance:.0%} (baseline {base_value:g}, "
                        f"current {cur_value:g})"
                    )
    return compared, problems


_REQUIREMENT_OPS = (">=", "<=", "==", "!=", ">", "<")


def _parse_selector(selector: str) -> Tuple[str, Dict[str, str]]:
    """Split ``name{label=value,...}`` into ``(name, label_filter)``.

    A bare name selects every label series (empty filter).  Quotes
    around label values are optional and stripped.
    """
    selector = selector.strip()
    if not selector.endswith("}"):
        return selector, {}
    name, brace, body = selector[:-1].partition("{")
    if not brace:
        return selector, {}
    labels: Dict[str, str] = {}
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        key, eq, value = part.partition("=")
        if not eq:
            raise ValueError(
                f"metric selector {selector!r}: label term {part!r} "
                "is not key=value"
            )
        labels[key.strip()] = value.strip().strip("'\"")
    return name.strip(), labels


def _labels_match(row: Dict[str, Any], wanted: Dict[str, str]) -> bool:
    have = row.get("labels", {})
    return all(have.get(k) == v for k, v in wanted.items())


def _metric_total(snapshot: Dict[str, Any], selector: str) -> Tuple[float, bool]:
    """Sum a metric over matching label series.  Returns ``(total, found)``.

    ``selector`` is a metric name, optionally narrowed to specific label
    series with ``name{label=value,...}`` (every given label must match;
    unmentioned labels are free).  Counters and gauges contribute their
    value; histograms contribute their observation count.  A selector
    matching nothing counts as 0.0 / not-found — the caller decides
    whether absence is failure.
    """
    name, wanted = _parse_selector(selector)
    total = 0.0
    found = False
    for kind in ("counters", "gauges"):
        for row in snapshot.get(kind, ()):
            if row["name"] == name and _labels_match(row, wanted):
                total += row["value"]
                found = True
    for row in snapshot.get("histograms", ()):
        if row["name"] == name and _labels_match(row, wanted):
            total += row.get("count", 0)
            found = True
    return total, found


def check_requirements(
    snapshot: Dict[str, Any], requirements: Sequence[str]
) -> List[str]:
    """Assert constraint expressions against a metrics snapshot.

    Each requirement is ``"<selector><op><number>"`` with ``op`` one of
    ``> >= < <= == !=``, e.g. ``"serving.faults_detected>0"`` or
    ``"serving.silent_corruptions==0"``.  The selector is a metric name,
    optionally narrowed to matching label series with
    ``name{label=value,...}`` — e.g.
    ``"serving.deadline_violations{class=interactive}==0"`` gates one
    traffic class while leaving the others free to violate.  The value
    is the sum over matching label series (histograms contribute their
    count).  A selector matching nothing evaluates as 0 — so ``name==0``
    passes when the metric was never emitted, while ``name>0`` fails —
    exactly the semantics a chaos drill's gate wants.

    Returns one human-readable line per violated requirement.
    """
    problems: List[str] = []
    for expr in requirements:
        stripped = expr.strip()
        for op in _REQUIREMENT_OPS:
            if op in stripped:
                name, _, rhs = stripped.partition(op)
                name = name.strip()
                try:
                    bound = float(rhs)
                except ValueError:
                    raise ValueError(
                        f"requirement {expr!r}: right-hand side {rhs!r} "
                        "is not a number"
                    ) from None
                break
        else:
            raise ValueError(
                f"requirement {expr!r} has no comparison operator "
                f"(one of {', '.join(_REQUIREMENT_OPS)})"
            )
        value, found = _metric_total(snapshot, name)
        ok = {
            ">": value > bound,
            ">=": value >= bound,
            "<": value < bound,
            "<=": value <= bound,
            "==": value == bound,
            "!=": value != bound,
        }[op]
        if not ok:
            detail = f"{value:g}" if found else "absent (treated as 0)"
            problems.append(f"requirement {stripped!r} violated: {name} = {detail}")
    return problems
