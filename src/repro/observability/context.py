"""Request-scoped trace propagation across the process boundary.

The observability layer's :data:`~repro.observability.observer.OBS` hook
point is a *per-process* singleton: anything a ``ProcessPoolExecutor``
worker records lands in the worker interpreter's registry and dies with
the task.  This module carries telemetry across that boundary:

* :class:`TraceContext` travels **down** with each request (scheduler →
  pool → worker): the correlation id, the span name merged telemetry
  re-parents under, the request deadline, and which halves of the
  parent's observation session the worker should reproduce locally;
* :class:`WorkerTelemetry` travels **up** with each result: the worker's
  identity, its session clock total, a metrics snapshot and raw span
  events — everything the parent needs to merge the worker session into
  its own registry (:meth:`MetricsRegistry.merge`) and timeline
  (:meth:`SpanTracer.adopt_span`) with ``worker=`` labels.

Both are plain frozen-ish dataclasses of picklable primitives, so they
cross ``concurrent.futures`` untouched.  :func:`capture` is the
worker-side entry point: it opens a fresh local observation session
shaped by the context and hands back the filled telemetry on close.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.observability.metrics import MetricsRegistry
from repro.observability.observer import observe
from repro.observability.trace import REQUEST_SPAN, SpanTracer

__all__ = ["TraceContext", "WorkerTelemetry", "capture", "worker_label"]


@dataclass(frozen=True)
class TraceContext:
    """The telemetry envelope attached to one :class:`ModExpRequest`.

    Parameters
    ----------
    request_id:
        Correlation id; the service fills in a generated ``req<n>`` when
        the request itself is anonymous, so merged telemetry can always
        be tied back to its request span.
    parent_span:
        Span name the worker's session is re-parented under at merge
        time (one such span per request in the exported trace).
    deadline:
        The request's deadline, forwarded so a worker could prioritise
        or shed load without seeing the scheduling envelope.
    collect_metrics / collect_spans:
        Which halves of the parent's observation session the worker
        should reproduce locally and ship back.  Both ``False`` (the
        default) makes the context propagation-only: ids and deadline
        travel, no capture session is opened.
    detail:
        Span granularity for the worker-local tracer (mirrors the
        parent tracer's ``detail``).
    """

    request_id: str = ""
    parent_span: str = REQUEST_SPAN
    deadline: Optional[float] = None
    collect_metrics: bool = False
    collect_spans: bool = False
    detail: str = "op"

    @property
    def wants_capture(self) -> bool:
        return self.collect_metrics or self.collect_spans


@dataclass
class WorkerTelemetry:
    """One worker session's observations, shipped back with the result."""

    worker: str
    cycles: int = 0
    metrics: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = field(default_factory=list)


def worker_label() -> str:
    """Identity of the executing worker, stable within one pool.

    ``pid<n>`` inside a process-pool child, the executor thread's name on
    a thread pool, ``main`` for inline execution on the main thread.
    """
    if multiprocessing.parent_process() is not None:
        return f"pid{os.getpid()}"
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return "main"
    return thread.name


@contextmanager
def capture(context: TraceContext) -> Iterator[WorkerTelemetry]:
    """Run the with-block under a fresh local observation session.

    Installs a worker-local registry/tracer pair per the context's
    collect flags, and fills the yielded :class:`WorkerTelemetry` with
    the session's snapshot on exit.  With both flags off the session is
    skipped entirely and the telemetry stays empty (the caller can still
    use its ``worker`` label).
    """
    telemetry = WorkerTelemetry(worker=worker_label())
    if not context.wants_capture:
        yield telemetry
        return
    registry = MetricsRegistry() if context.collect_metrics else None
    tracer = SpanTracer(detail=context.detail) if context.collect_spans else None
    with observe(metrics=registry, tracer=tracer):
        yield telemetry
    if registry is not None:
        telemetry.metrics = registry.snapshot()
    if tracer is not None:
        telemetry.cycles = tracer.clock.now
        telemetry.events = list(tracer.events)
