"""Process-wide metrics registry: counters, gauges, histograms with labels.

The registry is the *accounting* half of the observability layer (the
:mod:`repro.observability.trace` span tracer is the *timeline* half).  It
follows the Prometheus data model in miniature:

* :class:`Counter` — monotonically increasing totals (cycles per
  controller state, multiplications issued, gate evaluations);
* :class:`Gauge` — last-written values (array length, logic depth);
* :class:`Histogram` — distributions (cycles per multiplication, gates
  evaluated per settle phase), bucketed by powers of two because every
  quantity we measure is a count.

Each metric carries free-form labels supplied at observation time
(``registry.counter("controller.state_cycles").inc(state="MUL1")``); one
metric object holds one time series per distinct label set.  The whole
registry snapshots to a plain dict (and therefore JSON) so benchmarks can
drop a machine-readable record next to their ``results/*.txt`` artifacts.

CPython's GIL makes the bare ``+=`` updates atomic enough for the
single-threaded simulators instrumented here; no locks are taken on the
hot path.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds: powers of two spanning one cycle
#: up to ~1M cycles (an l=512 exponentiation); values above fall into +Inf.
DEFAULT_BUCKETS: Tuple[int, ...] = tuple(2 ** k for k in range(0, 21))


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set (values stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Metric:
    """Shared name/help/series plumbing for the three metric kinds."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, Any] = {}

    def _labelled_rows(self) -> Iterable[Tuple[LabelKey, Any]]:
        return sorted(self._series.items())


class Counter(_Metric):
    """Monotonically increasing total, one value per label set."""

    kind = "counter"

    def inc(self, amount: int = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> int:
        return self._series.get(_label_key(labels), 0)

    def total(self) -> int:
        """Sum over every label set (the un-labelled grand total)."""
        return sum(self._series.values())

    def snapshot(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": v} for key, v in self._labelled_rows()
        ]


class Gauge(_Metric):
    """Last-written value, one per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._series[_label_key(labels)] = value

    def value(self, **labels: Any) -> Optional[float]:
        return self._series.get(_label_key(labels))

    def snapshot(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": v} for key, v in self._labelled_rows()
        ]


class _HistogramSeries:
    __slots__ = ("count", "sum", "min", "max", "bucket_counts")

    def __init__(self, num_buckets: int) -> None:
        self.count = 0
        self.sum = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        # one slot per finite bound, plus the +Inf overflow slot
        self.bucket_counts = [0] * (num_buckets + 1)


class Histogram(_Metric):
    """Distribution of observed values over fixed buckets.

    ``buckets`` are inclusive upper bounds in increasing order; a value
    lands in the first bucket whose bound is >= the value, or in the
    implicit ``+Inf`` bucket past the last bound.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[int, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"histogram buckets must strictly increase: {buckets}")
        self.buckets = tuple(buckets)

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.count += 1
        series.sum += value
        if series.min is None or value < series.min:
            series.min = value
        if series.max is None or value > series.max:
            series.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series.bucket_counts[i] += 1
                return
        series.bucket_counts[-1] += 1

    def series(self, **labels: Any) -> Optional[_HistogramSeries]:
        return self._series.get(_label_key(labels))

    def snapshot(self) -> List[Dict[str, Any]]:
        rows = []
        for key, s in self._labelled_rows():
            buckets = {
                str(bound): c
                for bound, c in zip(self.buckets, s.bucket_counts)
                if c
            }
            if s.bucket_counts[-1]:
                buckets["+Inf"] = s.bucket_counts[-1]
            rows.append(
                {
                    "labels": dict(key),
                    "count": s.count,
                    "sum": s.sum,
                    "min": s.min,
                    "max": s.max,
                    "buckets": buckets,
                }
            )
        return rows


_KIND_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create home for every metric in one observation session.

    Accessors are idempotent: ``registry.counter("x")`` returns the same
    object every call, creating it on first use — so instrumentation sites
    never need set-up code.  Asking for an existing name with a different
    kind raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"requested {cls.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Tuple[int, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Drop every metric (a fresh session)."""
        self._metrics.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as a JSON-serializable dict."""
        out: Dict[str, Any] = {"counters": [], "gauges": [], "histograms": []}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            for row in m.snapshot():
                out[m.kind + "s"].append({"name": name, "help": m.help, **row})
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    def render_text(self) -> str:
        """Human-readable snapshot for ``repro observe`` / ``--metrics``."""
        snap = self.snapshot()
        lines: List[str] = []

        def fmt_labels(labels: Dict[str, str]) -> str:
            if not labels:
                return ""
            inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            return "{" + inner + "}"

        if snap["counters"]:
            lines.append("counters:")
            for row in snap["counters"]:
                lines.append(
                    f"  {row['name']}{fmt_labels(row['labels'])} = {row['value']}"
                )
        if snap["gauges"]:
            lines.append("gauges:")
            for row in snap["gauges"]:
                lines.append(
                    f"  {row['name']}{fmt_labels(row['labels'])} = {row['value']}"
                )
        if snap["histograms"]:
            lines.append("histograms:")
            for row in snap["histograms"]:
                mean = row["sum"] / row["count"] if row["count"] else 0.0
                lines.append(
                    f"  {row['name']}{fmt_labels(row['labels'])}: "
                    f"count={row['count']} sum={row['sum']} "
                    f"min={row['min']} mean={mean:g} max={row['max']}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"
