"""Process-wide metrics registry: counters, gauges, histograms with labels.

The registry is the *accounting* half of the observability layer (the
:mod:`repro.observability.trace` span tracer is the *timeline* half).  It
follows the Prometheus data model in miniature:

* :class:`Counter` — monotonically increasing totals (cycles per
  controller state, multiplications issued, gate evaluations);
* :class:`Gauge` — last-written values (array length, logic depth);
* :class:`Histogram` — distributions (cycles per multiplication, gates
  evaluated per settle phase), bucketed by powers of two because every
  quantity we measure is a count.

Each metric carries free-form labels supplied at observation time
(``registry.counter("controller.state_cycles").inc(state="MUL1")``); one
metric object holds one time series per distinct label set.  The whole
registry snapshots to a plain dict (and therefore JSON) so benchmarks can
drop a machine-readable record next to their ``results/*.txt`` artifacts.

CPython's GIL makes the bare ``+=`` updates atomic enough for the
single-threaded simulators instrumented here; no locks are taken on the
hot path.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
]

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds: powers of two spanning one cycle
#: up to ~1M cycles (an l=512 exponentiation); values above fall into +Inf.
DEFAULT_BUCKETS: Tuple[int, ...] = tuple(2 ** k for k in range(0, 21))


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set (values stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _prom_name(name: str) -> str:
    """Metric name in the Prometheus charset (``[a-zA-Z_:][a-zA-Z0-9_:]*``)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    return "_" + cleaned if cleaned[:1].isdigit() else cleaned


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = []
    for k, v in sorted(labels.items()):
        escaped = str(v).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        parts.append(f'{re.sub(r"[^a-zA-Z0-9_]", "_", k)}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def _prom_num(value: Any) -> str:
    """Render a sample value: integral floats drop the trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


class _Metric:
    """Shared name/help/series plumbing for the three metric kinds."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, Any] = {}

    def _labelled_rows(self) -> Iterable[Tuple[LabelKey, Any]]:
        return sorted(self._series.items())


class Counter(_Metric):
    """Monotonically increasing total, one value per label set."""

    kind = "counter"

    def inc(self, amount: int = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> int:
        return self._series.get(_label_key(labels), 0)

    def total(self, **labels: Any) -> int:
        """Sum over every label set matching the given subset.

        With no arguments this is the un-labelled grand total; with
        labels it sums every series whose label set contains them
        (``total(backend="integer")`` sums across workers).
        """
        if not labels:
            return sum(self._series.values())
        want = set(_label_key(labels))
        return sum(v for k, v in self._series.items() if want <= set(k))

    def snapshot(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": v} for key, v in self._labelled_rows()
        ]


class Gauge(_Metric):
    """Last-written value, one per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._series[_label_key(labels)] = value

    def value(self, **labels: Any) -> Optional[float]:
        return self._series.get(_label_key(labels))

    def snapshot(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": v} for key, v in self._labelled_rows()
        ]


class _HistogramSeries:
    __slots__ = ("count", "sum", "min", "max", "bucket_counts")

    def __init__(self, num_buckets: int) -> None:
        self.count = 0
        self.sum = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        # one slot per finite bound, plus the +Inf overflow slot
        self.bucket_counts = [0] * (num_buckets + 1)


class Histogram(_Metric):
    """Distribution of observed values over fixed buckets.

    ``buckets`` are inclusive upper bounds in increasing order; a value
    lands in the first bucket whose bound is >= the value, or in the
    implicit ``+Inf`` bucket past the last bound.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[int, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"histogram buckets must strictly increase: {buckets}")
        self.buckets = tuple(buckets)

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.count += 1
        series.sum += value
        if series.min is None or value < series.min:
            series.min = value
        if series.max is None or value > series.max:
            series.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series.bucket_counts[i] += 1
                return
        series.bucket_counts[-1] += 1

    def series(self, **labels: Any) -> Optional[_HistogramSeries]:
        return self._series.get(_label_key(labels))

    def aggregate(self, **labels: Any) -> Optional[_HistogramSeries]:
        """Merged view of every series whose labels contain the given subset.

        ``aggregate(backend="integer")`` folds the per-worker series of one
        backend into a single distribution; ``aggregate()`` folds everything.
        Returns ``None`` when nothing matches.
        """
        want = set(_label_key(labels))
        merged: Optional[_HistogramSeries] = None
        for key, s in self._series.items():
            if not want <= set(key):
                continue
            if merged is None:
                merged = _HistogramSeries(len(self.buckets))
            merged.count += s.count
            merged.sum += s.sum
            if s.min is not None and (merged.min is None or s.min < merged.min):
                merged.min = s.min
            if s.max is not None and (merged.max is None or s.max > merged.max):
                merged.max = s.max
            for i, c in enumerate(s.bucket_counts):
                merged.bucket_counts[i] += c
        return merged

    def percentile(self, q: float, **labels: Any) -> Optional[float]:
        """Estimate the ``q``-th percentile (0–100) over matching series.

        Classic bucketed estimation: find the bucket holding the rank-``q``
        sample, interpolate linearly between its bounds, and clamp into the
        observed ``[min, max]`` window (which makes single-valued series
        exact).  A rank landing in the ``+Inf`` overflow bucket returns the
        observed maximum.  Returns ``None`` for an empty/missing series.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        return self._series_percentile(self.aggregate(**labels), q)

    def _series_percentile(
        self, s: Optional[_HistogramSeries], q: float
    ) -> Optional[float]:
        if s is None or s.count == 0:
            return None
        if q == 0:
            return s.min
        rank = s.count * q / 100.0
        cum = 0.0
        lower = 0.0
        for bound, c in zip(self.buckets, s.bucket_counts):
            if c:
                if cum + c >= rank:
                    frac = (rank - cum) / c
                    value = lower + frac * (bound - lower)
                    if s.min is not None:
                        value = max(value, s.min)
                    if s.max is not None:
                        value = min(value, s.max)
                    return value
                cum += c
            lower = bound
        return s.max  # the rank falls in the +Inf overflow bucket

    def _percentiles(self, s: _HistogramSeries) -> Dict[str, Optional[float]]:
        """The snapshot's p50/p95/p99 summary for one series."""
        return {
            "p50": self._series_percentile(s, 50),
            "p95": self._series_percentile(s, 95),
            "p99": self._series_percentile(s, 99),
        }

    def merge_snapshot_row(self, row: Dict[str, Any], **labels: Any) -> None:
        """Fold one exported snapshot row into the series for ``labels``.

        The inverse of :meth:`snapshot`: bucket counts land on the first
        local bound >= the exported bound (exact when both sides use the
        same bucket layout, which every registry in this codebase does).
        """
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.count += row["count"]
        series.sum += row["sum"]
        for edge in ("min", "max"):
            value = row.get(edge)
            if value is None:
                continue
            current = getattr(series, edge)
            if (
                current is None
                or (edge == "min" and value < current)
                or (edge == "max" and value > current)
            ):
                setattr(series, edge, value)
        for bound_str, count in row.get("buckets", {}).items():
            if bound_str == "+Inf":
                series.bucket_counts[-1] += count
                continue
            bound = float(bound_str)
            for i, local in enumerate(self.buckets):
                if bound <= local:
                    series.bucket_counts[i] += count
                    break
            else:
                series.bucket_counts[-1] += count

    def snapshot(self) -> List[Dict[str, Any]]:
        rows = []
        for key, s in self._labelled_rows():
            buckets = {
                str(bound): c
                for bound, c in zip(self.buckets, s.bucket_counts)
                if c
            }
            if s.bucket_counts[-1]:
                buckets["+Inf"] = s.bucket_counts[-1]
            rows.append(
                {
                    "labels": dict(key),
                    "count": s.count,
                    "sum": s.sum,
                    "min": s.min,
                    "max": s.max,
                    **self._percentiles(s),
                    "buckets": buckets,
                }
            )
        return rows


_KIND_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create home for every metric in one observation session.

    Accessors are idempotent: ``registry.counter("x")`` returns the same
    object every call, creating it on first use — so instrumentation sites
    never need set-up code.  Asking for an existing name with a different
    kind raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"requested {cls.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Tuple[int, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Drop every metric (a fresh session)."""
        self._metrics.clear()

    # ------------------------------------------------------------------
    # Merge (cross-process telemetry)
    # ------------------------------------------------------------------
    def merge(
        self,
        source: Union["MetricsRegistry", Dict[str, Any]],
        **extra_labels: Any,
    ) -> None:
        """Fold another registry (or an exported snapshot dict) into this one.

        The workhorse of cross-process telemetry: a worker process runs
        under its own registry, ships ``registry.snapshot()`` back with the
        result, and the parent merges it here with identifying labels
        (``parent.merge(snapshot, worker="pid1234")``).  Counters add,
        gauges last-write-win, histograms merge bucket-by-bucket; every
        merged row gains ``extra_labels`` on top of its own.
        """
        snap = source.snapshot() if isinstance(source, MetricsRegistry) else source
        for row in snap.get("counters", ()):
            labels = {**row["labels"], **extra_labels}
            self.counter(row["name"], row.get("help", "")).inc(
                row["value"], **labels
            )
        for row in snap.get("gauges", ()):
            labels = {**row["labels"], **extra_labels}
            self.gauge(row["name"], row.get("help", "")).set(row["value"], **labels)
        for row in snap.get("histograms", ()):
            labels = {**row["labels"], **extra_labels}
            self.histogram(row["name"], row.get("help", "")).merge_snapshot_row(
                row, **labels
            )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as a JSON-serializable dict."""
        out: Dict[str, Any] = {"counters": [], "gauges": [], "histograms": []}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            for row in m.snapshot():
                out[m.kind + "s"].append({"name": name, "help": m.help, **row})
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Metric names are sanitised to the Prometheus charset (dots become
        underscores), counters gain the conventional ``_total`` suffix, and
        histograms expand to cumulative ``_bucket{le=...}`` series plus
        ``_sum`` / ``_count`` — directly scrapeable from the ``/metrics``
        endpoint ``repro serve --http-port`` exposes.
        """
        lines: List[str] = []
        for name in sorted(self._metrics):
            m = self._metrics[name]
            pname = _prom_name(name)
            if m.kind == "counter":
                pname += "_total"
            if m.help:
                lines.append(f"# HELP {pname} {m.help}")
            lines.append(f"# TYPE {pname} {m.kind}")
            if m.kind in ("counter", "gauge"):
                for key, value in m._labelled_rows():
                    lines.append(f"{pname}{_prom_labels(dict(key))} {_prom_num(value)}")
            else:
                for key, s in m._labelled_rows():
                    labels = dict(key)
                    cum = 0
                    for bound, c in zip(m.buckets, s.bucket_counts):
                        cum += c
                        le = {**labels, "le": _prom_num(bound)}
                        lines.append(f"{pname}_bucket{_prom_labels(le)} {cum}")
                    le = {**labels, "le": "+Inf"}
                    lines.append(f"{pname}_bucket{_prom_labels(le)} {s.count}")
                    lines.append(f"{pname}_sum{_prom_labels(labels)} {_prom_num(s.sum)}")
                    lines.append(f"{pname}_count{_prom_labels(labels)} {s.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_prometheus())

    @staticmethod
    def parse_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
        return parse_prometheus_text(text)

    def render_text(self) -> str:
        """Human-readable snapshot for ``repro observe`` / ``--metrics``."""
        snap = self.snapshot()
        lines: List[str] = []

        def fmt_labels(labels: Dict[str, str]) -> str:
            if not labels:
                return ""
            inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            return "{" + inner + "}"

        if snap["counters"]:
            lines.append("counters:")
            for row in snap["counters"]:
                lines.append(
                    f"  {row['name']}{fmt_labels(row['labels'])} = {row['value']}"
                )
        if snap["gauges"]:
            lines.append("gauges:")
            for row in snap["gauges"]:
                lines.append(
                    f"  {row['name']}{fmt_labels(row['labels'])} = {row['value']}"
                )
        if snap["histograms"]:
            lines.append("histograms:")
            for row in snap["histograms"]:
                mean = row["sum"] / row["count"] if row["count"] else 0.0
                quantiles = " ".join(
                    f"{q}={row[q]:g}"
                    for q in ("p50", "p95", "p99")
                    if row.get(q) is not None
                )
                lines.append(
                    f"  {row['name']}{fmt_labels(row['labels'])}: "
                    f"count={row['count']} sum={row['sum']} "
                    f"min={row['min']} mean={mean:g} max={row['max']}"
                    + (f" {quantiles}" if quantiles else "")
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


# ----------------------------------------------------------------------
# Prometheus text parsing (the scrape side of `repro top`)
# ----------------------------------------------------------------------
_PROM_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)\s*$"
)
_PROM_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse Prometheus text exposition (0.0.4) into a plain dict.

    The inverse of :meth:`MetricsRegistry.to_prometheus`, used by
    ``repro top`` to read a live ``/metrics`` endpoint.  Returns
    ``{sample_name: {"type": kind, "samples": [(labels_dict, value), ...]}}``
    where ``sample_name`` is the exposition name as written (counters keep
    their ``_total`` suffix; histograms appear as separate ``_bucket`` /
    ``_sum`` / ``_count`` entries).  Unparseable lines are skipped — a
    scraper must tolerate exposition it does not fully understand.
    """
    out: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3].strip()
            continue
        m = _PROM_SAMPLE.match(line)
        if m is None:
            continue
        name, labelstr, raw = m.groups()
        try:
            value = float(raw)
        except ValueError:
            continue
        labels: Dict[str, str] = {}
        if labelstr:
            for lm in _PROM_LABEL.finditer(labelstr):
                labels[lm.group(1)] = (
                    lm.group(2)
                    .replace(r"\"", '"')
                    .replace(r"\n", "\n")
                    .replace("\\\\", "\\")
                )
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        entry = out.setdefault(
            name, {"type": types.get(base, types.get(name, "untyped")), "samples": []}
        )
        entry["samples"].append((labels, value))
    return out
