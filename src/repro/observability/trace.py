"""Cycle-accurate span tracer with Chrome trace-event JSON export.

The tracer records a nested timeline of the simulation — exponentiation →
multiplication → controller-state segments → per-cycle events — against a
:class:`CycleClock` that the instrumented circuits advance once per
*charged* clock cycle.  The export is the Chrome trace-event format
(JSON object with a ``traceEvents`` array), directly openable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``; one simulated cycle is
rendered as one microsecond, the format's native tick.

Detail levels (each includes the previous):

* ``"op"``    — operation spans only (exponentiate / multiply);
* ``"state"`` — adds one segment span per controller-state visit
  (MUL1/MUL2/OUT), i.e. ``3l+4`` segments per multiplication;
* ``"cycle"`` — adds per-cycle instant events from the array model.

Spans are emitted as complete (``ph: "X"``) events when they close, so a
finished trace needs no begin/end pairing by the viewer; spans still open
at export time are closed at the current clock value in the exported copy
only.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = [
    "CycleClock",
    "SpanTracer",
    "TRACE_DETAILS",
    "REQUEST_SPAN",
    "validate_chrome_trace",
]

TRACE_DETAILS = ("op", "state", "cycle")

#: Span name under which adopted worker sessions nest (one per request).
REQUEST_SPAN = "serving.request"


class CycleClock:
    """Monotonic simulated-cycle counter shared by tracer and circuits."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0

    def advance(self, cycles: int = 1) -> None:
        self.now += cycles

    def reset(self) -> None:
        self.now = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CycleClock(now={self.now})"


class SpanTracer:
    """Nested-span recorder over a :class:`CycleClock`.

    Parameters
    ----------
    clock:
        The cycle clock providing timestamps; created if not given.  When
        installed on the global observer, instrumented circuits advance
        this clock once per charged cycle.
    detail:
        One of :data:`TRACE_DETAILS`; how deep the emitted timeline goes.
    """

    PID = 1
    TID = 1

    def __init__(
        self, clock: Optional[CycleClock] = None, *, detail: str = "op"
    ) -> None:
        if detail not in TRACE_DETAILS:
            raise ValueError(f"detail must be one of {TRACE_DETAILS}, got {detail!r}")
        self.clock = clock if clock is not None else CycleClock()
        self.detail = detail
        self.events: List[Dict[str, Any]] = []
        self._stack: List[Dict[str, Any]] = []
        # Adopted worker sessions: one thread track per worker, laid out
        # end-to-end by a per-track cursor (worker clocks all start at 0).
        self._worker_tids: Dict[str, int] = {}
        self._track_cursor: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, name: str, cat: str = "sim", **args: Any) -> None:
        """Open a nested span at the current cycle."""
        self._stack.append(
            {"name": name, "cat": cat, "ts": self.clock.now, "args": dict(args)}
        )

    def end(self, **args: Any) -> Optional[Dict[str, Any]]:
        """Close the innermost open span; extra args merge into the span.

        Tolerates an empty stack (returns ``None``) so instrumentation
        that was enabled mid-operation cannot crash the simulation.
        """
        if not self._stack:
            return None
        top = self._stack.pop()
        top["args"].update(args)
        event = self._complete_event(
            top["name"], top["cat"], top["ts"], self.clock.now - top["ts"], top["args"]
        )
        self.events.append(event)
        return event

    def complete(
        self, name: str, ts: int, dur: int, cat: str = "sim", **args: Any
    ) -> None:
        """Record an already-delimited span (e.g. a 1-cycle state segment)."""
        self.events.append(self._complete_event(name, cat, ts, dur, dict(args)))

    def instant(self, name: str, cat: str = "sim", **args: Any) -> None:
        """A zero-duration marker at the current cycle."""
        self.events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",
                "ts": self.clock.now,
                "pid": self.PID,
                "tid": self.TID,
                "args": dict(args),
            }
        )

    def counter(self, name: str, value: float, cat: str = "sim") -> None:
        """A counter-track sample (rendered as a graph in Perfetto)."""
        self.events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "C",
                "ts": self.clock.now,
                "pid": self.PID,
                "args": {"value": value},
            }
        )

    def _complete_event(
        self, name: str, cat: str, ts: int, dur: int, args: Dict[str, Any]
    ) -> Dict[str, Any]:
        return {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": self.PID,
            "tid": self.TID,
            "args": args,
        }

    # ------------------------------------------------------------------
    # Cross-process adoption
    # ------------------------------------------------------------------
    def worker_tid(self, worker: str) -> int:
        """Stable thread-track id for one worker label (allocated on first use)."""
        tid = self._worker_tids.get(worker)
        if tid is None:
            tid = self._worker_tids[worker] = self.TID + 1 + len(self._worker_tids)
        return tid

    def adopt_span(
        self,
        name: str,
        events: List[Dict[str, Any]],
        duration: int,
        *,
        worker: str,
        cat: str = "serving",
        **args: Any,
    ) -> Dict[str, Any]:
        """Re-parent one worker session's events under a new span here.

        A worker process records spans against a fresh tracer whose clock
        started at zero; this folds that session into the parent timeline:
        a parent span of ``duration`` cycles is placed at the worker
        track's cursor, every worker event is shifted into its window (and
        onto the worker's tid, tagged with the worker label and the parent
        span's ``request_id`` when present), and the cursor advances so
        successive sessions on one worker lie end to end.  Returns the
        parent span event.
        """
        tid = self.worker_tid(worker)
        start = self._track_cursor.get(tid, 0)
        duration = max(int(duration), 0)
        parent = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start,
            "dur": duration,
            "pid": self.PID,
            "tid": tid,
            "args": {**args, "worker": worker},
        }
        self.events.append(parent)
        request_id = args.get("request_id")
        for event in events:
            adopted = dict(event)
            adopted["ts"] = adopted.get("ts", 0) + start
            adopted["pid"] = self.PID
            adopted["tid"] = tid
            adopted_args = dict(adopted.get("args") or {})
            adopted_args.setdefault("worker", worker)
            if request_id is not None:
                adopted_args.setdefault("request_id", request_id)
            adopted["args"] = adopted_args
            self.events.append(adopted)
        self._track_cursor[tid] = start + max(duration, 1)
        return parent

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and the CLI summary)
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """All recorded complete events, optionally filtered by name."""
        return [
            e
            for e in self.events
            if e["ph"] == "X" and (name is None or e["name"] == name)
        ]

    def span_cycles(self, name: str) -> int:
        """Total duration (in cycles) of every span with this name."""
        return sum(e["dur"] for e in self.spans(name))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The Chrome trace-event object; open spans closed in the copy."""
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": self.PID,
                "tid": 0,
                "args": {"name": "repro simulation"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": self.PID,
                "tid": self.TID,
                "args": {"name": "cycles"},
            },
        ]
        for worker, tid in sorted(self._worker_tids.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": self.PID,
                    "tid": tid,
                    "args": {"name": f"worker:{worker}"},
                }
            )
        events.extend(self.events)
        for frame in reversed(self._stack):
            events.append(
                self._complete_event(
                    frame["name"],
                    frame["cat"],
                    frame["ts"],
                    self.clock.now - frame["ts"],
                    {**frame["args"], "unclosed": True},
                )
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "tool": "repro.observability",
                "timeUnit": "1 ts = 1 simulated clock cycle",
                "detail": self.detail,
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")


# ----------------------------------------------------------------------
# Schema validation (shared by the test-suite and ``--trace`` users)
# ----------------------------------------------------------------------
_VALID_PHASES = set("BEXiICcbnesfMmPOoDTRpv(){}N")


def validate_chrome_trace(obj: Any) -> List[str]:
    """Check ``obj`` against the Chrome trace-event JSON schema.

    Returns a list of human-readable problems — empty when the trace is
    valid.  Covers the subset of the format Perfetto requires for import:
    a ``traceEvents`` array of dicts, each with a known ``ph``, a string
    ``name``, integer timestamps, ``dur`` on complete events, balanced
    ``B``/``E`` pairs, and a scope flag on instants.

    Traces holding merged worker telemetry get one further check: every
    adopted worker span (a complete event whose args carry both
    ``worker`` and ``request_id``) must nest inside its request span — a
    ``serving.request`` complete event with the same ``request_id`` on
    the same thread track whose time window contains it.
    """
    problems: List[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["top level must be an object with a 'traceEvents' key"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    depth = 0
    request_spans: Dict[Any, List[Any]] = {}
    worker_spans: List[Any] = []
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            problems.append(f"{where}: event must be an object")
            continue
        ph = e.get("ph")
        if not isinstance(ph, str) or ph not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(e.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        if "pid" not in e:
            problems.append(f"{where}: missing 'pid'")
        if ph != "M":
            ts = e.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: missing/negative 'ts'")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs 'dur' >= 0")
            else:
                args = e.get("args") or {}
                rid = args.get("request_id")
                if rid is not None:
                    key = (e.get("tid"), rid)
                    if e.get("name") == REQUEST_SPAN:
                        request_spans.setdefault(key, []).append(
                            (e["ts"], e["ts"] + dur)
                        )
                    elif "worker" in args:
                        worker_spans.append((where, key, e["ts"], e["ts"] + dur))
        elif ph == "i":
            if e.get("s", "t") not in ("g", "p", "t"):
                problems.append(f"{where}: instant scope must be g/p/t")
        elif ph == "B":
            depth += 1
        elif ph == "E":
            depth -= 1
            if depth < 0:
                problems.append(f"{where}: 'E' without matching 'B'")
                depth = 0
        elif ph == "C" and "args" not in e:
            problems.append(f"{where}: counter event needs 'args'")
    if depth > 0:
        problems.append(f"{depth} 'B' event(s) never closed by 'E'")
    for where, key, lo, hi in worker_spans:
        windows = request_spans.get(key)
        if windows is None:
            problems.append(
                f"{where}: worker span for request {key[1]!r} has no "
                f"'{REQUEST_SPAN}' span on its thread track"
            )
        elif not any(w_lo <= lo and hi <= w_hi for w_lo, w_hi in windows):
            problems.append(
                f"{where}: worker span [{lo}, {hi}] not nested inside its "
                f"request span for {key[1]!r}"
            )
    return problems
