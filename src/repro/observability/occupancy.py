"""Per-cell occupancy recording and the analytic ``2i+j`` pipeline model.

The paper's schedule computes digit ``t_{i,j}`` in cell ``j`` at cycle
``2i + j``: each cell works every *other* cycle, and the wavefront needs
``2(l+2)`` cycles to drain past the last row, so a lone multiplication
leaves roughly two thirds of the array idle.  This module makes that waste
measurable.  It has two halves:

* the **analytic model** — closed-form busy masks and idle fractions
  derived directly from the schedule (:func:`schedule_busy_mask`,
  :func:`analytic_idle_fraction`), independent of any simulator;
* the **recorder** — :class:`OccupancyRecorder`, installed on the global
  :data:`~repro.observability.observer.OBS` next to the metrics registry
  and span tracer.  Hook sites in the systolic array and the gate-level
  engines sample a busy bitmask per simulated cycle (``occ.sample``) or an
  aggregate busy/total pair (``occ.activity``); the recorder accumulates
  per-cell busy counts, keeps a bounded window of raw masks for the
  heatmap, and renders ASCII/CSV reports.

Sampling is off by default: the hook sites live inside the existing
``if OBS.enabled`` guards and additionally test ``OBS.occupancy is not
None``, so uninstrumented simulation pays nothing and metrics-only
sessions pay one extra ``None`` test per cycle.

The RTL array samples its *own* productivity predicate (the same parity
gating its overflow checks use), while the validation tests compare the
integrated measurement against this module's closed forms — a real
cross-check of the schedule, not a tautology.
"""

from __future__ import annotations

import io
from typing import Any, Dict, List, Optional

__all__ = [
    "schedule_busy_mask",
    "analytic_busy_cycles_per_cell",
    "analytic_cells",
    "analytic_datapath_cycles",
    "analytic_idle_fraction",
    "OccupancyRecorder",
]

#: Density ramp for the ASCII heatmap, blank (always idle) to '@' (always busy).
_HEAT_CHARS = " .:-=+*#%@"


# ----------------------------------------------------------------------
# Analytic 2i+j model
# ----------------------------------------------------------------------
def _top_cell(l: int, mode: str) -> int:
    if mode == "corrected":
        return l + 1
    if mode == "paper":
        return l
    raise ValueError(f"mode must be 'corrected' or 'paper', got {mode!r}")


def schedule_busy_mask(cycle: int, l: int, top_cell: Optional[int] = None) -> int:
    """Bitmask of cells productive at ``cycle`` under the ``2i+j`` schedule.

    Bit ``j`` is set iff cell ``j`` computes a real digit this cycle:
    ``(cycle - j)`` even and the row index ``(cycle - j) / 2`` within
    ``[0, l+1]``.  ``top_cell`` is the highest cell position (``l+1``
    corrected, ``l`` paper; defaults to corrected).

    The productive cells form a contiguous same-parity run, so the mask is
    built in closed form: ``n`` alternating bits (``0b0101...01``, i.e.
    ``(4^n - 1)/3``) shifted to the run's base.
    """
    if top_cell is None:
        top_cell = l + 1
    lo = cycle - 2 * (l + 1)
    if lo < 0:
        lo = 0
    hi = top_cell if top_cell < cycle else cycle
    if (cycle - lo) & 1:
        lo += 1
    if hi < lo:
        return 0
    n = ((hi - lo) >> 1) + 1
    return ((1 << (2 * n)) - 1) // 3 << lo


def analytic_busy_cycles_per_cell(l: int) -> int:
    """Busy cycles per cell over one multiplication: one per row = ``l + 2``."""
    return l + 2


def analytic_cells(l: int, mode: str = "corrected") -> int:
    """Number of physical cell positions: ``l+2`` corrected, ``l+1`` paper."""
    return _top_cell(l, mode) + 1


def analytic_datapath_cycles(l: int, mode: str = "corrected") -> int:
    """Array cycles for one multiplication: ``3l+4`` corrected, ``3l+3`` paper.

    Matches ``SystolicArrayRTL.datapath_cycles`` (``2(l+1) + top_cell + 1``).
    """
    return 2 * (l + 1) + _top_cell(l, mode) + 1


def analytic_idle_fraction(l: int, mode: str = "corrected") -> float:
    """Idle fraction of the array over one lone multiplication.

    Every cell is busy exactly ``l+2`` of the ``3l+4`` (corrected) or
    ``3l+3`` (paper) datapath cycles, so the idle fraction is
    ``1 - (l+2)/(3l+4)`` — approaching 2/3 as ``l`` grows.  This is the
    figure the ROADMAP's MMM-interleaving work wants to reclaim.
    """
    return 1.0 - analytic_busy_cycles_per_cell(l) / analytic_datapath_cycles(l, mode)


# ----------------------------------------------------------------------
# Recorder
# ----------------------------------------------------------------------
class _SampledTrack:
    """Per-cell busy/idle samples for one source (e.g. the RTL array)."""

    __slots__ = ("num_cells", "cycles", "busy_cell_cycles", "cell_busy", "masks", "dropped_masks")

    def __init__(self, num_cells: int) -> None:
        self.num_cells = num_cells
        self.cycles = 0
        self.busy_cell_cycles = 0
        self.cell_busy: List[int] = [0] * num_cells
        self.masks: List[int] = []
        self.dropped_masks = 0


class _ActivityTrack:
    """Aggregate busy/total accounting for sources without per-cell detail."""

    __slots__ = ("samples", "busy", "total")

    def __init__(self) -> None:
        self.samples = 0
        self.busy = 0
        self.total = 0


class OccupancyRecorder:
    """Accumulates busy/idle state per simulated cycle, per source.

    Two recording shapes:

    * :meth:`sample` — a busy *bitmask* over ``num_cells`` units for one
      cycle (the systolic array's cells, sampled by the RTL and gate-level
      hook sites).  Feeds the occupancy matrix, per-cell busy counts and
      the heatmap.
    * :meth:`activity` — an aggregate ``busy / total`` pair for one cycle
      or one event (compiled-engine lane fill, interpreted-engine DFF
      capture fraction) where per-unit identity is not meaningful.

    ``max_mask_cycles`` bounds the raw masks retained for the heatmap;
    counts keep accumulating past the cap (``dropped_masks`` records how
    many cycles fell off), so idle fractions stay exact on long runs.
    """

    def __init__(self, max_mask_cycles: int = 16384) -> None:
        self.max_mask_cycles = max_mask_cycles
        self._sampled: Dict[str, _SampledTrack] = {}
        self._activity: Dict[str, _ActivityTrack] = {}

    # -- recording (hot path) -------------------------------------------
    def sample(self, source: str, cycle: int, mask: int, num_cells: int) -> int:
        """Record one cycle's busy bitmask; returns the busy-cell count."""
        tr = self._sampled.get(source)
        if tr is None:
            tr = self._sampled[source] = _SampledTrack(num_cells)
        elif num_cells > tr.num_cells:
            tr.cell_busy.extend([0] * (num_cells - tr.num_cells))
            tr.num_cells = num_cells
        busy = mask.bit_count()
        tr.cycles += 1
        tr.busy_cell_cycles += busy
        if len(tr.masks) < self.max_mask_cycles:
            tr.masks.append(mask)
        else:
            tr.dropped_masks += 1
        cell_busy = tr.cell_busy
        while mask:
            low = mask & -mask
            cell_busy[low.bit_length() - 1] += 1
            mask ^= low
        return busy

    def activity(self, source: str, busy: int, total: int) -> None:
        """Record one aggregate busy/total observation for ``source``."""
        tr = self._activity.get(source)
        if tr is None:
            tr = self._activity[source] = _ActivityTrack()
        tr.samples += 1
        tr.busy += busy
        tr.total += total

    # -- queries --------------------------------------------------------
    def sources(self) -> List[str]:
        return sorted(set(self._sampled) | set(self._activity))

    def _busy_total(self, source: str) -> Optional[tuple]:
        s = self._sampled.get(source)
        if s is not None and s.cycles:
            return (s.busy_cell_cycles, s.cycles * s.num_cells)
        a = self._activity.get(source)
        if a is not None and a.total:
            return (a.busy, a.total)
        return None

    def busy_fraction(self, source: str) -> Optional[float]:
        bt = self._busy_total(source)
        return bt[0] / bt[1] if bt else None

    def idle_fraction(self, source: str) -> Optional[float]:
        f = self.busy_fraction(source)
        return None if f is None else 1.0 - f

    def cycles(self, source: str) -> int:
        s = self._sampled.get(source)
        return s.cycles if s is not None else 0

    def cell_busy_fractions(self, source: str) -> List[float]:
        """Per-unit busy fraction of a sampled track, unit 0 first.

        For the array sources each entry is one cell; for the chip's
        ``chip.tiles`` track (one bit per tile per chip cycle) each entry
        is one tile's busy fraction — the per-tile utilization figure the
        profiler exports as ``chip.tile_busy`` gauges.
        """
        s = self._sampled.get(source)
        if s is None or not s.cycles:
            return []
        return [b / s.cycles for b in s.cell_busy]

    def matrix(self, source: str) -> List[List[int]]:
        """Occupancy matrix from the retained masks: ``[cell][cycle]`` ∈ {0,1}.

        Row 0 is cell 0 (the rightmost, ``m``-generating cell); columns are
        the sampled cycles in order (capped at ``max_mask_cycles``).
        """
        s = self._sampled.get(source)
        if s is None:
            return []
        return [
            [(m >> j) & 1 for m in s.masks] for j in range(s.num_cells)
        ]

    # -- rendering ------------------------------------------------------
    def heatmap(self, source: str, width: int = 72, unit: str = "cell") -> str:
        """ASCII heatmap: one row per cell (top cell first), time left→right.

        Cycles are folded into at most ``width`` buckets; each glyph encodes
        the cell's busy fraction within its bucket on the ramp
        ``' .:-=+*#%@'`` (blank = always idle, ``@`` = always busy).
        ``unit`` renames the row label — the chip profiler renders its
        tile-busy track (one bit per tile per cycle) through the same
        folding with ``unit="tile"``.
        """
        s = self._sampled.get(source)
        if s is None or not s.masks:
            return f"(no occupancy samples for {source!r})"
        ncyc = len(s.masks)
        buckets = min(width, ncyc)
        lines = [
            f"occupancy heatmap [{source}]: {s.num_cells} {unit}s x {ncyc} cycles"
            + (f" (+{s.dropped_masks} not shown)" if s.dropped_masks else ""),
        ]
        bounds = [(b * ncyc) // buckets for b in range(buckets + 1)]
        for j in range(s.num_cells - 1, -1, -1):
            row = []
            for b in range(buckets):
                lo, hi = bounds[b], bounds[b + 1]
                busy = sum((s.masks[c] >> j) & 1 for c in range(lo, hi))
                frac = busy / (hi - lo) if hi > lo else 0.0
                row.append(_HEAT_CHARS[min(int(frac * len(_HEAT_CHARS)), len(_HEAT_CHARS) - 1)])
            lines.append(f"{unit} {j:4d} |{''.join(row)}|")
        busy_frac = self.busy_fraction(source) or 0.0
        lines.append(
            f"busy {busy_frac:.1%} / idle {1 - busy_frac:.1%} "
            f"({s.busy_cell_cycles}/{s.cycles * s.num_cells} cell-cycles)"
        )
        return "\n".join(lines)

    def to_csv(self, source: str) -> str:
        """Retained occupancy matrix as CSV: header ``cycle,cell0,...``."""
        s = self._sampled.get(source)
        if s is None:
            return ""
        out = io.StringIO()
        out.write("cycle," + ",".join(f"cell{j}" for j in range(s.num_cells)) + "\n")
        for c, m in enumerate(s.masks):
            out.write(str(c) + "," + ",".join(str((m >> j) & 1) for j in range(s.num_cells)) + "\n")
        return out.getvalue()

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-source accounting, JSON-shaped (the profiler report's input)."""
        out: Dict[str, Dict[str, Any]] = {}
        for name, s in self._sampled.items():
            total = s.cycles * s.num_cells
            out[name] = {
                "kind": "sampled",
                "cells": s.num_cells,
                "cycles": s.cycles,
                "busy_cell_cycles": s.busy_cell_cycles,
                "total_cell_cycles": total,
                "busy_fraction": s.busy_cell_cycles / total if total else None,
                "idle_fraction": 1.0 - s.busy_cell_cycles / total if total else None,
                "cell_busy": list(s.cell_busy),
            }
        for name, a in self._activity.items():
            out[name] = {
                "kind": "activity",
                "samples": a.samples,
                "busy": a.busy,
                "total": a.total,
                "busy_fraction": a.busy / a.total if a.total else None,
                "idle_fraction": 1.0 - a.busy / a.total if a.total else None,
            }
        return out
