"""Flight recorder: triggered logic-analyzer capture with post-mortem dumps.

The serving stack can detect that a run corrupted (Shamir/Fermat verify,
Walter bound, chaos bit-flips) but — before this module — kept zero
signal-level evidence of *where in the lattice or when*.  This is the
embedded-logic-analyzer answer an FPGA engineer would reach for:

* a :class:`FlightRecorder` is a bounded **black box**: a ring buffer of
  the last ``pre`` cycles of probe samples, frozen when a trigger fires,
  plus ``post`` cycles of continued capture around the trigger;
* a :class:`TriggerSpec` arms it — a signal predicate (``t==0x1f``,
  ``done changed``), a cycle condition (``cycle==41``, ``cycle in 30:50``)
  or the ``fault`` event the SEU-injection path reports;
* when the window completes, :class:`FlightRecorderHub` (installed on
  ``OBS.flightrec``) emits a :class:`PostMortemBundle` — a VCD of the
  capture window plus JSON context (request id, backend, seed, engine,
  lane, trigger cause) — into a dump directory the serving layer and the
  ``repro postmortem`` CLI can read back.

Samples are whatever the probe layer produces (see
:mod:`repro.hdl.probes`): flat tuples of 0/1 wire values (interpreted
engine), of packed lane words (compiled engine — the recorder keeps the
words and extracts the faulting lane only at emit time), or of
already-assembled integers (behavioral RTL, chip model).  The hot path is
one bounded-deque append per cycle; trigger predicates are only evaluated
when a signal/cycle trigger is armed, and the ``fault`` path costs nothing
until :meth:`FlightRecorder.notify_fault` is called.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ParameterError
from repro.observability.observer import OBS

__all__ = [
    "TriggerSpec",
    "FlightRecorder",
    "CaptureWindow",
    "PostMortemBundle",
    "FlightRecorderHub",
    "armed",
    "find_bundles",
]

_CMP_OPS = ("==", "!=", ">=", "<=")


class TriggerSpec:
    """One parsed trigger expression.

    Grammar (whitespace-insensitive)::

        fault                     -- fires when a fault event is reported
        cycle == N  | cycle >= N | cycle <= N
        cycle in A:B              -- inclusive cycle range
        <signal> == V | != V | >= V | <= V     (V decimal or 0x.. hex)
        <signal> changed          -- value differs from previous cycle

    ``check`` returns a human-readable cause string when the trigger fires
    at this cycle, else ``None``.
    """

    __slots__ = ("kind", "text", "signal", "op", "value", "lo", "hi")

    def __init__(self, kind: str, text: str, signal: str = None, op: str = None,
                 value: int = None, lo: int = None, hi: int = None) -> None:
        self.kind = kind  # "fault" | "cycle" | "signal"
        self.text = text
        self.signal = signal
        self.op = op
        self.value = value
        self.lo = lo
        self.hi = hi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TriggerSpec({self.text!r})"

    @classmethod
    def parse(cls, text: str) -> "TriggerSpec":
        raw = " ".join(str(text).split())
        compact = raw.replace(" ", "")
        if compact == "fault":
            return cls("fault", raw)
        if compact.startswith("cycle"):
            rest = compact[len("cycle"):]
            if rest.startswith("in"):
                span = rest[2:]
                lo, sep, hi = span.partition(":")
                if not sep:
                    raise ParameterError(
                        f"bad cycle range {raw!r}; expected 'cycle in A:B'"
                    )
                return cls("cycle", raw, lo=int(lo, 0), hi=int(hi, 0))
            for op in _CMP_OPS:
                if rest.startswith(op):
                    return cls("cycle", raw, op=op, value=int(rest[len(op):], 0))
            raise ParameterError(f"bad cycle trigger {raw!r}")
        if compact.endswith("changed"):
            sig = raw[: raw.rfind("changed")].strip()
            if not sig:
                raise ParameterError(f"bad trigger {raw!r}: missing signal name")
            return cls("signal", raw, signal=sig, op="changed")
        for op in _CMP_OPS:
            if op in compact:
                sig, _, val = compact.partition(op)
                if not sig or not val:
                    raise ParameterError(f"bad trigger {raw!r}")
                return cls("signal", raw, signal=sig, op=op, value=int(val, 0))
        raise ParameterError(
            f"cannot parse trigger {raw!r}; expected 'fault', 'cycle<op>N', "
            "'cycle in A:B', '<signal><op>V' or '<signal> changed'"
        )

    # ------------------------------------------------------------------
    def _cmp(self, left: int) -> bool:
        if self.op == "==":
            return left == self.value
        if self.op == "!=":
            return left != self.value
        if self.op == ">=":
            return left >= self.value
        return left <= self.value

    def check(
        self,
        cycle: int,
        values: Optional[Dict[str, int]],
        prev: Optional[Dict[str, int]],
    ) -> Optional[str]:
        if self.kind == "cycle":
            if self.op is None:
                hit = self.lo <= cycle <= self.hi
            else:
                hit = self._cmp(cycle)
            return f"{self.text} at cycle {cycle}" if hit else None
        if self.kind == "signal":
            if values is None or self.signal not in values:
                return None
            v = values[self.signal]
            if self.op == "changed":
                if prev is not None and prev.get(self.signal) != v:
                    return f"{self.signal} changed to {v:#x} at cycle {cycle}"
                return None
            if self._cmp(v):
                return f"{self.text} (value {v:#x}) at cycle {cycle}"
            return None
        return None  # "fault" triggers fire via notify_fault only


class CaptureWindow:
    """A frozen, decoded capture window around one trigger."""

    def __init__(
        self,
        cycles: List[int],
        signals: Dict[str, List[int]],
        widths: Dict[str, int],
        trigger_cycle: Optional[int],
        cause: Optional[str],
        lane: int = 0,
    ) -> None:
        self.cycles = list(cycles)
        self.signals = {k: list(v) for k, v in signals.items()}
        self.widths = dict(widths)
        self.trigger_cycle = trigger_cycle
        self.cause = cause
        self.lane = lane

    @property
    def start_cycle(self) -> int:
        return self.cycles[0] if self.cycles else 0

    def value_at(self, name: str, cycle: int) -> Optional[int]:
        try:
            return self.signals[name][self.cycles.index(cycle)]
        except (KeyError, ValueError):
            return None

    # -- rendering ------------------------------------------------------
    def _recorder(self):
        from repro.hdl.waveform import WaveformRecorder  # avoid import cycle

        return WaveformRecorder.from_history(self.signals, self.widths)

    def to_vcd(self, timescale: str = "1 ns") -> str:
        """VCD of the window; times are window-relative (see ``$comment``)."""
        vcd = self._recorder().to_vcd(timescale)
        note = (
            f"$comment flightrec window start_cycle={self.start_cycle} "
            f"trigger_cycle={self.trigger_cycle} lane={self.lane} "
            f"cause={json.dumps(self.cause or '')} $end"
        )
        head, sep, tail = vcd.partition("$enddefinitions $end")
        return head + note + "\n" + sep + tail

    def ascii_diagram(self, names: Sequence[str] = None) -> str:
        body = self._recorder().ascii_diagram(names)
        if self.trigger_cycle is None or self.trigger_cycle not in self.cycles:
            return body
        # A caret line marking the trigger column under the waveforms.
        label_w = max((len(n) for n in (names or self.signals)), default=0) + 1
        col = self.cycles.index(self.trigger_cycle)
        marker = " " * (label_w + col) + "^ trigger"
        return body + "\n" + marker

    # -- (de)serialization ---------------------------------------------
    def to_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "signals": self.signals,
            "widths": self.widths,
            "trigger_cycle": self.trigger_cycle,
            "cause": self.cause,
            "lane": self.lane,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CaptureWindow":
        return cls(
            cycles=d["cycles"],
            signals=d["signals"],
            widths=d["widths"],
            trigger_cycle=d.get("trigger_cycle"),
            cause=d.get("cause"),
            lane=d.get("lane", 0),
        )


class FlightRecorder:
    """Bounded black box over one run: pre/post-trigger sample windows.

    Parameters
    ----------
    names / widths / decoder:
        Probe layout: ``decoder(raw_sample, lane)`` must return a
        ``{name: int}`` mapping (a :meth:`ProbeSet.decode <repro.hdl.\
probes.ProbeSet.decode>` bound method, or equivalent).
    pre / post:
        Window sizes in cycles around the trigger.
    triggers:
        :class:`TriggerSpec` instances (or strings, parsed on the spot).
    lane:
        Lane used for signal-trigger evaluation and default decode.
    fire_on_fault:
        Fire on :meth:`notify_fault` even without an explicit ``fault``
        trigger (the auto-arm path the chaos layer uses).
    ring_stride:
        Pre-trigger decimation: sample the ring every ``ring_stride``-th
        cycle (so ``pre`` samples span ``pre * ring_stride`` cycles).
        Capture turns dense the moment a trigger fires — the post window
        and the trigger-cycle sample are always full rate — which is how
        real flight recorders keep always-on cost low.  Ignored (forced
        to 1) when signal or cycle triggers are armed: those must see
        every cycle or they would fire late.
    """

    def __init__(
        self,
        names: Sequence[str],
        widths: Dict[str, int],
        decoder: Callable[[Sequence[int], int], Dict[str, int]],
        pre: int = 48,
        post: int = 16,
        triggers: Sequence[object] = (),
        lane: int = 0,
        fire_on_fault: bool = True,
        meta: Optional[dict] = None,
        ring_stride: int = 1,
    ) -> None:
        if pre < 1 or post < 0:
            raise ParameterError(f"window needs pre >= 1, post >= 0; got {pre}/{post}")
        if ring_stride < 1:
            raise ParameterError(f"ring_stride must be >= 1, got {ring_stride}")
        self.names = tuple(names)
        self.widths = dict(widths)
        self._decode = decoder
        self.pre = pre
        self.post = post
        self.lane = lane
        self.fire_on_fault = fire_on_fault
        self.meta = dict(meta or {})
        specs = [t if isinstance(t, TriggerSpec) else TriggerSpec.parse(t) for t in triggers]
        self._eval_triggers = [t for t in specs if t.kind != "fault"]
        self._has_fault_trigger = any(t.kind == "fault" for t in specs)
        self._needs_values = any(t.kind == "signal" for t in specs)
        self._ring: deque = deque(maxlen=pre)
        self._post: List[Tuple[int, Sequence[int]]] = []
        self._prev_vals: Optional[Dict[str, int]] = None
        # Signal/cycle triggers must evaluate every cycle; only pure
        # fault-fired black boxes may decimate the pre-trigger ring.
        self.ring_stride = 1 if self._eval_triggers else ring_stride
        self.triggered = False
        self.frozen = False
        self.trigger_cycle: Optional[int] = None
        self.cause: Optional[str] = None
        self.samples_taken = 0

    # ------------------------------------------------------------------
    def wants_sample(self, cycle: int) -> bool:
        """Should the runner bother capturing probes this cycle?

        The per-cycle gate the hot loops check *before* paying for the
        probe capture: ``False`` while frozen and on decimated pre-ring
        cycles.  Always ``True`` from the trigger until the post window
        fills, so the window around the trigger is full rate.
        """
        if self.frozen:
            return False
        if self.triggered or self.ring_stride == 1:
            return True
        return cycle % self.ring_stride == 0

    def sample(self, cycle: int, raw: Sequence[int]) -> None:
        """Record one cycle's probe sample (the per-cycle hot path)."""
        if self.frozen:
            return
        self.samples_taken += 1
        if self.triggered:
            self._post.append((cycle, raw))
            if len(self._post) >= self.post:
                self.frozen = True
            return
        self._ring.append((cycle, raw))
        if self._eval_triggers:
            vals = self._decode(raw, self.lane) if self._needs_values else None
            for t in self._eval_triggers:
                cause = t.check(cycle, vals, self._prev_vals)
                if cause is not None:
                    self._fire(cycle, cause)
                    break
            if vals is not None:
                self._prev_vals = vals

    def notify_fault(self, cycle: int, cause: str, lane: Optional[int] = None) -> None:
        """Report a fault event (SEU injection, detected corruption)."""
        if self.frozen or self.triggered:
            return
        if not (self.fire_on_fault or self._has_fault_trigger):
            return
        if lane is not None:
            self.lane = lane
        self._fire(cycle, cause)

    def _fire(self, cycle: int, cause: str) -> None:
        self.triggered = True
        self.trigger_cycle = cycle
        self.cause = cause
        if self.post == 0:
            self.frozen = True

    # ------------------------------------------------------------------
    def window(self, lane: Optional[int] = None) -> CaptureWindow:
        """Decode the captured window (one lane of it, for lane-word samples)."""
        lane = self.lane if lane is None else lane
        pairs = list(self._ring) + self._post
        cycles = [c for c, _ in pairs]
        hist: Dict[str, List[int]] = {n: [] for n in self.names}
        for _, raw in pairs:
            vals = self._decode(raw, lane)
            for n in self.names:
                hist[n].append(vals[n])
        return CaptureWindow(
            cycles, hist, self.widths, self.trigger_cycle, self.cause, lane
        )


class PostMortemBundle:
    """One emitted dump: JSON context + the decoded capture window."""

    META_FILE = "meta.json"
    WINDOW_FILE = "window.json"
    VCD_FILE = "capture.vcd"

    def __init__(self, meta: dict, window: CaptureWindow) -> None:
        self.meta = dict(meta)
        self.window = window
        self.path: Optional[str] = None

    # ------------------------------------------------------------------
    def write(self, directory: str) -> str:
        """Write ``meta.json`` + ``window.json`` + ``capture.vcd`` into ``directory``."""
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, self.META_FILE), "w") as fh:
            json.dump(self.meta, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        with open(os.path.join(directory, self.WINDOW_FILE), "w") as fh:
            json.dump(self.window.to_dict(), fh)
            fh.write("\n")
        with open(os.path.join(directory, self.VCD_FILE), "w") as fh:
            fh.write(self.window.to_vcd())
        self.path = directory
        return directory

    @classmethod
    def load(cls, path: str) -> "PostMortemBundle":
        """Load a bundle from its directory (or its ``meta.json`` path)."""
        if os.path.isfile(path):
            path = os.path.dirname(path)
        with open(os.path.join(path, cls.META_FILE)) as fh:
            meta = json.load(fh)
        with open(os.path.join(path, cls.WINDOW_FILE)) as fh:
            window = CaptureWindow.from_dict(json.load(fh))
        bundle = cls(meta, window)
        bundle.path = path
        return bundle

    # ------------------------------------------------------------------
    def render(self, signals: Sequence[str] = None, width: int = 0) -> str:
        """Human-readable post-mortem report (the ``repro postmortem`` view)."""
        w = self.window
        lines = ["== post-mortem bundle =="]
        for key in sorted(self.meta):
            lines.append(f"  {key:<16} {self.meta[key]}")
        lines.append(
            f"  window           cycles {w.start_cycle}..{w.cycles[-1] if w.cycles else '-'}"
            f" ({len(w.cycles)} samples), lane {w.lane}"
        )
        if w.trigger_cycle is not None:
            lines.append(f"  trigger          cycle {w.trigger_cycle}: {w.cause}")
        lines.append("")
        lines.append(w.ascii_diagram(signals))
        return "\n".join(lines)


def _bundle_dir_name(meta: dict, seq: int) -> str:
    rid = meta.get("request_id", "none")
    attempt = meta.get("attempt", 0)
    # pid + per-hub sequence keep names unique across worker processes and
    # across several emits in the same millisecond (chip fan-in dumps).
    return (
        f"pm-req{rid}-a{attempt}-p{os.getpid()}-s{seq:03d}"
        f"-{int(time.time() * 1000) % 10**9:09d}"
    )


def find_bundles(dump_dir: str, request_id: object = None) -> List[str]:
    """Bundle directories under ``dump_dir``, newest last.

    ``request_id`` filters to one request's dumps — the cross-process
    lookup the serving parent uses to attach a worker-written bundle to a
    :class:`~repro.errors.FaultDetected`.
    """
    if not dump_dir or not os.path.isdir(dump_dir):
        return []
    prefix = None if request_id is None else f"pm-req{request_id}-a"
    out = []
    for name in sorted(os.listdir(dump_dir)):
        full = os.path.join(dump_dir, name)
        if not os.path.isfile(os.path.join(full, PostMortemBundle.META_FILE)):
            continue
        if prefix is not None and not name.startswith(prefix):
            continue
        out.append(full)
    return out


class FlightRecorderHub:
    """The ``OBS.flightrec`` slot: arming state, context and dump sink.

    The hub owns everything that outlives a single run — the dump
    directory, default window sizes, parsed trigger list, the serving
    context (request id / backend / seed) and the emitted-bundle ledger.
    Engines ask it for a fresh :class:`FlightRecorder` per run via
    :meth:`new_recorder` (``None`` when disarmed — the only cost of a
    disarmed hub) and hand the recorder back through :meth:`emit`.
    """

    def __init__(
        self,
        dump_dir: Optional[str] = None,
        pre: int = 48,
        post: int = 16,
        triggers: Sequence[object] = (),
        max_dumps: int = 32,
        fire_on_fault: bool = True,
        armed: bool = True,
        ring_stride: int = 1,
    ) -> None:
        self.dump_dir = dump_dir
        self.pre = pre
        self.post = post
        self.ring_stride = ring_stride
        self.triggers = [
            t if isinstance(t, TriggerSpec) else TriggerSpec.parse(t) for t in triggers
        ]
        self.max_dumps = max_dumps
        self.fire_on_fault = fire_on_fault
        self.armed = armed
        self.context: Dict[str, object] = {}
        self.dump_paths: List[str] = []
        self.bundles: List[PostMortemBundle] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def set_context(self, **kw: object) -> None:
        """Merge serving context (request_id, backend, seed, attempt, ...)."""
        self.context.update({k: v for k, v in kw.items() if v is not None})

    def clear_context(self) -> None:
        self.context.clear()

    # ------------------------------------------------------------------
    def new_recorder(
        self,
        names: Sequence[str],
        widths: Dict[str, int],
        decoder: Callable[[Sequence[int], int], Dict[str, int]],
        lane: int = 0,
        meta: Optional[dict] = None,
    ) -> Optional[FlightRecorder]:
        """A fresh black box for one run, or ``None`` when disarmed."""
        if not self.armed:
            return None
        return FlightRecorder(
            names,
            widths,
            decoder,
            pre=self.pre,
            post=self.post,
            triggers=self.triggers,
            lane=lane,
            fire_on_fault=self.fire_on_fault,
            meta=meta,
            ring_stride=self.ring_stride,
        )

    def emit(self, recorder: Optional[FlightRecorder], **extra: object) -> Optional[str]:
        """Freeze + dump a triggered recorder; returns the bundle path.

        Untriggered recorders are discarded (returns ``None``).  With no
        ``dump_dir`` the bundle is kept in memory only (``self.bundles``)
        — the CLI path.  Counts ``hdl.flightrec_dumps`` /
        ``hdl.flightrec_samples`` on the installed metrics registry.
        """
        if recorder is None:
            return None
        if OBS.metrics is not None:
            OBS.count("hdl.flightrec_samples", recorder.samples_taken)
        if not recorder.triggered:
            return None
        meta = dict(self.context)
        meta.update(recorder.meta)
        meta.update({k: v for k, v in extra.items() if v is not None})
        window = recorder.window()
        meta.setdefault("trigger_cycle", window.trigger_cycle)
        meta.setdefault("cause", window.cause)
        meta.setdefault("lane", window.lane)
        meta.setdefault("pre", self.pre)
        meta.setdefault("post", self.post)
        meta.setdefault("emitted_at", time.strftime("%Y-%m-%dT%H:%M:%S"))
        bundle = PostMortemBundle(meta, window)
        if len(self.bundles) + self.dropped >= self.max_dumps:
            self.dropped += 1
            if OBS.metrics is not None:
                OBS.count("hdl.flightrec_dumps_dropped")
            return None
        path = None
        if self.dump_dir:
            seq = len(self.bundles) + self.dropped
            path = bundle.write(os.path.join(self.dump_dir, _bundle_dir_name(meta, seq)))
            self.dump_paths.append(path)
        self.bundles.append(bundle)
        if OBS.metrics is not None:
            OBS.count("hdl.flightrec_dumps")
        return path

    # ------------------------------------------------------------------
    @property
    def last_bundle(self) -> Optional[PostMortemBundle]:
        return self.bundles[-1] if self.bundles else None

    def find_bundle(self, request_id: object) -> Optional[str]:
        """Newest bundle path for one request (in-memory, then on disk)."""
        for b in reversed(self.bundles):
            if str(b.meta.get("request_id")) == str(request_id) and b.path:
                return b.path
        found = find_bundles(self.dump_dir, request_id)
        return found[-1] if found else None


@contextmanager
def armed(hub: Optional[FlightRecorderHub]):
    """Install ``hub`` on ``OBS.flightrec`` for the duration of a block.

    Unlike :func:`~repro.observability.observer.observe`, this leaves the
    metrics/tracer/occupancy installation alone — it only swaps the
    flight-recorder slot, so a serving worker can arm a black box around
    one execution without tearing down the session's registry.  A ``None``
    hub makes the block a no-op (the common disarmed path).
    """
    if hub is None:
        yield None
        return
    prev = OBS.flightrec
    OBS.flightrec = hub
    try:
        yield hub
    finally:
        OBS.flightrec = prev
