"""Unified utilization attribution: cycles by phase, lanes, queues, workers.

The profiler is a *reader*: it runs no workload itself.  Given the
:class:`~repro.observability.metrics.MetricsRegistry` and
:class:`~repro.observability.occupancy.OccupancyRecorder` a profiled run
filled in, it answers three questions in one report:

* **Where did the simulated cycles go?**  Phase attribution over the
  exponentiator's per-operation histogram — precompute (into the
  Montgomery domain), MMM waves (squares + multiplies), drain (the final
  ``Mont(A, 1)``).
* **How full was the hardware?**  Per-source occupancy (array cells, lane
  fill) against the analytic ``2i+j`` model.
* **Where did wall time go in serving?**  Queue wait, execution, and
  verification overhead, with per-worker busy totals.

:func:`export_utilization_gauges` additionally folds the headline numbers
into plain gauges (``hdl.idle_fraction``, ``serving.lane_fill_p50``, and
the chip-health trio ``chip.tile_busy_fraction`` / ``chip.fifo_depth_p95``
/ ``chip.waves_in_flight``) so snapshot files carry them and ``repro obs
diff --require`` can gate floors on them — the requirements engine sums
counter/gauge values but cannot evaluate histogram percentiles.

``repro profile`` wires a workload to this module; see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.observability.metrics import MetricsRegistry
from repro.observability.occupancy import OccupancyRecorder, analytic_idle_fraction

__all__ = [
    "attribute_cycles",
    "attribute_overload",
    "attribute_serving",
    "export_utilization_gauges",
    "render_report",
]

#: Gauge code -> shard health state name (mirrors serving.health's order;
#: kept literal so the observability layer does not import serving).
_HEALTH_NAMES = {0: "healthy", 1: "degraded", 2: "draining", 3: "dead"}

#: Exponentiator operation kinds -> report phase names.
_PHASES = (
    ("precompute", ("pre",)),
    ("mmm-squares", ("square",)),
    ("mmm-multiplies", ("multiply", "window-op")),
    ("drain", ("post",)),
)


def _hist_sum(registry: MetricsRegistry, name: str, **labels: Any) -> float:
    if name not in registry:
        return 0.0
    agg = registry.histogram(name).aggregate(**labels)
    return agg.sum if agg is not None else 0.0


def _hist_count(registry: MetricsRegistry, name: str, **labels: Any) -> int:
    if name not in registry:
        return 0
    agg = registry.histogram(name).aggregate(**labels)
    return agg.count if agg is not None else 0


def _hist_percentile(
    registry: MetricsRegistry, name: str, q: float, **labels: Any
) -> Optional[float]:
    if name not in registry:
        return None
    return registry.histogram(name).percentile(q, **labels)


def attribute_cycles(registry: MetricsRegistry) -> Dict[str, Any]:
    """Simulated-cycle attribution by exponentiation phase.

    Reads ``exponentiator.operation_cycles{kind=...}``; returns phase
    name -> ``{"cycles", "operations", "fraction"}`` plus a ``"total"``
    entry.  Phases absent from the run report zeros.
    """
    phases: Dict[str, Any] = {}
    total = 0.0
    for phase, kinds in _PHASES:
        cycles = sum(
            _hist_sum(registry, "exponentiator.operation_cycles", kind=k)
            for k in kinds
        )
        ops = sum(
            _hist_count(registry, "exponentiator.operation_cycles", kind=k)
            for k in kinds
        )
        phases[phase] = {"cycles": cycles, "operations": ops}
        total += cycles
    for row in phases.values():
        row["fraction"] = row["cycles"] / total if total else 0.0
    phases["total"] = {"cycles": total}
    return phases


def attribute_serving(registry: MetricsRegistry) -> Dict[str, Any]:
    """Serving wall-time attribution: queue wait, execution, verify overhead.

    All figures in microseconds, summed across backends/workers; the
    per-worker section reads the ``serving.worker_busy_us`` counter so each
    worker's busy share is visible individually.
    """
    queue_wait = _hist_sum(registry, "serving.queue_wait_us")
    execution = _hist_sum(registry, "serving.request_wall_us")
    verify = _hist_sum(registry, "serving.verify_wall_us")
    workers: Dict[str, float] = {}
    if "serving.worker_busy_us" in registry:
        for row in registry.counter("serving.worker_busy_us").snapshot():
            worker = row["labels"].get("worker", "?")
            workers[worker] = workers.get(worker, 0.0) + row["value"]
    # Sharded data plane: the pool exports one gauge sample per shard;
    # folded into {shard: {field: value}} so the report (and `repro
    # profile --json` consumers) see each shard's health individually.
    shards: Dict[str, Dict[str, float]] = {}
    for metric, field in (
        ("serving.shard_busy_fraction", "busy_fraction"),
        ("serving.shard_queue_depth", "queue_depth"),
        ("serving.shard_cache_hit_rate", "cache_hit_rate"),
        ("serving.shard_health", "health"),
    ):
        if metric in registry:
            for row in registry.gauge(metric).snapshot():
                sid = row["labels"].get("shard", "?")
                shards.setdefault(sid, {})[field] = row["value"]
    total = queue_wait + execution + verify
    return {
        "queue_wait_us": queue_wait,
        "execution_us": execution,
        "verify_us": verify,
        "total_us": total,
        "queue_wait_p50_us": _hist_percentile(registry, "serving.queue_wait_us", 50),
        "workers": workers,
        "shards": {sid: shards[sid] for sid in sorted(shards)},
        "overload": attribute_overload(registry),
    }


def _counter_by_label(
    registry: MetricsRegistry, name: str, label: str
) -> Dict[str, float]:
    """Counter totals keyed by one label's values (missing metric = {})."""
    out: Dict[str, float] = {}
    if name in registry:
        for row in registry.counter(name).snapshot():
            key = row["labels"].get(label, "?")
            out[key] = out.get(key, 0.0) + row["value"]
    return out


def attribute_overload(registry: MetricsRegistry) -> Dict[str, Any]:
    """Overload-ladder attribution: shedding, hedging, deadlines, brownout.

    Everything the graceful-degradation layer emits, folded into one
    dict so ``repro top`` / ``repro profile`` can show at a glance *how*
    the service degraded: what was shed and why, how many stragglers
    were hedged (and which copy won), which deadlines were missed and
    where in the lifecycle, and the current brownout level.
    """
    gauges = {}
    for name, key in (
        ("serving.brownout_level", "brownout_level"),
        ("serving.admission_level", "admission_level"),
    ):
        if name in registry:
            rows = registry.gauge(name).snapshot()
            if rows:
                gauges[key] = rows[0]["value"]
    return {
        "shed_by_reason": _counter_by_label(
            registry, "serving.shed_requests", "reason"
        ),
        "shed_by_class": _counter_by_label(
            registry, "serving.shed_requests", "class"
        ),
        "hedges_fired": (
            registry.counter("serving.hedges_fired").total()
            if "serving.hedges_fired" in registry
            else 0.0
        ),
        "hedge_wins": _counter_by_label(
            registry, "serving.hedge_wins", "winner"
        ),
        "deadline_expired": _counter_by_label(
            registry, "serving.deadline_expired", "where"
        ),
        "deadline_violations": _counter_by_label(
            registry, "serving.deadline_violations", "class"
        ),
        **gauges,
    }


def export_utilization_gauges(
    registry: MetricsRegistry, occupancy: Optional[OccupancyRecorder] = None
) -> None:
    """Fold headline utilization figures into gauges on ``registry``.

    Written so ``repro obs diff --require 'hdl.idle_fraction>=...'`` /
    ``'serving.lane_fill_p50>=...'`` can gate them from a snapshot file
    (the requirements engine cannot reach inside histograms).
    """
    if occupancy is not None:
        # The headline hdl.idle_fraction gauge stays single-series (no
        # labels) so `--require 'hdl.idle_fraction>=X'` gates exactly one
        # number; the per-source breakdown gets its own labelled gauge.
        primary = occupancy.idle_fraction("array")
        if primary is None:
            primary = occupancy.idle_fraction("gate")
        if primary is not None:
            registry.gauge("hdl.idle_fraction").set(primary)
            registry.gauge("hdl.busy_fraction").set(1.0 - primary)
        for source in occupancy.sources():
            idle = occupancy.idle_fraction(source)
            if idle is not None:
                registry.gauge("hdl.occupancy_idle_fraction").set(
                    idle, source=source
                )
        # Chip health: the chip.tiles track carries one busy bit per tile
        # per chip cycle, so its per-"cell" busy fractions are per-tile
        # utilization.  Exported flat for `repro top` and CI floors.
        tile_fracs = occupancy.cell_busy_fractions("chip.tiles")
        if tile_fracs:
            registry.gauge("chip.tile_busy_fraction").set(
                sum(tile_fracs) / len(tile_fracs)
            )
            for i, frac in enumerate(tile_fracs):
                registry.gauge("chip.tile_busy").set(frac, tile=str(i))
    fifo_p95 = _hist_percentile(registry, "chip.fifo_depth", 95)
    if fifo_p95 is not None:
        registry.gauge("chip.fifo_depth_p95").set(fifo_p95)
    waves = (
        registry.histogram("chip.waves").aggregate()
        if "chip.waves" in registry
        else None
    )
    if waves is not None and waves.count:
        registry.gauge("chip.waves_in_flight").set(waves.sum / waves.count)
    p50 = _hist_percentile(registry, "hdl.lane_fill", 50)
    if p50 is not None:
        registry.gauge("serving.lane_fill_p50").set(p50)
    agg = (
        registry.histogram("hdl.lane_fill").aggregate()
        if "hdl.lane_fill" in registry
        else None
    )
    if agg is not None and agg.count:
        registry.gauge("serving.lane_fill_mean").set(agg.sum / agg.count)
    wait_p50 = _hist_percentile(registry, "serving.queue_wait_us", 50)
    if wait_p50 is not None:
        registry.gauge("serving.queue_wait_p50_us").set(wait_p50)


def render_report(
    registry: MetricsRegistry,
    occupancy: Optional[OccupancyRecorder] = None,
    *,
    l: Optional[int] = None,
    mode: str = "corrected",
    heatmap_source: Optional[str] = "array",
    width: int = 72,
) -> str:
    """The unified attribution report ``repro profile`` prints.

    Sections: cycle attribution by phase, occupancy per source (with the
    analytic ``2i+j`` reference when ``l`` is given), lane fill, serving
    wall-time attribution, and the array heatmap.
    """
    lines: List[str] = ["=== utilization profile ==="]

    phases = attribute_cycles(registry)
    total = phases["total"]["cycles"]
    if total:
        lines.append("")
        lines.append("cycles by phase:")
        for phase, _ in _PHASES:
            row = phases[phase]
            lines.append(
                f"  {phase:<15} {int(row['cycles']):>12} cycles "
                f"({row['fraction']:6.1%})  ops={row['operations']}"
            )
        lines.append(f"  {'total':<15} {int(total):>12} cycles")

    if occupancy is not None and occupancy.sources():
        lines.append("")
        lines.append("occupancy by source:")
        for source in occupancy.sources():
            idle = occupancy.idle_fraction(source)
            if idle is None:
                continue
            note = ""
            if l is not None and source in ("array", "gate"):
                model = analytic_idle_fraction(l, mode)
                note = f"  (2i+j model: {model:.1%}, delta {idle - model:+.2%})"
            lines.append(f"  {source:<18} idle {idle:6.1%}{note}")

    fills = _hist_count(registry, "hdl.lane_fill")
    if fills:
        agg = registry.histogram("hdl.lane_fill").aggregate()
        p50 = _hist_percentile(registry, "hdl.lane_fill", 50)
        wasted = (
            registry.counter("hdl.wasted_lane_cycles").total()
            if "hdl.wasted_lane_cycles" in registry
            else 0
        )
        lines.append("")
        lines.append("lane fill (lanes used per bit-sliced sweep):")
        lines.append(
            f"  sweeps={fills} mean={agg.sum / agg.count:.1f} "
            f"p50={p50:g} min={agg.min:g} max={agg.max:g} "
            f"wasted_lane_cycles={int(wasted)}"
        )

    tile_fracs = (
        occupancy.cell_busy_fractions("chip.tiles") if occupancy is not None else []
    )
    if tile_fracs:
        lines.append("")
        lines.append("chip health:")
        mean_busy = sum(tile_fracs) / len(tile_fracs)
        lines.append(
            f"  tiles={len(tile_fracs)} busy mean {mean_busy:6.1%}  "
            + "  ".join(f"tile{i}={f:.1%}" for i, f in enumerate(tile_fracs))
        )
        waves = (
            registry.histogram("chip.waves").aggregate()
            if "chip.waves" in registry
            else None
        )
        if waves is not None and waves.count:
            lines.append(
                f"  waves in flight: mean {waves.sum / waves.count:.2f} "
                f"max {waves.max:g}"
            )
        fifo_p95 = _hist_percentile(registry, "chip.fifo_depth", 95)
        if fifo_p95 is not None:
            lines.append(f"  fifo depth p95: {fifo_p95:.1f}")
        lines.append("")
        lines.append(occupancy.heatmap("chip.tiles", width=width, unit="tile"))

    serving = attribute_serving(registry)
    if serving["total_us"]:
        lines.append("")
        lines.append("serving wall time:")
        for key, label in (
            ("queue_wait_us", "queue wait"),
            ("execution_us", "execution"),
            ("verify_us", "verify overhead"),
        ):
            us = serving[key]
            frac = us / serving["total_us"]
            lines.append(f"  {label:<15} {us / 1000:>10.2f} ms ({frac:6.1%})")
        if serving["workers"]:
            lines.append("  busy by worker:")
            for worker in sorted(serving["workers"]):
                lines.append(
                    f"    {worker:<20} {serving['workers'][worker] / 1000:>10.2f} ms"
                )
    if serving["shards"]:
        lines.append("")
        lines.append("shards (modulus-homed data plane):")
        for sid, row in serving["shards"].items():
            health = ""
            if "health" in row:
                health = f"  health {_HEALTH_NAMES.get(int(row['health']), '?')}"
            lines.append(
                "  shard{:<4} busy {:>6.1%}  queue {:>4.0f}  "
                "cache hit {:>6.1%}{}".format(
                    sid,
                    row.get("busy_fraction", 0.0),
                    row.get("queue_depth", 0.0),
                    row.get("cache_hit_rate", 0.0),
                    health,
                )
            )

    overload = serving["overload"]
    shed_total = sum(overload["shed_by_reason"].values())
    degraded = (
        shed_total
        or overload["hedges_fired"]
        or overload["deadline_expired"]
        or overload["deadline_violations"]
        or overload.get("brownout_level")
    )
    if degraded:
        lines.append("")
        lines.append("overload & degradation:")
        if shed_total:
            by_reason = "  ".join(
                f"{reason}={int(count)}"
                for reason, count in sorted(overload["shed_by_reason"].items())
            )
            by_class = "  ".join(
                f"{cls}={int(count)}"
                for cls, count in sorted(overload["shed_by_class"].items())
            )
            lines.append(f"  shed {int(shed_total)}  by reason: {by_reason}")
            lines.append(f"  {'':<5}by class:  {by_class}")
        if overload["hedges_fired"]:
            wins = overload["hedge_wins"]
            lines.append(
                f"  hedges fired {int(overload['hedges_fired'])}  "
                f"won by hedge {int(wins.get('hedge', 0))}  "
                f"by primary {int(wins.get('primary', 0))}"
            )
        if overload["deadline_expired"]:
            detail = "  ".join(
                f"{where}={int(count)}"
                for where, count in sorted(overload["deadline_expired"].items())
            )
            lines.append(f"  deadlines expired: {detail}")
        if overload["deadline_violations"]:
            detail = "  ".join(
                f"{cls}={int(count)}"
                for cls, count in sorted(overload["deadline_violations"].items())
            )
            lines.append(f"  completed late (violations): {detail}")
        if "brownout_level" in overload:
            lines.append(f"  brownout level: {int(overload['brownout_level'])}")

    if occupancy is not None and heatmap_source is not None:
        if occupancy.cycles(heatmap_source):
            lines.append("")
            lines.append(occupancy.heatmap(heatmap_source, width=width))

    return "\n".join(lines) + "\n"
