"""Observability layer: metrics registry, span tracer, global hook point.

Three pieces, designed to be used together but separable:

* :class:`MetricsRegistry` (:mod:`repro.observability.metrics`) —
  counters / gauges / histograms with labels and JSON snapshots;
* :class:`SpanTracer` (:mod:`repro.observability.trace`) — a nested-span
  timeline over a simulated-cycle clock, exported as Chrome trace-event
  JSON for Perfetto / ``chrome://tracing``;
* :data:`OBS` + :func:`observe` (:mod:`repro.observability.observer`) —
  the process-wide hook point the instrumented simulators report through,
  a no-op unless a session is installed.

See ``docs/OBSERVABILITY.md`` for the hook-point inventory and a guided
tour, and ``examples/trace_exponentiation.py`` for an end-to-end run.
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.observer import OBS, Observer, observe
from repro.observability.trace import (
    CycleClock,
    SpanTracer,
    TRACE_DETAILS,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS",
    "Observer",
    "observe",
    "CycleClock",
    "SpanTracer",
    "TRACE_DETAILS",
    "validate_chrome_trace",
]
