"""Observability layer: metrics registry, span tracer, global hook point.

Three pieces, designed to be used together but separable:

* :class:`MetricsRegistry` (:mod:`repro.observability.metrics`) —
  counters / gauges / histograms with labels and JSON snapshots;
* :class:`SpanTracer` (:mod:`repro.observability.trace`) — a nested-span
  timeline over a simulated-cycle clock, exported as Chrome trace-event
  JSON for Perfetto / ``chrome://tracing``;
* :data:`OBS` + :func:`observe` (:mod:`repro.observability.observer`) —
  the process-wide hook point the instrumented simulators report through,
  a no-op unless a session is installed;
* :class:`TraceContext` / :class:`WorkerTelemetry`
  (:mod:`repro.observability.context`) — request-scoped propagation of
  the session across process boundaries, merged back via
  :meth:`MetricsRegistry.merge` and :meth:`SpanTracer.adopt_span`;
* :func:`diff_snapshots` (:mod:`repro.observability.baseline`) — the
  snapshot-vs-baseline regression gate behind ``repro obs diff``;
* :class:`OccupancyRecorder` + the analytic ``2i+j`` model
  (:mod:`repro.observability.occupancy`) — per-cell busy/idle sampling
  for the systolic array and lane-fill accounting for the bit-sliced
  engines;
* the utilization profiler (:mod:`repro.observability.profiler`) —
  phase/occupancy/queue attribution behind ``repro profile``.

See ``docs/OBSERVABILITY.md`` for the hook-point inventory and a guided
tour, and ``examples/trace_exponentiation.py`` for an end-to-end run.
"""

from repro.observability.baseline import (
    DEFAULT_IGNORE,
    check_requirements,
    diff_snapshots,
    load_snapshot,
)
from repro.observability.context import (
    TraceContext,
    WorkerTelemetry,
    capture,
    worker_label,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.flightrec import (
    CaptureWindow,
    FlightRecorder,
    FlightRecorderHub,
    PostMortemBundle,
    TriggerSpec,
    find_bundles,
)
from repro.observability.flightrec import armed as flightrec_armed
from repro.observability.observer import OBS, Observer, observe
from repro.observability.occupancy import (
    OccupancyRecorder,
    analytic_idle_fraction,
    schedule_busy_mask,
)
from repro.observability.profiler import (
    attribute_cycles,
    attribute_serving,
    export_utilization_gauges,
    render_report,
)
from repro.observability.trace import (
    CycleClock,
    REQUEST_SPAN,
    SpanTracer,
    TRACE_DETAILS,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS",
    "Observer",
    "observe",
    "CaptureWindow",
    "FlightRecorder",
    "FlightRecorderHub",
    "PostMortemBundle",
    "TriggerSpec",
    "find_bundles",
    "flightrec_armed",
    "OccupancyRecorder",
    "analytic_idle_fraction",
    "schedule_busy_mask",
    "attribute_cycles",
    "attribute_serving",
    "export_utilization_gauges",
    "render_report",
    "CycleClock",
    "SpanTracer",
    "TRACE_DETAILS",
    "REQUEST_SPAN",
    "validate_chrome_trace",
    "TraceContext",
    "WorkerTelemetry",
    "capture",
    "worker_label",
    "DEFAULT_IGNORE",
    "check_requirements",
    "diff_snapshots",
    "load_snapshot",
]
