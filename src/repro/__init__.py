"""repro — reproduction of "Hardware Implementation of a Montgomery
Modular Multiplier in a Systolic Array" (Örs, Batina, Preneel,
Vandewalle; IPPS/IPDPS-RAW 2003).

Public API tour
---------------
Algorithm level (golden models)::

    from repro import MontgomeryContext, montgomery_no_subtraction
    ctx = MontgomeryContext(modulus)          # fixes R = 2^(l+2) > 4N
    t = montgomery_no_subtraction(ctx, x, y)  # x*y*R^-1, window [0, 2N)

Cycle-accurate hardware::

    from repro import MMMC, ModularExponentiator
    run = MMMC(ctx.l).multiply(x, y, ctx.modulus)   # run.cycles == 3l+5
    exp = ModularExponentiator(ctx, engine="rtl")
    r = exp.exponentiate(message, exponent)

FPGA implementation model (Tables 1-2)::

    from repro.fpga import table1_rows, table2_rows

Applications::

    from repro.rsa import generate_keypair, RSACipher
    from repro.ecc import NIST_P192, AffinePoint, scalar_multiply

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.errors import (
    ReproError,
    ParameterError,
    HardwareModelError,
    SimulationError,
    ProtocolError,
)
from repro.montgomery import (
    MontgomeryContext,
    MontgomeryDomain,
    montgomery_no_subtraction,
    montgomery_with_subtraction,
    montgomery_trace,
    montgomery_modexp,
)
from repro.observability import (
    MetricsRegistry,
    SpanTracer,
    observe,
)
from repro.systolic import (
    SystolicArrayRTL,
    MMMC,
    ModularExponentiator,
    mmm_cycles,
    exponentiation_cycle_bounds,
    average_exponentiation_cycles,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ParameterError",
    "HardwareModelError",
    "SimulationError",
    "ProtocolError",
    "MontgomeryContext",
    "MontgomeryDomain",
    "montgomery_no_subtraction",
    "montgomery_with_subtraction",
    "montgomery_trace",
    "montgomery_modexp",
    "MetricsRegistry",
    "SpanTracer",
    "observe",
    "SystolicArrayRTL",
    "MMMC",
    "ModularExponentiator",
    "mmm_cycles",
    "exponentiation_cycle_bounds",
    "average_exponentiation_cycles",
    "__version__",
]
