"""RSA key generation with the paper's conventions (Section 4.5).

The private key is ``(p, q, D)``, the public key ``(N = p·q, E)`` with
``E = D^{-1} mod lcm(p-1, q-1)`` — the Carmichael-function convention the
paper states.  The modulus is guaranteed odd (trivially) and of the exact
requested bit length so it slots into an ``l``-bit multiplier without
re-sizing.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.rsa.primes import generate_prime
from repro.utils.validation import ensure_positive

__all__ = ["RSAKeyPair", "generate_keypair"]


@dataclass(frozen=True)
class RSAKeyPair:
    """One RSA key pair plus the factors needed for CRT decryption."""

    modulus: int
    public_exponent: int
    private_exponent: int
    p: int
    q: int

    @property
    def bits(self) -> int:
        return self.modulus.bit_length()

    @property
    def carmichael(self) -> int:
        return math.lcm(self.p - 1, self.q - 1)

    # CRT constants (standard RSA-CRT decryption: ~4x fewer cycle-weighted
    # multiplications than a full-width exponentiation).
    @property
    def d_p(self) -> int:
        return self.private_exponent % (self.p - 1)

    @property
    def d_q(self) -> int:
        return self.private_exponent % (self.q - 1)

    @property
    def q_inv(self) -> int:
        return pow(self.q, -1, self.p)


def generate_keypair(
    bits: int, rng: random.Random, public_exponent: int = 65537
) -> RSAKeyPair:
    """Generate an RSA key pair with an exactly ``bits``-bit modulus.

    ``public_exponent`` must be odd and > 2; if it shares a factor with
    ``lcm(p-1, q-1)`` new primes are drawn (the standard retry loop).
    """
    ensure_positive("bits", bits)
    if bits < 6:
        raise ParameterError(f"modulus needs at least 6 bits, got {bits}")
    if public_exponent < 3 or public_exponent % 2 == 0:
        raise ParameterError(f"public exponent must be odd >= 3, got {public_exponent}")
    half = bits // 2
    for _ in range(1000):
        p = generate_prime(bits - half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        lam = math.lcm(p - 1, q - 1)
        if math.gcd(public_exponent, lam) != 1:
            continue
        d = pow(public_exponent, -1, lam)
        if d <= 1:
            continue
        return RSAKeyPair(
            modulus=n,
            public_exponent=public_exponent,
            private_exponent=d,
            p=max(p, q),
            q=min(p, q),
        )
    raise ParameterError(f"could not generate a {bits}-bit key pair")
