"""RSA encryption/decryption/signing through the hardware exponentiator.

:class:`RSACipher` binds a key pair to
:class:`~repro.systolic.exponentiator.ModularExponentiator` instances, so
every RSA operation runs the exact multiplication schedule the paper's
circuit would, with measured cycle counts.

Two decryption paths are provided:

* **direct** — one full-width exponentiation, the paper's configuration;
* **CRT** — two half-width exponentiations plus recombination, the
  standard speedup (the half-width multiplier runs ``(3(l/2)+4)``-cycle
  multiplications, so CRT costs roughly a quarter of the cycle-weighted
  work) — exercised by the CRT ablation benchmark.

Messages are integers in ``[0, N)``; padding schemes are outside the
paper's scope (it evaluates raw modular exponentiation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.errors import ParameterError
from repro.montgomery.params import precompute_montgomery_constants
from repro.rsa.keygen import RSAKeyPair
from repro.systolic.exponentiator import ModularExponentiator

__all__ = ["RSACipher", "RSAOperation"]


@dataclass(frozen=True)
class RSAOperation:
    """Result of one RSA primitive: the value plus the measured cycles."""

    value: int
    cycles: int
    multiplications: int


class RSACipher:
    """RSA primitives over the systolic exponentiator model.

    Parameters
    ----------
    key:
        The key pair (public operations need only modulus/E).
    engine:
        ``"golden"`` (default; big-int multiplications with exact RTL
        cycle accounting — practical at RSA sizes) or ``"rtl"`` (full
        cycle-accurate hardware model; practical for small/demo keys).
    """

    def __init__(self, key: RSAKeyPair, engine: Literal["rtl", "golden"] = "golden"):
        self.key = key
        self.engine = engine
        # The cached constants are shared with every other consumer of the
        # same modulus (notably the serving layer's batch scheduler).
        self._exp = ModularExponentiator(
            precompute_montgomery_constants(key.modulus), engine
        )
        self._exp_p = ModularExponentiator(precompute_montgomery_constants(key.p), engine)
        self._exp_q = ModularExponentiator(precompute_montgomery_constants(key.q), engine)

    # ------------------------------------------------------------------
    def _check_message(self, m: int) -> int:
        if not 0 <= m < self.key.modulus:
            raise ParameterError(
                f"message must be in [0, N); got {m} for N={self.key.modulus}"
            )
        return m

    def encrypt(self, message: int) -> RSAOperation:
        """``C = M^E mod N`` through the exponentiator."""
        self._check_message(message)
        run = self._exp.exponentiate(message, self.key.public_exponent)
        return RSAOperation(run.result, run.cycles, run.num_multiplications)

    def decrypt(self, ciphertext: int) -> RSAOperation:
        """``M = C^D mod N`` — one full-width exponentiation."""
        self._check_message(ciphertext)
        run = self._exp.exponentiate(ciphertext, self.key.private_exponent)
        return RSAOperation(run.result, run.cycles, run.num_multiplications)

    def decrypt_crt(self, ciphertext: int) -> RSAOperation:
        """CRT decryption: two half-width exponentiations + recombination.

        Garner recombination: ``h = q_inv·(m_p - m_q) mod p``,
        ``M = m_q + h·q``.  The recombination multiply is done host-side
        (it is one multiplication; a real device would reuse the
        multiplier), so the cycle count reported is the two
        exponentiations — the dominant term.
        """
        self._check_message(ciphertext)
        key = self.key

        def half(exp_engine, prime: int, d_half: int):
            c = ciphertext % prime
            if d_half == 0:
                # (p-1) | D — only reachable with toy keys; m^0 = 1 for
                # invertible m, 0 for m = 0.  No multiplier cycles needed.
                class _Zero:
                    result = 1 % prime if c else 0
                    cycles = 0
                    num_multiplications = 0

                return _Zero()
            return exp_engine.exponentiate(c, d_half)

        run_p = half(self._exp_p, key.p, key.d_p)
        run_q = half(self._exp_q, key.q, key.d_q)
        h = (key.q_inv * (run_p.result - run_q.result)) % key.p
        m = run_q.result + h * key.q
        return RSAOperation(
            m,
            run_p.cycles + run_q.cycles,
            run_p.num_multiplications + run_q.num_multiplications,
        )

    def sign(self, message: int) -> RSAOperation:
        """Textbook RSA signature: ``S = M^D mod N``."""
        return self.decrypt(message)

    def verify(self, message: int, signature: int) -> bool:
        """Check ``S^E ≡ M (mod N)``."""
        self._check_message(message)
        return self.encrypt(signature).value == message

    @property
    def total_cycles(self) -> int:
        """Cycles consumed across all operations on all three exponentiators."""
        return self._exp.cycles + self._exp_p.cycles + self._exp_q.cycles
