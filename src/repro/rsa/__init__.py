"""RSA over the systolic Montgomery exponentiator (paper Section 4.5).

* :mod:`repro.rsa.primes` — Miller–Rabin primality and prime generation.
* :mod:`repro.rsa.keygen` — key generation with the paper's
  ``E·D ≡ 1 (mod lcm(p-1, q-1))`` convention.
* :mod:`repro.rsa.cipher` — encrypt/decrypt/sign/verify through the
  hardware exponentiator model, with optional CRT decryption.
"""

from repro.rsa.primes import is_probable_prime, generate_prime
from repro.rsa.keygen import RSAKeyPair, generate_keypair
from repro.rsa.cipher import RSACipher

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "RSAKeyPair",
    "generate_keypair",
    "RSACipher",
]
