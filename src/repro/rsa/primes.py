"""Primality testing and prime generation.

Miller–Rabin with the deterministic witness sets that make the test exact
for all 64-bit inputs, falling back to random witnesses above that; a
small-prime sieve screens candidates first.  All randomness flows through
a caller-supplied :class:`random.Random`, so key generation is
reproducible in tests and benchmarks.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ParameterError
from repro.utils.validation import ensure_positive

__all__ = ["is_probable_prime", "generate_prime", "SMALL_PRIMES"]

# Primes below 1000, for candidate sieving.
SMALL_PRIMES = tuple(
    p
    for p in range(2, 1000)
    if all(p % q for q in range(2, int(p**0.5) + 1))
)

# Deterministic Miller-Rabin witness set, exact for n < 3.3 * 10^24
# (Sorenson & Webster).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_DETERMINISTIC_LIMIT = 3317044064679887385961981


def _miller_rabin_witness(n: int, a: int) -> bool:
    """True iff ``a`` witnesses that odd ``n`` is composite."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(
    n: int, rounds: int = 40, rng: Optional[random.Random] = None
) -> bool:
    """Miller–Rabin primality test.

    Deterministic (exact) for ``n`` below ~3.3e24; otherwise ``rounds``
    random witnesses give error probability below ``4^-rounds``.
    """
    if not isinstance(n, int) or isinstance(n, bool):
        raise ParameterError("n must be an int")
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if n < _DETERMINISTIC_LIMIT:
        return not any(_miller_rabin_witness(n, a) for a in _DETERMINISTIC_WITNESSES)
    rng = rng or random.Random()
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        if _miller_rabin_witness(n, a):
            return False
    return True


def generate_prime(
    bits: int, rng: random.Random, *, max_attempts: int = 100000
) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    Candidates are odd with the top bit forced, sieved by the small-prime
    table before Miller–Rabin.
    """
    ensure_positive("bits", bits)
    if bits < 2:
        raise ParameterError(f"primes need at least 2 bits, got {bits}")
    for _ in range(max_attempts):
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if candidate.bit_length() != bits:
            continue
        if is_probable_prime(candidate, rng=rng):
            return candidate
    raise ParameterError(f"no {bits}-bit prime found in {max_attempts} attempts")
