"""Virtex-E implementation model — the substitute for the Xilinx toolchain.

The paper reports slice counts and clock periods from synthesis/place-and-
route on a Xilinx V812E-BG-560-8.  We cannot run that toolchain, so this
package models the two quantities from first principles on our elaborated
netlists:

* :mod:`repro.fpga.virtex` — the device model: slice = 2 LUT4 + 2 FF,
  datasheet-class delay constants, carry-chain primitives.
* :mod:`repro.fpga.techmap` — LUT4 covering of a gate netlist + slice
  packing; arithmetic ripple chains (counter/comparator) are mapped onto
  the dedicated carry logic, as real synthesis does.
* :mod:`repro.fpga.timing_model` — critical-path clock period: the paper's
  claim is that the path is one regular cell (``2·T_FA + T_HA``),
  *independent of l*; we verify it by measuring the mapped depth.
* :mod:`repro.fpga.report` — regenerates the rows of Table 1 and Table 2.
* :mod:`repro.fpga.calibration` — the paper's reported numbers, kept as
  comparison data only (never fed back into the model).
"""

from repro.fpga.virtex import VirtexEDevice
from repro.fpga.techmap import TechMapResult, technology_map
from repro.fpga.timing_model import TimingReport, estimate_clock_period
from repro.fpga.report import table1_rows, table2_rows, implementation_report

__all__ = [
    "VirtexEDevice",
    "TechMapResult",
    "technology_map",
    "TimingReport",
    "estimate_clock_period",
    "table1_rows",
    "table2_rows",
    "implementation_report",
]
