"""The paper's reported evaluation numbers (Tables 1 and 2).

Kept here as **comparison data only**: nothing in the implementation model
reads these values — they exist so the benchmarks and EXPERIMENTS.md can
print paper-vs-measured side by side.

Table 2: number of slices S, clock period Tp (ns), time-area product
TA (S·ns) and time for one MMM (µs) on the Xilinx V812E-BG-560-8.
Table 1: Tp (ns) and average modular-exponentiation time (ms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Table1Row", "Table2Row", "PAPER_TABLE1", "PAPER_TABLE2"]


@dataclass(frozen=True)
class Table1Row:
    l: int
    tp_ns: float
    avg_exp_ms: float


@dataclass(frozen=True)
class Table2Row:
    l: int
    slices: int
    tp_ns: float
    ta_slice_ns: float
    t_mmm_us: float


PAPER_TABLE1: Dict[int, Table1Row] = {
    r.l: r
    for r in (
        Table1Row(32, 9.256, 0.046),
        Table1Row(128, 10.242, 0.775),
        Table1Row(256, 9.956, 2.974),
        Table1Row(512, 10.501, 12.468),
        Table1Row(1024, 10.458, 49.508),
    )
}

PAPER_TABLE2: Dict[int, Table2Row] = {
    r.l: r
    for r in (
        Table2Row(32, 225, 9.256, 2082.6, 0.926),
        Table2Row(64, 418, 9.221, 3854.38, 1.807),
        Table2Row(128, 806, 10.242, 8255.05, 3.974),
        Table2Row(256, 1548, 9.956, 15411.88, 7.686),
        Table2Row(512, 2972, 10.501, 31208.97, 16.171),
        Table2Row(1024, 5706, 10.458, 59673.35, 32.168),
    )
}


def table1_bit_lengths() -> Tuple[int, ...]:
    return tuple(sorted(PAPER_TABLE1))


def table2_bit_lengths() -> Tuple[int, ...]:
    return tuple(sorted(PAPER_TABLE2))
