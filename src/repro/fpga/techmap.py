"""Technology mapping: gate netlist → Virtex-E LUT4s and slices.

The mapper implements classic **cut-based depth-optimal k-LUT mapping**
(the algorithm family behind FlowMap/DAOmap and ABC's ``if`` command):

1. BUF gates dissolve into wire aliases.
2. For every gate, enumerate 4-feasible cuts by merging fan-in cut sets
   (bounded per node, preferring lower depth then fewer leaves).
3. Each node's mapping depth is the best achievable over its cuts; this
   per-node minimum yields a depth-optimal cover on a DAG.
4. The cover is extracted backward from the visible wires (flip-flop
   data/enable/clear pins and primary outputs), instantiating one LUT per
   selected node with logic duplication where fanout demands it.

Slice packing uses the Virtex rule — 2 LUT4 + 2 FF per slice, a flip-flop
sharing a slice half with the LUT driving its D pin.  Flip-flop clock
enables and synchronous clears ride the dedicated CE/SR pins (no fabric),
and the ripple-increment chains of counters map onto the slice carry
logic, exactly as real synthesis treats them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.fpga.virtex import V812E, VirtexEDevice
from repro.hdl.gates import GateKind
from repro.hdl.netlist import Circuit

__all__ = ["TechMapResult", "technology_map"]

#: Maximum cuts retained per node (standard pruning).
_CUTS_PER_NODE = 8
_K = 4


@dataclass
class TechMapResult:
    """Outcome of mapping one circuit onto a Virtex-E device."""

    luts: int
    flip_flops: int
    paired_ffs: int
    slices: int
    lut_depth: int
    #: LUT-level depth per selected root gate index.
    depth_by_root: Dict[int, int] = field(default_factory=dict, repr=False)
    #: Selected root gate index per covered output wire.
    root_of_wire: Dict[int, int] = field(default_factory=dict, repr=False)
    #: Chosen cut (leaf wires) per selected root — the LUT's input support.
    cut_of_root: Dict[int, FrozenSet[int]] = field(default_factory=dict, repr=False)
    #: Resolved BUF aliases used during mapping (wire -> ultimate source).
    alias: Dict[int, int] = field(default_factory=dict, repr=False)

    def utilization(self, device: VirtexEDevice = V812E) -> float:
        """Fraction of the device's slices this design occupies."""
        return self.slices / device.total_slices


def technology_map(circuit: Circuit, device: VirtexEDevice = V812E) -> TechMapResult:
    """Map ``circuit`` onto LUT4s + FFs and pack into slices."""
    gates = circuit.gates

    # ------------------------------------------------------------------
    # Dissolve BUFs.
    # ------------------------------------------------------------------
    alias: Dict[int, int] = {}
    for g in gates:
        if g.kind is GateKind.BUF:
            alias[g.output] = g.inputs[0]

    def resolve(w: int) -> int:
        seen = []
        while w in alias:
            seen.append(w)
            w = alias[w]
        for s in seen:  # path compression
            alias[s] = w
        return w

    real: List[int] = [gi for gi, g in enumerate(gates) if g.kind is not GateKind.BUF]
    g_inputs: Dict[int, Tuple[int, ...]] = {
        gi: tuple(resolve(w) for w in gates[gi].inputs) for gi in real
    }
    producer: Dict[int, int] = {gates[gi].output: gi for gi in real}

    # ------------------------------------------------------------------
    # Cut enumeration in topological order.
    # ------------------------------------------------------------------
    order = _topo_order(real, g_inputs, producer)
    const_wires = {circuit.const0.index, circuit.const1.index}
    # Per gate: list of (cut leaves, depth); leaves are frozensets of wires.
    cuts: Dict[int, List[Tuple[FrozenSet[int], int]]] = {}
    node_depth: Dict[int, int] = {}
    best_cut: Dict[int, FrozenSet[int]] = {}

    def wire_cuts(w: int) -> List[Tuple[FrozenSet[int], int]]:
        src = producer.get(w)
        if src is None:
            # Primary input / FF output / constant: a free leaf of depth 0
            # (constants vanish into LUT masks, so they cost nothing).
            leaf = frozenset() if w in const_wires else frozenset((w,))
            return [(leaf, 0)]
        return cuts[src]

    def wire_depth(w: int) -> int:
        src = producer.get(w)
        return 0 if src is None else node_depth[src]

    for gi in order:
        ins = g_inputs[gi]
        if len(ins) == 1:
            merged = [
                (leaves, _cut_depth(leaves, wire_depth))
                for leaves, _ in wire_cuts(ins[0])
            ]
        else:
            merged = []
            for la, _ in wire_cuts(ins[0]):
                for lb, _ in wire_cuts(ins[1]):
                    leaves = la | lb
                    if len(leaves) <= _K:
                        merged.append((leaves, _cut_depth(leaves, wire_depth)))
        # Always include the trivial cut (inputs themselves as leaves).
        triv = frozenset(w for w in ins if w not in const_wires)
        merged.append((triv, _cut_depth(triv, wire_depth)))
        # Deduplicate, sort by (depth, size), prune.
        uniq: Dict[FrozenSet[int], int] = {}
        for leaves, d in merged:
            if leaves not in uniq or d < uniq[leaves]:
                uniq[leaves] = d
        ranked = sorted(uniq.items(), key=lambda kv: (kv[1], len(kv[0])))[
            :_CUTS_PER_NODE
        ]
        cuts[gi] = ranked
        best_cut[gi], node_depth[gi] = ranked[0][0], ranked[0][1]

    # ------------------------------------------------------------------
    # Cover extraction from visible wires.
    # ------------------------------------------------------------------
    visible: Set[int] = set()
    ff_d_sources: List[int] = []
    for f in circuit.dffs:
        d = resolve(f.d)
        ff_d_sources.append(d)
        visible.add(d)
        if f.enable is not None:
            visible.add(resolve(f.enable))
        if f.clear is not None:
            visible.add(resolve(f.clear))
    for w in circuit.outputs.values():
        visible.add(resolve(w))

    selected: Set[int] = set()
    frontier = [w for w in visible if w in producer]
    while frontier:
        w = frontier.pop()
        gi = producer[w]
        if gi in selected:
            continue
        selected.add(gi)
        for leaf in best_cut[gi]:
            if leaf in producer and producer[leaf] not in selected:
                frontier.append(leaf)

    depth_by_root = {gi: node_depth[gi] for gi in selected}
    root_of_wire = {gates[gi].output: gi for gi in selected}
    lut_depth = max(depth_by_root.values(), default=0)

    # ------------------------------------------------------------------
    # Slice packing.  A slice half holds 1 LUT + 1 FF; the FF is fed
    # either by its half's LUT or through the BX/BY bypass pins, so
    # unrelated LUT/FF pairs may share a half.  The binding resource is
    # therefore max(LUTs, FFs) halves, derated by the packing efficiency
    # a real placer achieves.
    # ------------------------------------------------------------------
    n_luts = len(selected)
    n_ffs = len(circuit.dffs)
    host_free: Dict[int, bool] = {w: True for w in root_of_wire}
    paired = 0
    for d in ff_d_sources:
        if host_free.get(d):
            host_free[d] = False
            paired += 1
    halves = max(n_luts, n_ffs)
    slices = int(-(-halves // (device.slice_luts * device.packing_efficiency)))

    return TechMapResult(
        luts=n_luts,
        flip_flops=n_ffs,
        paired_ffs=paired,
        slices=slices,
        lut_depth=lut_depth,
        depth_by_root=depth_by_root,
        root_of_wire=root_of_wire,
        cut_of_root={gi: best_cut[gi] for gi in selected},
        alias=dict(alias),
    )


def _cut_depth(leaves: FrozenSet[int], wire_depth) -> int:
    return 1 + max((wire_depth(w) for w in leaves), default=0)


def _topo_order(
    real: List[int],
    g_inputs: Dict[int, Tuple[int, ...]],
    producer: Dict[int, int],
) -> List[int]:
    """Topological order of the real-gate DAG (inputs first)."""
    from collections import deque

    indeg = {gi: 0 for gi in real}
    deps: Dict[int, List[int]] = {gi: [] for gi in real}
    for gi in real:
        for w in g_inputs[gi]:
            src = producer.get(w)
            if src is not None:
                indeg[gi] += 1
                deps[src].append(gi)
    ready = deque(gi for gi in real if indeg[gi] == 0)
    order: List[int] = []
    while ready:
        gi = ready.popleft()
        order.append(gi)
        for d in deps[gi]:
            indeg[d] -= 1
            if indeg[d] == 0:
                ready.append(d)
    return order
