"""Virtex-E device model.

Architecture facts (Xilinx DS022, Virtex-E family):

* a CLB contains 2 slices; a **slice** contains 2 four-input LUTs and
  2 flip-flops, plus dedicated carry logic (MUXCY/XORCY) able to absorb
  one adder bit per LUT;
* the paper's device is the V812E (XCV812E) in a BG560 package, speed
  grade -8.

Delay constants are datasheet-class values for the -8 speed grade.  They
are *not* fitted to the paper's tables — the calibration module keeps the
paper's numbers strictly as comparison data — but they are chosen once so
that a 3-LUT-level path lands in the ~10 ns regime the family delivers,
which is the honest precision of this substitution (see DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VirtexEDevice", "V812E"]


@dataclass(frozen=True)
class VirtexEDevice:
    """One Virtex-E speed-grade/device instance.

    Attributes
    ----------
    name:
        Device designation.
    t_cko_ns:
        Register clock-to-output delay.
    t_lut_ns:
        LUT4 propagation delay (T_ILO).
    t_net_base_ns:
        Average routed-net delay per LUT-to-LUT hop at small designs.
    t_net_growth_ns:
        Additional per-hop net delay per doubling of design width —
        models the mild congestion/diameter growth the paper's Tp column
        shows (9.2 ns at l=32 → 10.5 ns at l=1024).
    t_setup_ns:
        Register setup time (T_ICK).
    t_carry_ns:
        Incremental delay per carry-chain bit (MUXCY).
    slice_luts / slice_ffs:
        Resources per slice.
    total_slices:
        Device capacity (XCV812E: 9408 CLBs x 2 ... reported 18816
        slices / 37632 LUTs in marketing terms; we use the slice count).
    """

    name: str = "XCV812E-8"
    t_cko_ns: float = 1.0
    t_lut_ns: float = 0.6
    t_net_base_ns: float = 1.9
    t_net_growth_ns: float = 0.08
    t_setup_ns: float = 0.8
    t_carry_ns: float = 0.06
    slice_luts: int = 2
    slice_ffs: int = 2
    #: Fraction of slice halves a real packer fills (unrelated LUT/FF
    #: co-location is legal via the BX/BY bypass pins but not always
    #: achievable under routing constraints).
    packing_efficiency: float = 0.9
    total_slices: int = 18816

    def net_delay_ns(self, design_bits: int) -> float:
        """Per-hop routed-net delay for a design of ``design_bits`` width.

        Grows with ``log2`` of the width from the 32-bit baseline: larger
        arrays span more columns, so average routes lengthen slightly —
        the effect visible (and small) in the paper's Tp column.
        """
        import math

        doublings = max(math.log2(max(design_bits, 32) / 32.0), 0.0)
        return self.t_net_base_ns + self.t_net_growth_ns * doublings


#: The paper's exact device.
V812E = VirtexEDevice()
